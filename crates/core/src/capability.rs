//! Target-database capability profiles.
//!
//! The paper's Figure 2 surveys "support for select Teradata features across
//! major cloud databases"; the Transformer and Serializer consult the same
//! capability model to decide which system-specific rewrites to trigger
//! (§5.3: "for target database systems that support vector comparison in
//! subqueries, this transformation would not be triggered").
//!
//! Six anonymized profiles model the documented behavior of 2017-era cloud
//! warehouses; `simwh()` describes the bundled `hyperq-engine` substrate,
//! which is the only profile whose serialized SQL is actually executed.

use hyperq_xtra::feature::Feature;

/// How the target spells modulo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModStyle {
    /// `a % b`.
    Percent,
    /// `MOD(a, b)`.
    Function,
}

/// How the target spells "add N days to a date".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateAddStyle {
    /// Native `d + n` integer arithmetic (Teradata-compatible).
    PlusInteger,
    /// `DATEADD(DAY, n, d)`.
    DateAddFn,
    /// `DATE_ADD(d, INTERVAL n DAY)`.
    IntervalFn,
    /// `d + INTERVAL 'n' DAY`.
    IntervalLiteral,
}

/// How the target spells "add N months to a date".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddMonthsStyle {
    /// `ADD_MONTHS(d, n)`.
    AddMonthsFn,
    /// `DATEADD(MONTH, n, d)`.
    DateAddFn,
    /// `d + INTERVAL 'n' MONTH`.
    IntervalLiteral,
}

/// Feature support and dialect spellings of one target database.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetCapabilities {
    pub name: &'static str,
    // --- feature support (drives Figure 2 and rewrite triggering) ---
    pub qualify: bool,
    pub implicit_joins: bool,
    pub named_expr_reuse: bool,
    pub ordinal_group_by: bool,
    pub date_int_comparison: bool,
    pub date_arithmetic: bool,
    pub vector_subquery: bool,
    pub grouping_sets: bool,
    pub td_window_syntax: bool,
    pub recursive_cte: bool,
    pub macros: bool,
    pub stored_procedures: bool,
    pub merge: bool,
    pub help_commands: bool,
    pub updatable_views: bool,
    pub global_temp_tables: bool,
    pub set_tables: bool,
    pub column_properties: bool,
    pub derived_table_column_aliases: bool,
    pub keyword_shortcuts: bool,
    pub keyword_comparisons: bool,
    pub mod_operator_infix: bool,
    pub exponent_operator: bool,
    pub chars_function: bool,
    pub zeroifnull: bool,
    pub index_function: bool,
    pub substr_function: bool,
    pub add_months_function: bool,
    pub top_clause: bool,
    pub with_ties: bool,
    pub limit_clause: bool,
    /// The target accepts a `RETURNING` clause on DML. No Teradata source
    /// feature maps onto it — it exists purely as an *output* capability the
    /// conformance linter checks emitted SQL against (and the knob the
    /// reduced-signature acceptance profile removes).
    pub returning_clause: bool,
    /// The target accepts session-scoped `SET <name> = <value>` statements,
    /// so Hyper-Q pushes settings through (and journals them for replay on
    /// reconnect) instead of keeping them purely mid-tier.
    pub session_settings: bool,
    // --- dialect spellings ---
    pub mod_style: ModStyle,
    pub date_add_style: DateAddStyle,
    pub add_months_style: AddMonthsStyle,
}

impl TargetCapabilities {
    /// Does this target natively support the tracked feature?
    pub fn supports(&self, f: Feature) -> bool {
        use Feature::*;
        match f {
            KeywordShortcut => self.keyword_shortcuts,
            KeywordComparison => self.keyword_comparisons,
            ModOperator => self.mod_operator_infix,
            ExponentOperator => self.exponent_operator,
            CharsFunction => self.chars_function,
            ZeroIfNull => self.zeroifnull,
            IndexFunction => self.index_function,
            SubstrFunction => self.substr_function,
            AddMonths => self.add_months_function,
            Qualify => self.qualify,
            ImplicitJoin => self.implicit_joins,
            NamedExprReference => self.named_expr_reuse,
            OrdinalGroupBy => self.ordinal_group_by,
            DateIntComparison => self.date_int_comparison,
            DateArithmetic => self.date_arithmetic,
            VectorSubquery => self.vector_subquery,
            GroupingExtensions => self.grouping_sets,
            NonAnsiWindowSyntax => self.td_window_syntax,
            RecursiveQuery => self.recursive_cte,
            MacroStatement => self.macros,
            StoredProcedureCall => self.stored_procedures,
            MergeStatement => self.merge,
            HelpCommand => self.help_commands,
            DmlOnView => self.updatable_views,
            GlobalTempTable => self.global_temp_tables,
            SetTableSemantics => self.set_tables,
            ColumnProperties => self.column_properties,
        }
    }

    /// The bundled engine substrate: a deliberately minimal ANSI target so
    /// every rewrite class is exercised end-to-end.
    pub fn simwh() -> TargetCapabilities {
        TargetCapabilities {
            name: "SimWH",
            qualify: false,
            implicit_joins: false,
            named_expr_reuse: false,
            ordinal_group_by: false,
            date_int_comparison: false,
            // The engine evaluates `date + n` natively, so the DATEADD
            // rewrite is not triggered for it (matching systems with native
            // date arithmetic).
            date_arithmetic: true,
            vector_subquery: false,
            grouping_sets: false,
            td_window_syntax: false,
            recursive_cte: false,
            macros: false,
            stored_procedures: false,
            merge: false,
            help_commands: false,
            updatable_views: false,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: true,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: false,
            index_function: false,
            substr_function: false,
            add_months_function: true,
            top_clause: false,
            with_ties: false,
            limit_clause: true,
            returning_clause: false,
            session_settings: true,
            mod_style: ModStyle::Percent,
            date_add_style: DateAddStyle::PlusInteger,
            add_months_style: AddMonthsStyle::AddMonthsFn,
        }
    }

    /// The engine substrate behind a deliberately reduced dialect: the
    /// same executable backend as [`simwh`](Self::simwh), but the
    /// signature withholds derived-table column aliases, both row-bound
    /// spellings (`LIMIT` *and* `TOP`), native date arithmetic and the
    /// `ADD_MONTHS` function, and spells modulo as `MOD(a, b)` and date
    /// math as `DATEADD`. Every translation-class rewrite that the default
    /// target never triggers — alias normalization, the `DATEADD` family,
    /// the `LimitFetch` emulation — fires here on live corpus traffic.
    pub fn simwh_reduced() -> TargetCapabilities {
        TargetCapabilities {
            name: "SimWH-Reduced",
            date_arithmetic: false,
            derived_table_column_aliases: false,
            add_months_function: false,
            limit_clause: false,
            top_clause: false,
            mod_style: ModStyle::Function,
            date_add_style: DateAddStyle::DateAddFn,
            add_months_style: AddMonthsStyle::DateAddFn,
            ..Self::simwh()
        }
    }

    /// Modeled on a 2017-era MPP SQL warehouse with T-SQL heritage.
    pub fn cloud_a() -> TargetCapabilities {
        TargetCapabilities {
            name: "CloudWH-A",
            qualify: false,
            implicit_joins: false,
            named_expr_reuse: false,
            ordinal_group_by: true,
            date_int_comparison: false,
            date_arithmetic: false,
            vector_subquery: false,
            grouping_sets: true,
            td_window_syntax: false,
            recursive_cte: false,
            macros: false,
            stored_procedures: true,
            merge: false,
            help_commands: false,
            updatable_views: false,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: false,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: false,
            index_function: false,
            substr_function: true,
            add_months_function: false,
            top_clause: true,
            with_ties: true,
            limit_clause: false,
            returning_clause: false,
            session_settings: false,
            mod_style: ModStyle::Percent,
            date_add_style: DateAddStyle::DateAddFn,
            add_months_style: AddMonthsStyle::DateAddFn,
        }
    }

    /// Modeled on a 2017-era columnar cloud warehouse with Postgres
    /// heritage.
    pub fn cloud_b() -> TargetCapabilities {
        TargetCapabilities {
            name: "CloudWH-B",
            qualify: false,
            implicit_joins: true,
            named_expr_reuse: false,
            ordinal_group_by: true,
            date_int_comparison: false,
            date_arithmetic: true,
            vector_subquery: false,
            grouping_sets: false,
            td_window_syntax: false,
            recursive_cte: false,
            macros: false,
            stored_procedures: false,
            merge: false,
            help_commands: false,
            updatable_views: false,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: true,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: false,
            index_function: false,
            substr_function: true,
            add_months_function: true,
            top_clause: true,
            with_ties: false,
            limit_clause: true,
            returning_clause: true,
            session_settings: false,
            mod_style: ModStyle::Percent,
            date_add_style: DateAddStyle::PlusInteger,
            add_months_style: AddMonthsStyle::AddMonthsFn,
        }
    }

    /// Modeled on a 2017-era serverless query service with its own SQL
    /// dialect.
    pub fn cloud_c() -> TargetCapabilities {
        TargetCapabilities {
            name: "CloudWH-C",
            qualify: false,
            implicit_joins: false,
            named_expr_reuse: false,
            ordinal_group_by: true,
            date_int_comparison: false,
            date_arithmetic: false,
            vector_subquery: false,
            grouping_sets: false,
            td_window_syntax: false,
            recursive_cte: false,
            macros: false,
            stored_procedures: false,
            merge: false,
            help_commands: false,
            updatable_views: false,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: false,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: false,
            index_function: false,
            substr_function: true,
            add_months_function: false,
            top_clause: false,
            with_ties: false,
            limit_clause: true,
            returning_clause: false,
            session_settings: false,
            mod_style: ModStyle::Function,
            date_add_style: DateAddStyle::IntervalFn,
            add_months_style: AddMonthsStyle::IntervalLiteral,
        }
    }

    /// Modeled on a 2017-era elastic multi-cluster warehouse.
    pub fn cloud_d() -> TargetCapabilities {
        TargetCapabilities {
            name: "CloudWH-D",
            qualify: true,
            implicit_joins: false,
            named_expr_reuse: true,
            ordinal_group_by: true,
            date_int_comparison: false,
            date_arithmetic: true,
            vector_subquery: false,
            grouping_sets: true,
            td_window_syntax: false,
            recursive_cte: true,
            macros: false,
            stored_procedures: false,
            merge: true,
            help_commands: false,
            updatable_views: false,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: true,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: true,
            index_function: false,
            substr_function: true,
            add_months_function: true,
            top_clause: true,
            with_ties: false,
            limit_clause: true,
            returning_clause: false,
            session_settings: false,
            mod_style: ModStyle::Percent,
            date_add_style: DateAddStyle::DateAddFn,
            add_months_style: AddMonthsStyle::AddMonthsFn,
        }
    }

    /// Modeled on a 2017-era federated SQL-on-anything engine.
    pub fn cloud_e() -> TargetCapabilities {
        TargetCapabilities {
            name: "CloudWH-E",
            qualify: false,
            implicit_joins: false,
            named_expr_reuse: false,
            ordinal_group_by: true,
            date_int_comparison: false,
            date_arithmetic: false,
            vector_subquery: true,
            grouping_sets: true,
            td_window_syntax: false,
            recursive_cte: false,
            macros: false,
            stored_procedures: false,
            merge: false,
            help_commands: false,
            updatable_views: false,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: true,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: false,
            index_function: false,
            substr_function: true,
            add_months_function: false,
            top_clause: false,
            with_ties: false,
            limit_clause: true,
            returning_clause: false,
            session_settings: false,
            mod_style: ModStyle::Function,
            date_add_style: DateAddStyle::IntervalLiteral,
            add_months_style: AddMonthsStyle::IntervalLiteral,
        }
    }

    /// Modeled on a 2017-era managed Postgres-compatible service.
    pub fn cloud_f() -> TargetCapabilities {
        TargetCapabilities {
            name: "CloudWH-F",
            qualify: false,
            implicit_joins: true,
            named_expr_reuse: false,
            ordinal_group_by: true,
            date_int_comparison: false,
            date_arithmetic: true,
            vector_subquery: true,
            grouping_sets: true,
            td_window_syntax: false,
            recursive_cte: true,
            macros: false,
            stored_procedures: true,
            merge: false,
            help_commands: false,
            updatable_views: true,
            global_temp_tables: false,
            set_tables: false,
            column_properties: false,
            derived_table_column_aliases: true,
            keyword_shortcuts: false,
            keyword_comparisons: false,
            mod_operator_infix: false,
            exponent_operator: false,
            chars_function: false,
            zeroifnull: false,
            index_function: false,
            substr_function: true,
            add_months_function: false,
            top_clause: false,
            with_ties: false,
            limit_clause: true,
            returning_clause: true,
            session_settings: false,
            mod_style: ModStyle::Percent,
            date_add_style: DateAddStyle::IntervalLiteral,
            add_months_style: AddMonthsStyle::IntervalLiteral,
        }
    }

    /// The six surveyed cloud profiles (Figure 2's population).
    pub fn surveyed() -> Vec<TargetCapabilities> {
        vec![
            Self::cloud_a(),
            Self::cloud_b(),
            Self::cloud_c(),
            Self::cloud_d(),
            Self::cloud_e(),
            Self::cloud_f(),
        ]
    }
}

/// The Figure 2 feature selection: frequently-used Teradata features whose
/// cloud support the paper charts.
pub fn figure2_features() -> Vec<Feature> {
    use Feature::*;
    vec![
        Qualify,
        ImplicitJoin,
        NamedExprReference,
        OrdinalGroupBy,
        DateArithmetic,
        VectorSubquery,
        GroupingExtensions,
        RecursiveQuery,
        MacroStatement,
        StoredProcedureCall,
        MergeStatement,
        DmlOnView,
        GlobalTempTable,
        SetTableSemantics,
        ColumnProperties,
    ]
}

/// One row of Figure 2: a feature and the percentage of surveyed cloud
/// databases supporting it.
#[derive(Debug, Clone, PartialEq)]
pub struct SupportRow {
    pub feature: Feature,
    pub percent_supported: f64,
    pub supporting: Vec<&'static str>,
}

fn rows_for(features: impl IntoIterator<Item = Feature>) -> Vec<SupportRow> {
    // Figure 2's population comes from the target registry (the surveyed
    // cloud profiles), not an ad-hoc list: registering a profile is enough
    // to put it in the chart.
    let targets = crate::targets::surveyed();
    features
        .into_iter()
        .map(|feature| {
            let supporting: Vec<&'static str> = targets
                .iter()
                .filter(|t| t.caps.supports(feature))
                .map(|t| t.caps.name)
                .collect();
            SupportRow {
                feature,
                percent_supported: 100.0 * supporting.len() as f64 / targets.len() as f64,
                supporting,
            }
        })
        .collect()
}

/// Compute Figure 2 from the capability profiles.
pub fn figure2_rows() -> Vec<SupportRow> {
    rows_for(figure2_features())
}

/// Cloud-support rows for *every* tracked feature (T1..E9), not just the
/// Figure 2 selection — the full table the assessment report and the
/// conformance exhaustiveness audit consume.
pub fn support_rows() -> Vec<SupportRow> {
    rows_for(Feature::ALL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_rows_cover_every_feature_exactly_once() {
        let rows = support_rows();
        for f in Feature::ALL {
            assert_eq!(
                rows.iter().filter(|r| r.feature == f).count(),
                1,
                "feature {} ({f:?}) must have exactly one support row",
                f.code()
            );
        }
        assert_eq!(rows.len(), Feature::ALL.len());
    }

    #[test]
    fn no_cloud_target_supports_macros_or_help() {
        for t in TargetCapabilities::surveyed() {
            assert!(!t.supports(Feature::MacroStatement), "{}", t.name);
            assert!(!t.supports(Feature::HelpCommand), "{}", t.name);
            assert!(!t.supports(Feature::DateIntComparison), "{}", t.name);
        }
    }

    #[test]
    fn figure2_rows_are_percentages() {
        for row in figure2_rows() {
            assert!((0.0..=100.0).contains(&row.percent_supported));
            assert_eq!(
                row.percent_supported,
                100.0 * row.supporting.len() as f64 / 6.0
            );
        }
    }

    #[test]
    fn qualify_is_rare_across_clouds() {
        let rows = figure2_rows();
        let q = rows
            .iter()
            .find(|r| r.feature == Feature::Qualify)
            .expect("qualify row");
        assert!(q.percent_supported < 50.0);
    }

    #[test]
    fn simwh_is_minimal_on_purpose() {
        let s = TargetCapabilities::simwh();
        assert!(!s.qualify && !s.vector_subquery && !s.recursive_cte && !s.merge);
        assert!(s.limit_clause && !s.top_clause);
    }
}
