//! Session continuity: transparent backend reconnection with DTM-state
//! replay.
//!
//! The emulation layer works because "state information maintained in the
//! application layer" (paper §2.1) lives in the mid-tier DTM catalog — but
//! some of that state has *target-side* shadows: session settings pushed to
//! the target, materialized per-session global-temp-table instances, and
//! emulation scratch tables. A `ConnectionLost` from the target silently
//! destroys all of it while the DTM catalog still believes it exists.
//!
//! This module closes the gap:
//!
//! * [`SessionJournal`] — an append-only journal of the session-establishing
//!   actions with target-side effects, recorded by the crosscompiler as
//!   replayable backend requests.
//! * [`RecoveringBackend`] — a [`Backend`] wrapper (layered *outside*
//!   [`crate::resilience::ResilientBackend`]) that, on `ConnectionLost`,
//!   re-establishes the backend session, replays the journal in recording
//!   order, invalidates `materialized_gtts` consistently on partial replay
//!   failure, and only then re-issues the original request — and only when
//!   [`RequestContext`] permits. If the session was inside an open
//!   transaction, recovery restores the session but surfaces a clean
//!   "transaction aborted" error instead of silently replaying
//!   non-idempotent work.
//!
//! Replay ordering is the recording order (journal sequence): settings
//! before the statements that depend on them, GTT DDL before anything that
//! could reference the instance, orphan drops wherever the failed cleanup
//! left them. Entries are keyed so re-recording (e.g. a `SET` overwriting an
//! earlier value for the same setting) replaces in place and replay applies
//! only the final value.

use std::sync::Arc;
use std::time::Instant;

use hyperq_obs::{Counter, Histogram, ObsContext};
use hyperq_xtra::catalog::TableDef;
use parking_lot::Mutex;

use crate::backend::{Backend, BackendError, BackendErrorKind, ExecResult, RequestContext};

/// Canonical message for a statement lost together with its open
/// transaction. The wire layer maps this to its own error code; the soak
/// harness asserts it appears exactly once per in-transaction kill.
pub const TXN_ABORT_MESSAGE: &str =
    "transaction aborted by connection loss, session restored";

/// What a journal entry re-creates on the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalEntryKind {
    /// A session setting pushed to the target (`SET …`). Replayed verbatim.
    Setting,
    /// A per-session global-temp-table instance materialized on the target.
    /// Replayed unless the guard table still exists (cloud targets that keep
    /// session scope alive across a reconnect token).
    GttMaterialize,
    /// A temp table a best-effort emulation cleanup failed to drop. Replay
    /// *drops* it (if it still exists) so a reconnect cannot resurrect the
    /// orphaned name.
    OrphanTemp,
}

impl JournalEntryKind {
    /// Stable lowercase name, used as a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            JournalEntryKind::Setting => "setting",
            JournalEntryKind::GttMaterialize => "gtt",
            JournalEntryKind::OrphanTemp => "orphan_temp",
        }
    }
}

/// One replayable session-establishing action.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    pub kind: JournalEntryKind,
    /// Dedup key within the kind: setting name, GTT logical name, or orphan
    /// table name. Re-recording a key replaces the previous entry in place.
    pub key: String,
    /// The target-dialect SQL that re-creates (or, for orphans, removes) the
    /// state.
    pub sql: String,
    /// For `GttMaterialize`: the target-side instance name. If the target
    /// still knows the table after reconnect, replay skips the DDL.
    pub guard_table: Option<String>,
}

#[derive(Default)]
struct JournalInner {
    entries: Vec<JournalEntry>,
    /// GTT logical names whose replay failed; the session must drop them
    /// from `materialized_gtts` so the next touch re-materializes.
    invalidated_gtts: Vec<String>,
    /// Set when a connection died inside an open transaction; the session
    /// must clear `in_transaction` (the target rolled back with the
    /// connection).
    txn_aborted: bool,
    recoveries: u64,
}

/// Shared, thread-safe journal of a session's target-side state. Cloning is
/// cheap (an `Arc` handle): the crosscompiler records into it, the
/// [`RecoveringBackend`] replays from it.
#[derive(Clone, Default)]
pub struct SessionJournal {
    inner: Arc<Mutex<JournalInner>>,
}

impl SessionJournal {
    pub fn new() -> SessionJournal {
        SessionJournal::default()
    }

    fn upsert(&self, entry: JournalEntry) {
        let mut inner = self.inner.lock();
        match inner
            .entries
            .iter_mut()
            .find(|e| e.kind == entry.kind && e.key == entry.key)
        {
            Some(slot) => *slot = entry,
            None => inner.entries.push(entry),
        }
    }

    /// Record a session setting pushed to the target.
    pub fn record_setting(&self, name: &str, sql: impl Into<String>) {
        self.upsert(JournalEntry {
            kind: JournalEntryKind::Setting,
            key: name.to_ascii_uppercase(),
            sql: sql.into(),
            guard_table: None,
        });
    }

    /// Record a GTT materialization: `logical` is the DTM-catalog name,
    /// `instance` the per-session target-side table, `ddl` the CREATE that
    /// materialized it.
    pub fn record_gtt(&self, logical: &str, instance: &str, ddl: impl Into<String>) {
        self.upsert(JournalEntry {
            kind: JournalEntryKind::GttMaterialize,
            key: logical.to_ascii_uppercase(),
            sql: ddl.into(),
            guard_table: Some(instance.to_string()),
        });
    }

    /// Record a temp table whose best-effort cleanup DROP failed, together
    /// with the serialized DROP to retry on reconnect.
    pub fn record_orphan(&self, table: &str, drop_sql: impl Into<String>) {
        self.upsert(JournalEntry {
            kind: JournalEntryKind::OrphanTemp,
            key: table.to_ascii_uppercase(),
            sql: drop_sql.into(),
            guard_table: None,
        });
    }

    /// Remove one entry (orphan finally dropped, GTT invalidated, …).
    fn remove(&self, kind: JournalEntryKind, key: &str) {
        self.inner.lock().entries.retain(|e| !(e.kind == kind && e.key == key));
    }

    /// Current entries in replay order.
    pub fn snapshot(&self) -> Vec<JournalEntry> {
        self.inner.lock().entries.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of orphan-drop entries still pending.
    pub fn pending_orphans(&self) -> usize {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| e.kind == JournalEntryKind::OrphanTemp)
            .count()
    }

    /// Completed recovery cycles for this session.
    pub fn recoveries(&self) -> u64 {
        self.inner.lock().recoveries
    }

    /// GTT logical names invalidated by partial replay failure, drained by
    /// the crosscompiler, which removes them from
    /// `SessionState::materialized_gtts`.
    pub fn drain_invalidated_gtts(&self) -> Vec<String> {
        std::mem::take(&mut self.inner.lock().invalidated_gtts)
    }

    /// True once if a connection died inside an open transaction since the
    /// last call; the crosscompiler clears `SessionState::in_transaction`.
    pub fn take_txn_aborted(&self) -> bool {
        std::mem::take(&mut self.inner.lock().txn_aborted)
    }

    fn note_txn_abort(&self) {
        self.inner.lock().txn_aborted = true;
    }

    fn invalidate_gtt(&self, logical: &str) {
        let mut inner = self.inner.lock();
        inner
            .entries
            .retain(|e| !(e.kind == JournalEntryKind::GttMaterialize && e.key == logical));
        inner.invalidated_gtts.push(logical.to_string());
    }

    fn note_recovery(&self) {
        self.inner.lock().recoveries += 1;
    }
}

/// Tuning for [`RecoveringBackend`].
#[derive(Debug, Clone, Copy)]
pub struct RecoverConfig {
    /// Recovery cycles attempted per original request before the error is
    /// surfaced as-is. Replay statements themselves still get the inner
    /// resilience layer's retries.
    pub max_recoveries: u32,
}

impl Default for RecoverConfig {
    fn default() -> RecoverConfig {
        RecoverConfig { max_recoveries: 1 }
    }
}

/// A [`Backend`] wrapper that turns `ConnectionLost` into a reconnect +
/// journal replay, so the layers above see an unbroken session.
///
/// Layering (outermost first): `InstrumentedBackend` → `RecoveringBackend`
/// → `ResilientBackend` → driver. Recovery sits *outside* resilience so the
/// replayed statements benefit from retry/backoff, and *inside*
/// instrumentation so recovery traffic is counted like any other.
pub struct RecoveringBackend {
    inner: Arc<dyn Backend>,
    journal: SessionJournal,
    config: RecoverConfig,
    obs: Arc<ObsContext>,
    attempts_m: Arc<Counter>,
    success_m: Arc<Counter>,
    failures_m: Arc<Counter>,
    txn_aborts_m: Arc<Counter>,
    invalidated_m: Arc<Counter>,
    replayed_m: [Arc<Counter>; 3],
    duration_m: Arc<Histogram>,
}

impl RecoveringBackend {
    pub fn wrap(
        inner: Arc<dyn Backend>,
        journal: SessionJournal,
        config: RecoverConfig,
        obs: Arc<ObsContext>,
    ) -> Arc<RecoveringBackend> {
        let m = &obs.metrics;
        Arc::new(RecoveringBackend {
            attempts_m: m.counter("hyperq_recovery_attempts_total", &[]),
            success_m: m.counter("hyperq_recovery_success_total", &[]),
            failures_m: m.counter("hyperq_recovery_failures_total", &[]),
            txn_aborts_m: m.counter("hyperq_recovery_txn_aborts_total", &[]),
            invalidated_m: m.counter("hyperq_recovery_invalidated_gtts_total", &[]),
            replayed_m: [
                JournalEntryKind::Setting,
                JournalEntryKind::GttMaterialize,
                JournalEntryKind::OrphanTemp,
            ]
            .map(|k| {
                m.counter("hyperq_recovery_replayed_entries_total", &[("kind", k.as_str())])
            }),
            duration_m: m.histogram("hyperq_recovery_duration_seconds", &[]),
            inner,
            journal,
            config,
            obs,
        })
    }

    /// The journal this backend replays from (shared with the session).
    pub fn journal(&self) -> &SessionJournal {
        &self.journal
    }

    fn replayed(&self, kind: JournalEntryKind) -> &Counter {
        match kind {
            JournalEntryKind::Setting => &self.replayed_m[0],
            JournalEntryKind::GttMaterialize => &self.replayed_m[1],
            JournalEntryKind::OrphanTemp => &self.replayed_m[2],
        }
    }

    /// Reconnect and replay the journal. `Err` means the session could not
    /// be faithfully restored (reconnect failed or a *setting* failed to
    /// reapply); a GTT replay failure is downgraded to an invalidation and
    /// an orphan-drop failure stays journaled for the next attempt.
    fn recover(&self) -> Result<(), BackendError> {
        let _span = self.obs.traces.enter("recover");
        self.attempts_m.inc();
        let t0 = Instant::now();
        let result = self.replay();
        self.duration_m.record(t0.elapsed());
        match &result {
            Ok(()) => {
                self.success_m.inc();
                self.journal.note_recovery();
                hyperq_obs::provenance::note_recovery();
            }
            Err(_) => self.failures_m.inc(),
        }
        result
    }

    fn replay(&self) -> Result<(), BackendError> {
        self.inner.reset_session()?;
        // Replay context: these statements re-establish session state a
        // fresh connection lacks; they are replay-safe by construction.
        let ctx = RequestContext { idempotent: true, in_transaction: false };
        for entry in self.journal.snapshot() {
            match entry.kind {
                JournalEntryKind::Setting => {
                    self.inner.execute_ctx(&entry.sql, ctx).map_err(|e| {
                        BackendError::new(
                            e.kind,
                            format!("replaying setting {}: {}", entry.key, e.message),
                        )
                    })?;
                    self.replayed(entry.kind).inc();
                }
                JournalEntryKind::GttMaterialize => {
                    // Cloud targets can keep session scope alive across a
                    // reconnect token — if the instance still exists, the
                    // state is confirmed without re-running DDL.
                    let alive = entry
                        .guard_table
                        .as_deref()
                        .is_some_and(|t| self.inner.table_meta(t).is_some());
                    if alive || self.inner.execute_ctx(&entry.sql, ctx).is_ok() {
                        self.replayed(entry.kind).inc();
                    } else {
                        // Partial replay failure: drop the claim so the next
                        // statement that touches the GTT re-materializes it.
                        self.journal.invalidate_gtt(&entry.key);
                        self.invalidated_m.inc();
                    }
                }
                JournalEntryKind::OrphanTemp => {
                    // Best effort, like the cleanup that failed: success
                    // retires the entry, failure keeps it for next time.
                    if self.inner.execute_ctx(&entry.sql, ctx).is_ok() {
                        self.journal.remove(JournalEntryKind::OrphanTemp, &entry.key);
                        self.replayed(entry.kind).inc();
                    }
                }
            }
        }
        Ok(())
    }
}

impl Backend for RecoveringBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        self.execute_ctx(sql, RequestContext::from_sql(sql))
    }

    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        let mut recoveries = 0;
        loop {
            let err = match self.inner.execute_ctx(sql, ctx) {
                Ok(result) => return Ok(result),
                Err(e) => e,
            };
            if err.kind != BackendErrorKind::ConnectionLost
                || recoveries >= self.config.max_recoveries
            {
                return Err(err);
            }
            recoveries += 1;
            if ctx.in_transaction {
                // The target rolled the transaction back with the
                // connection. Restore the session for the *next* statement,
                // but never replay the non-idempotent work silently.
                self.txn_aborts_m.inc();
                self.journal.note_txn_abort();
                let _ = self.recover();
                return Err(BackendError::fatal(TXN_ABORT_MESSAGE));
            }
            if self.recover().is_err() {
                // Session unrecoverable; surface the original failure.
                return Err(err);
            }
            if !ctx.allows_retry() {
                // Session restored, but the statement's outcome on the dead
                // connection is unknown and it is not replay-safe.
                return Err(BackendError::new(
                    err.kind,
                    format!("{}; session restored, statement outcome unknown", err.message),
                ));
            }
            // Replay-safe: re-issue on the restored session.
        }
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        self.inner.table_meta(name)
    }

    fn reset_session(&self) -> Result<(), BackendError> {
        self.inner.reset_session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::testing::{ScriptedBackend, RESET_MARKER};
    use hyperq_xtra::catalog::{ColumnDef, TableDef};
    use hyperq_xtra::types::SqlType;

    fn read_ctx() -> RequestContext {
        RequestContext::read_only()
    }

    /// A scripted backend that fails the first `n` executes with
    /// `ConnectionLost`, then serves everything (optionally failing SQL
    /// containing `poison`).
    fn flaky_scripted(n: u64, poison: Option<&'static str>) -> Arc<ScriptedBackend> {
        use std::sync::atomic::{AtomicU64, Ordering};
        let left = AtomicU64::new(n);
        Arc::new(ScriptedBackend {
            log: parking_lot::Mutex::new(Vec::new()),
            tables: vec![],
            responder: Box::new(move |sql| {
                if left.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                    v.checked_sub(1)
                })
                .is_ok()
                {
                    return Err(BackendError::connection_lost("link down"));
                }
                if poison.is_some_and(|p| sql.contains(p)) {
                    return Err(BackendError::fatal("poisoned"));
                }
                Ok(ExecResult::ack())
            }),
        })
    }

    #[test]
    fn journal_upserts_by_kind_and_key() {
        let j = SessionJournal::new();
        j.record_setting("DATEFORM", "SET DATEFORM = 'ANSIDATE'");
        j.record_setting("DATEFORM", "SET DATEFORM = 'INTEGERDATE'");
        j.record_setting("COLLATION", "SET COLLATION = 'ASCII'");
        j.record_gtt("STAGE", "GTT_STAGE_S1", "CREATE TABLE GTT_STAGE_S1 (A INTEGER)");
        assert_eq!(j.len(), 3);
        let snap = j.snapshot();
        assert_eq!(snap[0].sql, "SET DATEFORM = 'INTEGERDATE'", "upsert replaces in place");
        assert_eq!(snap[2].kind, JournalEntryKind::GttMaterialize);
    }

    #[test]
    fn recovery_replays_journal_in_order_then_reissues() {
        let obs = ObsContext::new();
        let scripted = flaky_scripted(1, None);
        let journal = SessionJournal::new();
        journal.record_setting("DATEFORM", "SET DATEFORM = 'ANSIDATE'");
        journal.record_gtt("STAGE", "GTT_STAGE_S1", "CREATE TABLE GTT_STAGE_S1 (A INTEGER)");
        let rb = RecoveringBackend::wrap(
            Arc::clone(&scripted) as Arc<dyn Backend>,
            journal.clone(),
            RecoverConfig::default(),
            Arc::clone(&obs),
        );

        rb.execute_ctx("SEL 1", read_ctx()).expect("recovered and re-issued");
        let log = scripted.sql_log();
        assert_eq!(
            log,
            vec![
                "SEL 1".to_string(), // killed attempt
                RESET_MARKER.to_string(),
                "SET DATEFORM = 'ANSIDATE'".to_string(),
                "CREATE TABLE GTT_STAGE_S1 (A INTEGER)".to_string(),
                "SEL 1".to_string(), // re-issue
            ]
        );
        assert_eq!(journal.recoveries(), 1);
        assert_eq!(obs.metrics.counter_value("hyperq_recovery_success_total", &[]), 1);
        assert_eq!(
            obs.metrics.counter_value(
                "hyperq_recovery_replayed_entries_total",
                &[("kind", "setting")]
            ),
            1
        );
    }

    #[test]
    fn guard_table_existence_skips_gtt_ddl_replay() {
        let obs = ObsContext::new();
        let scripted = flaky_scripted(1, None);
        // The instance survives on the target (session token kept alive).
        let mut with_table = Arc::try_unwrap(scripted).ok().unwrap();
        with_table.tables = vec![TableDef::new(
            "GTT_STAGE_S1",
            vec![ColumnDef::new("A", SqlType::Integer, true)],
        )];
        let scripted = Arc::new(with_table);
        let journal = SessionJournal::new();
        journal.record_gtt("STAGE", "GTT_STAGE_S1", "CREATE TABLE GTT_STAGE_S1 (A INTEGER)");
        let rb = RecoveringBackend::wrap(
            Arc::clone(&scripted) as Arc<dyn Backend>,
            journal.clone(),
            RecoverConfig::default(),
            obs,
        );
        rb.execute_ctx("SEL 1", read_ctx()).unwrap();
        assert!(
            !scripted.sql_log().iter().any(|s| s.starts_with("CREATE TABLE")),
            "guarded GTT replay must not re-run DDL: {:?}",
            scripted.sql_log()
        );
        assert_eq!(journal.len(), 1, "entry stays journaled");
    }

    #[test]
    fn partial_replay_failure_invalidates_gtt_but_restores_session() {
        let obs = ObsContext::new();
        let scripted = flaky_scripted(1, Some("GTT_BAD"));
        let journal = SessionJournal::new();
        journal.record_gtt("GOOD", "GTT_GOOD_S1", "CREATE TABLE GTT_GOOD_S1 (A INTEGER)");
        journal.record_gtt("BAD", "GTT_BAD_S1", "CREATE TABLE GTT_BAD_S1 (A INTEGER)");
        let rb = RecoveringBackend::wrap(
            Arc::clone(&scripted) as Arc<dyn Backend>,
            journal.clone(),
            RecoverConfig::default(),
            Arc::clone(&obs),
        );
        rb.execute_ctx("SEL 1", read_ctx()).expect("recovery survives GTT failure");
        assert_eq!(journal.drain_invalidated_gtts(), vec!["BAD".to_string()]);
        assert_eq!(journal.len(), 1, "failed entry removed from journal");
        assert_eq!(
            obs.metrics.counter_value("hyperq_recovery_invalidated_gtts_total", &[]),
            1
        );
    }

    #[test]
    fn in_transaction_kill_aborts_cleanly_and_restores() {
        let obs = ObsContext::new();
        let scripted = flaky_scripted(1, None);
        let journal = SessionJournal::new();
        journal.record_setting("DATEFORM", "SET DATEFORM = 'ANSIDATE'");
        let rb = RecoveringBackend::wrap(
            Arc::clone(&scripted) as Arc<dyn Backend>,
            journal.clone(),
            RecoverConfig::default(),
            Arc::clone(&obs),
        );
        let ctx = RequestContext { idempotent: false, in_transaction: true };
        let err = rb.execute_ctx("INSERT INTO T VALUES (1)", ctx).unwrap_err();
        assert_eq!(err.message, TXN_ABORT_MESSAGE);
        assert_eq!(err.kind, BackendErrorKind::Fatal, "no layer may blind-retry this");
        assert!(journal.take_txn_aborted(), "session must learn the txn died");
        assert!(!journal.take_txn_aborted(), "flag is taken once");
        // The session itself was restored for the next statement.
        assert!(scripted.sql_log().contains(&RESET_MARKER.to_string()));
        assert!(scripted.sql_log().contains(&"SET DATEFORM = 'ANSIDATE'".to_string()));
        assert_eq!(obs.metrics.counter_value("hyperq_recovery_txn_aborts_total", &[]), 1);
        // The INSERT was never replayed.
        assert_eq!(
            scripted.sql_log().iter().filter(|s| s.starts_with("INSERT")).count(),
            1
        );
    }

    #[test]
    fn non_idempotent_statement_not_reissued_but_session_restored() {
        let obs = ObsContext::new();
        let scripted = flaky_scripted(1, None);
        let journal = SessionJournal::new();
        let rb = RecoveringBackend::wrap(
            Arc::clone(&scripted) as Arc<dyn Backend>,
            journal,
            RecoverConfig::default(),
            obs,
        );
        let err = rb.execute_ctx("INSERT INTO T VALUES (1)", RequestContext::write()).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::ConnectionLost);
        assert!(err.message.contains("session restored"), "{}", err.message);
        assert_eq!(
            scripted.sql_log().iter().filter(|s| s.starts_with("INSERT")).count(),
            1,
            "write must not be replayed"
        );
        assert!(scripted.sql_log().contains(&RESET_MARKER.to_string()));
    }

    #[test]
    fn orphan_drop_retires_entry_on_success() {
        let obs = ObsContext::new();
        let scripted = flaky_scripted(1, None);
        let journal = SessionJournal::new();
        journal.record_orphan("WT_S1_1", "DROP TABLE IF EXISTS WT_S1_1");
        let rb = RecoveringBackend::wrap(
            Arc::clone(&scripted) as Arc<dyn Backend>,
            journal.clone(),
            RecoverConfig::default(),
            obs,
        );
        rb.execute_ctx("SEL 1", read_ctx()).unwrap();
        assert_eq!(journal.pending_orphans(), 0, "dropped orphan leaves the journal");
        assert!(scripted.sql_log().contains(&"DROP TABLE IF EXISTS WT_S1_1".to_string()));
    }

    #[test]
    fn failed_reconnect_surfaces_original_error() {
        let obs = ObsContext::new();
        // Every execute fails; reset succeeds but the replayed probe dies
        // again — recovery runs out of budget and the original error wins.
        let scripted: Arc<ScriptedBackend> = Arc::new(ScriptedBackend {
            log: parking_lot::Mutex::new(Vec::new()),
            tables: vec![],
            responder: Box::new(|_| Err(BackendError::connection_lost("still down"))),
        });
        let rb = RecoveringBackend::wrap(
            scripted as Arc<dyn Backend>,
            SessionJournal::new(),
            RecoverConfig::default(),
            Arc::clone(&obs),
        );
        let err = rb.execute_ctx("SEL 1", read_ctx()).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::ConnectionLost);
        assert!(obs.metrics.counter_value("hyperq_recovery_attempts_total", &[]) >= 1);
    }
}
