//! Static-analysis layer for the pipeline: the plan validator and the
//! rewrite-rule soundness auditor, wired into observability.
//!
//! The checker itself ([`hyperq_xtra::validate`]) is pure; this module
//! decides *when* it runs and *what happens* when it finds something:
//!
//! * [`Analyzer::check_plan`] — validate a bound/transformed plan at a
//!   pipeline stage boundary,
//! * [`Analyzer::transform`] — run the [`Transformer`] in audited mode,
//!   re-validating the tree after every rule application and checking the
//!   rule preserved the plan's output schema (names + types), attributing
//!   any breakage to the rule by name,
//! * [`Analyzer::audit_roundtrip`] — strict mode only: re-parse the
//!   serialized SQL-B in the ANSI dialect, re-bind it against the same
//!   catalog, and diff the output schemas.
//!
//! Everything reports through [`ObsContext`]:
//! `hyperq_validation_checks_total{stage}`,
//! `hyperq_validation_violations_total{invariant}`,
//! `hyperq_rule_audit_failures_total{rule}`, and the shared
//! `hyperq_stage_duration_seconds{stage="validate"}` histogram.
//!
//! The [`AnalyzeMode`] threads through `HyperQ` (and the gateway config):
//! `Strict` turns findings into errors — the configuration for tests and
//! CI — while `LogOnly` (the production default) only counts them so live
//! traffic degrades gracefully, and `Off` skips the walks entirely.

use std::sync::Arc;
use std::time::Instant;

use hyperq_obs::{Counter, Histogram, ObsContext};
use hyperq_parser::{parse_statements, Dialect};
use hyperq_xtra::catalog::MetadataProvider;
use hyperq_xtra::feature::FeatureSet;
use hyperq_xtra::rel::Plan;
use hyperq_xtra::schema::Schema;
use hyperq_xtra::types::SqlType;
use hyperq_xtra::validate::{
    plan_output_schema, validate_plan, Invariant, ValidateOptions, ValidationReport,
};

use crate::binder::Binder;
use crate::capability::TargetCapabilities;
use crate::crosscompiler::STAGE_DURATION_METRIC;
use crate::error::{HyperQError, Result};
use crate::transform::Transformer;

/// How the static-analysis layer reacts to findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// No validation walks at all.
    Off,
    /// Validate and count violations in the metrics registry, but never
    /// fail a statement — the production default, so live traffic degrades
    /// gracefully instead of erroring on a checker regression.
    #[default]
    LogOnly,
    /// Violations become [`HyperQError::Validation`] errors, and the
    /// serializer round-trip audit runs. Used by tests and CI.
    Strict,
}

impl AnalyzeMode {
    pub fn is_strict(&self) -> bool {
        matches!(self, AnalyzeMode::Strict)
    }

    /// Stable lowercase name, used as the provenance-record verdict label.
    pub fn as_str(&self) -> &'static str {
        match self {
            AnalyzeMode::Off => "off",
            AnalyzeMode::LogOnly => "log_only",
            AnalyzeMode::Strict => "strict",
        }
    }
}

/// The per-session analysis driver: mode + pre-resolved metric handles.
pub struct Analyzer {
    mode: AnalyzeMode,
    obs: Arc<ObsContext>,
    /// Validation walk latency, part of the shared stage-duration family.
    duration: Arc<Histogram>,
    checks_bind: Arc<Counter>,
    checks_serializer: Arc<Counter>,
}

impl Analyzer {
    pub fn new(mode: AnalyzeMode, obs: &Arc<ObsContext>) -> Self {
        let checks = |stage| {
            obs.metrics
                .counter("hyperq_validation_checks_total", &[("stage", stage)])
        };
        Analyzer {
            mode,
            obs: Arc::clone(obs),
            duration: obs
                .metrics
                .histogram(STAGE_DURATION_METRIC, &[("stage", "validate")]),
            checks_bind: checks("bind"),
            checks_serializer: checks("serializer"),
        }
    }

    pub fn mode(&self) -> AnalyzeMode {
        self.mode
    }

    fn count_check(&self, stage: &str) {
        match stage {
            "bind" => self.checks_bind.inc(),
            "serializer" => self.checks_serializer.inc(),
            other => self
                .obs
                .metrics
                .counter("hyperq_validation_checks_total", &[("stage", other)])
                .inc(),
        }
    }

    fn count_violation(&self, invariant: Invariant) {
        hyperq_obs::provenance::note_violation();
        self.obs
            .metrics
            .counter(
                "hyperq_validation_violations_total",
                &[("invariant", invariant.name())],
            )
            .inc();
    }

    fn count_report(&self, report: &ValidationReport) {
        for v in &report.violations {
            self.count_violation(v.invariant);
        }
    }

    /// Validate a plan at a stage boundary ("bind" right after binding,
    /// "serializer" right before serialization — the gate that keeps
    /// engine-internal semi/anti joins and malformed trees away from the
    /// serializers).
    pub fn check_plan(&self, plan: &Plan, stage: &'static str) -> Result<()> {
        if self.mode == AnalyzeMode::Off {
            return Ok(());
        }
        let t0 = Instant::now();
        let report = validate_plan(plan, &ValidateOptions::default());
        let d = t0.elapsed();
        self.duration.record(d);
        hyperq_obs::provenance::note_stage("validate", d);
        self.count_check(stage);
        if report.is_clean() {
            return Ok(());
        }
        self.count_report(&report);
        if self.mode.is_strict() {
            return Err(HyperQError::Validation(format!("{stage} stage: {report}")));
        }
        Ok(())
    }

    /// Run the transformer under audit: in `Off` mode this is a plain
    /// [`Transformer::run_all`]; otherwise every rule application is
    /// followed by a re-validation plus an output-schema preservation
    /// check, and a broken rewrite is attributed to the rule by name.
    pub fn transform(
        &self,
        transformer: &Transformer,
        plan: Plan,
        caps: &TargetCapabilities,
        fired: &mut FeatureSet,
    ) -> Result<Plan> {
        if self.mode == AnalyzeMode::Off {
            return transformer.run_all(plan, caps, fired);
        }
        let opts = ValidateOptions::default();
        let strict = self.mode.is_strict();
        let mut expected = plan_output_schema(&plan);
        transformer.run_all_audited(plan, caps, fired, &mut |rule, plan| {
            let t0 = Instant::now();
            let report = validate_plan(plan, &opts);
            let now = plan_output_schema(plan);
            let drift = match (&expected, &now) {
                (Some(before), Some(after)) => schema_drift(before, after),
                _ => None,
            };
            let d = t0.elapsed();
            self.duration.record(d);
            hyperq_obs::provenance::note_stage("validate", d);
            // The next rule is audited against the tree this one produced,
            // even in log-only mode, so one bad rule is blamed exactly once.
            expected = now;
            if report.is_clean() && drift.is_none() {
                return Ok(());
            }
            self.count_report(&report);
            if drift.is_some() {
                self.count_violation(Invariant::RuleSchemaDrift);
            }
            self.obs
                .metrics
                .counter("hyperq_rule_audit_failures_total", &[("rule", rule)])
                .inc();
            if strict {
                let mut msg = format!("rule '{rule}' broke the plan");
                if let Some(d) = drift {
                    msg.push_str(&format!(": output schema changed ({d})"));
                }
                if !report.is_clean() {
                    msg.push_str(&format!(": {report}"));
                }
                return Err(HyperQError::Validation(msg));
            }
            Ok(())
        })
    }

    /// Strict-mode serializer round-trip audit: re-parse the serialized
    /// SQL in the ANSI dialect (the same dialect the engine itself uses to
    /// parse serialized requests), re-bind it against the catalog, and
    /// diff the output schema against the plan that was serialized.
    pub fn audit_roundtrip(
        &self,
        sql: &str,
        plan: &Plan,
        catalog: &dyn MetadataProvider,
    ) -> Result<()> {
        if !self.mode.is_strict() {
            return Ok(());
        }
        let Some(expected) = plan_output_schema(plan) else {
            return Ok(());
        };
        let t0 = Instant::now();
        let outcome = self.roundtrip_inner(sql, &expected, catalog);
        let d = t0.elapsed();
        self.duration.record(d);
        hyperq_obs::provenance::note_stage("validate", d);
        self.count_check("roundtrip");
        if let Err(detail) = outcome {
            self.count_violation(Invariant::RoundTrip);
            return Err(HyperQError::Validation(format!(
                "serializer round-trip: {detail}"
            )));
        }
        Ok(())
    }

    fn roundtrip_inner(
        &self,
        sql: &str,
        expected: &Schema,
        catalog: &dyn MetadataProvider,
    ) -> std::result::Result<(), String> {
        let stmts = parse_statements(sql, Dialect::Ansi)
            .map_err(|e| format!("serialized SQL does not re-parse: {e} — {sql}"))?;
        let [ps] = &stmts[..] else {
            return Err(format!(
                "serialized SQL re-parses into {} statements — {sql}",
                stmts.len()
            ));
        };
        let mut binder = Binder::new(catalog);
        let rebound = binder
            .bind_statement(&ps.stmt)
            .map_err(|e| format!("serialized SQL does not re-bind: {e} — {sql}"))?;
        let Some(actual) = plan_output_schema(&rebound) else {
            return Err(format!("serialized SQL re-bound to a schemaless plan — {sql}"));
        };
        if let Some(diff) = roundtrip_drift(expected, &actual) {
            return Err(format!("output schema diverged ({diff}) — {sql}"));
        }
        Ok(())
    }
}

/// Schema-preservation check for rewrite rules: same width, same output
/// names (case-insensitive), same types up to `Unknown`. Qualifiers and
/// nullability are rule-visible implementation detail (e.g. the with-ties
/// lowering re-projects through a derived table and legitimately drops
/// qualifiers), so they do not participate.
fn schema_drift(before: &Schema, after: &Schema) -> Option<String> {
    if before.len() != after.len() {
        return Some(format!(
            "{} columns before, {} after",
            before.len(),
            after.len()
        ));
    }
    for (b, a) in before.fields.iter().zip(after.fields.iter()) {
        if !b.name.eq_ignore_ascii_case(&a.name) {
            return Some(format!("column {} renamed to {}", b.name, a.name));
        }
        if b.ty != a.ty && b.ty != SqlType::Unknown && a.ty != SqlType::Unknown {
            return Some(format!("column {} retyped {} -> {}", b.name, b.ty, a.ty));
        }
    }
    None
}

/// Round-trip comparison is looser on types than the rule audit: re-binding
/// serialized SQL re-derives expression types from scratch, and lattice
/// widenings (integer vs. double, decimal precision) are expected — only
/// incompatible types (no common supertype) count as divergence.
fn roundtrip_drift(expected: &Schema, actual: &Schema) -> Option<String> {
    if expected.len() != actual.len() {
        return Some(format!(
            "{} columns expected, {} re-bound",
            expected.len(),
            actual.len()
        ));
    }
    for (e, a) in expected.fields.iter().zip(actual.fields.iter()) {
        if !e.name.eq_ignore_ascii_case(&a.name) {
            return Some(format!("column {} re-bound as {}", e.name, a.name));
        }
        if e.ty.common_supertype(&a.ty).is_none() {
            return Some(format!(
                "column {} expected type {}, re-bound as {}",
                e.name, e.ty, a.ty
            ));
        }
    }
    None
}
