//! Query binding: SELECT blocks, FROM resolution, aggregate/window
//! assembly, set operations and CTEs.

use std::collections::HashMap;
use std::mem;

use hyperq_parser::ast as past;
use hyperq_parser::{parse_one, Dialect};
use hyperq_xtra::expr::{ScalarExpr, SortExpr};
use hyperq_xtra::feature::Feature;
use hyperq_xtra::rel::{Grouping, JoinKind, RelExpr};
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;

use super::Binder;
use crate::error::{HyperQError, Result};

/// Per-block binding context.
#[derive(Clone, Default)]
pub(crate) struct BlockContext {
    /// The block's FROM scope.
    pub scope: Schema,
    /// Select-list aliases bound so far (upper-cased name → bound
    /// definition) — the substrate for chained-projection resolution (X3).
    pub aliases: HashMap<String, ScalarExpr>,
    pub allow_aggregates: bool,
    pub allow_windows: bool,
}

impl BlockContext {
    pub fn for_scope(scope: Schema) -> Self {
        BlockContext { scope, ..Default::default() }
    }
}

impl<'a> Binder<'a> {
    /// Bind a query expression (WITH + body + final ORDER BY).
    pub fn bind_query(&mut self, q: &past::Query) -> Result<RelExpr> {
        if q.recursive {
            return self.err(
                "recursive query reached the binder; it must be emulated by the mid tier",
            );
        }
        let cte_mark = self.ctes.len();
        for cte in &q.ctes {
            let rel = self.bind_query(&cte.query)?;
            let name = cte.name.to_ascii_uppercase();
            let cols: Option<Vec<String>> = if cte.columns.is_empty() {
                None
            } else {
                Some(cte.columns.iter().map(|c| c.to_ascii_uppercase()).collect())
            };
            let schema = rel
                .schema()
                .with_alias(&name, cols.as_deref())
                .map_err(HyperQError::Bind)?;
            self.ctes.push((
                name.clone(),
                RelExpr::Alias { input: Box::new(rel), alias: name, schema },
            ));
        }
        // A query-level ORDER BY on a plain select block belongs to the
        // block (it may reference non-projected input columns, which the
        // block's hidden-column machinery handles); on a set operation it
        // sorts the output by name/ordinal.
        let result = match (&q.body, q.order_by.is_empty()) {
            (past::QueryBody::Select(block), false) if block.order_by.is_empty() => {
                let mut merged = (**block).clone();
                merged.order_by = q.order_by.clone();
                self.bind_select_block(&merged)
            }
            _ => {
                let rel = self.bind_query_body(&q.body)?;
                if q.order_by.is_empty() {
                    Ok(rel)
                } else {
                    self.bind_output_order(rel, &q.order_by)
                }
            }
        };
        self.ctes.truncate(cte_mark);
        result
    }

    fn bind_query_body(&mut self, body: &past::QueryBody) -> Result<RelExpr> {
        match body {
            past::QueryBody::Select(block) => self.bind_select_block(block),
            past::QueryBody::SetOp { kind, all, left, right } => {
                let l = self.bind_query_body(left)?;
                let r = self.bind_query_body(right)?;
                let (ls, rs) = (l.schema(), r.schema());
                if ls.len() != rs.len() {
                    return self.err(format!(
                        "{} requires equally wide inputs ({} vs {} columns)",
                        kind.name(),
                        ls.len(),
                        rs.len()
                    ));
                }
                Ok(RelExpr::SetOp {
                    kind: *kind,
                    all: *all,
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
        }
    }

    /// Sort an already-projected relation by output-schema names/ordinals
    /// (query-level ORDER BY above a set operation or CTE body).
    fn bind_output_order(
        &mut self,
        rel: RelExpr,
        order_by: &[past::OrderByItem],
    ) -> Result<RelExpr> {
        let schema = rel.schema();
        let mut keys = Vec::with_capacity(order_by.len());
        for item in order_by {
            let expr = match ordinal_of(&item.expr) {
                Some(k) => {
                    self.record(Feature::OrdinalGroupBy);
                    let f = schema.fields.get(k - 1).ok_or_else(|| {
                        HyperQError::Bind(format!("ORDER BY position {k} is out of range"))
                    })?;
                    ScalarExpr::Column {
                        qualifier: f.qualifier.clone(),
                        name: f.name.clone(),
                        ty: f.ty.clone(),
                    }
                }
                None => {
                    let ctx = BlockContext::for_scope(schema.clone());
                    self.bind_expr(&item.expr, &ctx)?
                }
            };
            keys.push(SortExpr { expr, desc: item.desc, nulls_first: item.nulls_first });
        }
        Ok(RelExpr::Sort { input: Box::new(rel), keys })
    }

    /// Bind one SELECT block into a pipeline of XTRA operators:
    ///
    /// `FROM → WHERE → AGGREGATE → HAVING → WINDOW → QUALIFY → PROJECT →
    /// DISTINCT → SORT → LIMIT`.
    pub(crate) fn bind_select_block(&mut self, block: &past::SelectBlock) -> Result<RelExpr> {
        // Literal VALUES.
        if !block.value_rows.is_empty() {
            return self.bind_values(&block.value_rows);
        }

        let saved_windows = mem::take(&mut self.pending_windows);
        let ci_mark = self.ci_columns.len();
        let result = self.bind_select_block_inner(block);
        self.pending_windows = saved_windows;
        self.ci_columns.truncate(ci_mark);
        result
    }

    fn bind_select_block_inner(&mut self, block: &past::SelectBlock) -> Result<RelExpr> {
        // --- FROM ---------------------------------------------------------
        let mut rel: Option<RelExpr> = None;
        for tr in &block.from {
            let r = self.bind_table_ref(tr)?;
            rel = Some(match rel {
                None => r,
                Some(prev) => RelExpr::Join {
                    kind: JoinKind::Cross,
                    left: Box::new(prev),
                    right: Box::new(r),
                    condition: None,
                },
            });
        }
        let mut rel = match rel {
            Some(r) => r,
            // SELECT without FROM: a single empty row.
            None => RelExpr::Values { rows: vec![Vec::new()], schema: Schema::empty() },
        };

        // --- Implicit joins (X2) -------------------------------------------
        // Tables referenced by qualifier anywhere in the block but missing
        // from FROM are appended as cross-join factors.
        for table in self.find_implicit_tables(block, &rel.schema())? {
            let def = self.lookup_table(&table)?;
            self.record(Feature::ImplicitJoin);
            self.register_ci_columns(&def, None);
            let get = RelExpr::Get {
                table: def.name.clone(),
                alias: Some(def.base_name().to_string()),
                schema: def.schema(None),
            };
            rel = RelExpr::Join {
                kind: JoinKind::Cross,
                left: Box::new(rel),
                right: Box::new(get),
                condition: None,
            };
        }

        let mut ctx = BlockContext {
            scope: rel.schema(),
            aliases: HashMap::new(),
            allow_aggregates: false,
            allow_windows: false,
        };

        // --- WHERE ---------------------------------------------------------
        if let Some(w) = &block.where_clause {
            let predicate = self.bind_expr(w, &ctx)?;
            rel = RelExpr::Select { input: Box::new(rel), predicate };
        }

        // --- GROUP BY specification ----------------------------------------
        let (group_asts, grouping) = self.flatten_group_by(&block.group_by)?;

        // --- Select list -----------------------------------------------------
        ctx.allow_aggregates = true;
        ctx.allow_windows = true;
        let mut projections: Vec<(ScalarExpr, String)> = Vec::new();
        for (i, item) in block.items.iter().enumerate() {
            match item {
                past::SelectItem::Wildcard => {
                    for f in &ctx.scope.fields {
                        projections.push((
                            ScalarExpr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                                ty: f.ty.clone(),
                            },
                            f.name.clone(),
                        ));
                    }
                }
                past::SelectItem::QualifiedWildcard(q) => {
                    let qual = q.base();
                    let mut matched = false;
                    for f in &ctx.scope.fields {
                        if f.qualifier.as_deref().map(|fq| fq.eq_ignore_ascii_case(&qual))
                            == Some(true)
                        {
                            matched = true;
                            projections.push((
                                ScalarExpr::Column {
                                    qualifier: f.qualifier.clone(),
                                    name: f.name.clone(),
                                    ty: f.ty.clone(),
                                },
                                f.name.clone(),
                            ));
                        }
                    }
                    if !matched {
                        return self.err(format!("unknown table qualifier {qual}.*"));
                    }
                }
                past::SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, &ctx)?;
                    let name = alias
                        .as_ref().map_or_else(|| match &bound {
                            ScalarExpr::Column { name, .. } => name.clone(),
                            _ => format!("EXPR_{}", i + 1),
                        }, |a| a.to_ascii_uppercase());
                    if let Some(a) = alias {
                        // Later items (and other clauses) may reference this
                        // alias — Teradata chained projections (X3).
                        ctx.aliases.insert(a.to_ascii_uppercase(), bound.clone());
                    }
                    projections.push((bound, name));
                }
            }
        }

        // --- HAVING / QUALIFY / ORDER BY (bound before aggregate assembly) --
        let mut having = match &block.having {
            Some(h) => Some(self.bind_expr(h, &ctx)?),
            None => None,
        };
        let mut qualify = match &block.qualify {
            Some(q) => Some(self.bind_expr(q, &ctx)?),
            None => None,
        };
        let mut group_bound: Vec<ScalarExpr> = Vec::with_capacity(group_asts.len());
        {
            // Group expressions may not contain aggregates or windows.
            let gctx = BlockContext { allow_aggregates: false, allow_windows: false, ..ctx.clone() };
            for g in &group_asts {
                match ordinal_of(g) {
                    Some(k) => {
                        self.record(Feature::OrdinalGroupBy);
                        let (e, _) = projections.get(k - 1).ok_or_else(|| {
                            HyperQError::Bind(format!("GROUP BY position {k} is out of range"))
                        })?;
                        group_bound.push(e.clone());
                    }
                    None => group_bound.push(self.bind_expr(g, &gctx)?),
                }
            }
        }

        // Bind ORDER BY keys against the block scope + aliases (resolution
        // against projected outputs happens during assembly below).
        let mut order_keys: Vec<(ScalarExpr, bool, Option<bool>)> = Vec::new();
        for item in &block.order_by {
            let bound = match ordinal_of(&item.expr) {
                Some(k) => {
                    self.record(Feature::OrdinalGroupBy);
                    let (e, _) = projections.get(k - 1).ok_or_else(|| {
                        HyperQError::Bind(format!("ORDER BY position {k} is out of range"))
                    })?;
                    e.clone()
                }
                None => self.bind_expr(&item.expr, &ctx)?,
            };
            order_keys.push((bound, item.desc, item.nulls_first));
        }

        // --- Aggregate assembly ---------------------------------------------
        let mut windows = mem::take(&mut self.pending_windows);
        let has_aggregates = !group_bound.is_empty()
            || projections.iter().any(|(e, _)| e.contains_aggregate())
            || having.as_ref().is_some_and(hyperq_xtra::ScalarExpr::contains_aggregate)
            || order_keys.iter().any(|(e, ..)| e.contains_aggregate())
            || windows.iter().any(|w| {
                w.arg.as_ref().is_some_and(hyperq_xtra::ScalarExpr::contains_aggregate)
                    || w.partition_by.iter().any(hyperq_xtra::ScalarExpr::contains_aggregate)
                    || w.order_by.iter().any(|k| k.expr.contains_aggregate())
            });

        if has_aggregates {
            rel = self.assemble_aggregate(
                rel,
                &group_bound,
                grouping,
                &mut projections,
                &mut having,
                &mut qualify,
                &mut order_keys,
                &mut windows,
            )?;
            if let Some(h) = having.take() {
                rel = RelExpr::Select { input: Box::new(rel), predicate: h };
            }
        } else if having.is_some() {
            return self.err("HAVING requires aggregation");
        }

        // --- Window / QUALIFY (X1 lowering) -----------------------------------
        if !windows.is_empty() {
            rel = RelExpr::Window { input: Box::new(rel), exprs: windows };
        }
        if let Some(q) = qualify.take() {
            // The paper's Table 2 rewrite: window functions computed by the
            // operator above; the QUALIFY predicate now refers to the
            // computed columns.
            rel = RelExpr::Select { input: Box::new(rel), predicate: q };
        }

        // --- Projection / DISTINCT / ORDER / LIMIT ----------------------------
        // Resolve every sort key to a projection index, appending hidden
        // projections for keys not in the select list.
        let visible = projections.len();
        let mut key_specs: Vec<(usize, bool, Option<bool>)> = Vec::new();
        for (bound, desc, nulls_first) in order_keys {
            let idx = match projections.iter().position(|(e, _)| *e == bound) {
                Some(i) => i,
                None => {
                    if block.distinct {
                        return self.err(
                            "ORDER BY expression must appear in the select list when \
                             DISTINCT is specified",
                        );
                    }
                    projections.push((bound, self.fresh("S")));
                    projections.len() - 1
                }
            };
            key_specs.push((idx, desc, nulls_first));
        }
        let hidden = projections.len() - visible;

        // Output names may be duplicated (legal in SQL); if the sort or the
        // hidden-column strip must reference them, uniquify internal names
        // and restore the user-visible names in a final projection.
        let duplicated = |name: &String| projections.iter().filter(|(_, n)| n == name).count() > 1;
        let needs_rename = hidden > 0
            || key_specs
                .iter()
                .any(|(i, ..)| duplicated(&projections[*i].1));
        let originals: Vec<String> = projections.iter().map(|(_, n)| n.clone()).collect();
        if needs_rename {
            for (i, (_, name)) in projections.iter_mut().enumerate() {
                *name = format!("__P{i}");
            }
        }
        let keys: Vec<SortExpr> = key_specs
            .into_iter()
            .map(|(i, desc, nulls_first)| SortExpr {
                expr: ScalarExpr::Column {
                    qualifier: None,
                    name: projections[i].1.clone(),
                    ty: projections[i].0.ty(),
                },
                desc,
                nulls_first,
            })
            .collect();

        rel = RelExpr::Project { input: Box::new(rel), exprs: projections };
        if block.distinct {
            rel = RelExpr::Distinct { input: Box::new(rel) };
        }
        if !keys.is_empty() {
            rel = RelExpr::Sort { input: Box::new(rel), keys };
        }
        if let Some(top) = &block.top {
            rel = RelExpr::Limit {
                input: Box::new(rel),
                limit: Some(top.n),
                offset: 0,
                with_ties: top.with_ties,
            };
        } else if let Some(n) = block.limit {
            rel = RelExpr::Limit {
                input: Box::new(rel),
                limit: Some(n),
                offset: 0,
                with_ties: false,
            };
        }
        if needs_rename {
            // Strip hidden sort columns and restore user-visible names.
            let schema = rel.schema();
            rel = RelExpr::Project {
                input: Box::new(rel),
                exprs: schema.fields[..visible]
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        (
                            ScalarExpr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                                ty: f.ty.clone(),
                            },
                            originals[i].clone(),
                        )
                    })
                    .collect(),
            };
        }
        Ok(rel)
    }

    /// Pull every distinct aggregate out of the bound expressions, build
    /// the `Aggregate` operator, and rewrite all expressions to reference
    /// its outputs.
    #[allow(clippy::too_many_arguments)]
    fn assemble_aggregate(
        &mut self,
        input: RelExpr,
        group_bound: &[ScalarExpr],
        grouping: Grouping,
        projections: &mut [(ScalarExpr, String)],
        having: &mut Option<ScalarExpr>,
        qualify: &mut Option<ScalarExpr>,
        order_keys: &mut [(ScalarExpr, bool, Option<bool>)],
        windows: &mut [hyperq_xtra::expr::WindowExpr],
    ) -> Result<RelExpr> {
        // Name group outputs: plain columns keep their identity, complex
        // expressions get generated names.
        let mut group_by: Vec<(ScalarExpr, String)> = Vec::with_capacity(group_bound.len());
        for g in group_bound {
            let name = match g {
                ScalarExpr::Column { name, .. } => name.clone(),
                _ => self.fresh("G"),
            };
            group_by.push((g.clone(), name));
        }

        // Collect distinct aggregates from every expression.
        let mut aggs: Vec<(ScalarExpr, String)> = Vec::new();
        let collect = |e: &ScalarExpr, aggs: &mut Vec<(ScalarExpr, String)>, b: &mut Binder| {
            let mut found: Vec<ScalarExpr> = Vec::new();
            // Do not cross subquery boundaries: an inner query's aggregates
            // belong to its own Aggregate operator.
            e.visit_no_subquery(&mut |x| {
                if matches!(x, ScalarExpr::Agg { .. }) && !found.contains(x) {
                    found.push(x.clone());
                }
            });
            for f in found {
                if !aggs.iter().any(|(a, _)| *a == f) {
                    let name = b.fresh("A");
                    aggs.push((f, name));
                }
            }
        };
        for (e, _) in projections.iter() {
            collect(e, &mut aggs, self);
        }
        if let Some(h) = having.as_ref() {
            collect(h, &mut aggs, self);
        }
        if let Some(q) = qualify.as_ref() {
            collect(q, &mut aggs, self);
        }
        for (e, ..) in order_keys.iter() {
            collect(e, &mut aggs, self);
        }
        for w in windows.iter() {
            if let Some(a) = &w.arg {
                collect(a, &mut aggs, self);
            }
            for p in &w.partition_by {
                collect(p, &mut aggs, self);
            }
            for k in &w.order_by {
                collect(&k.expr, &mut aggs, self);
            }
        }

        // Rewriter: aggregates and complex group expressions become column
        // references into the Aggregate's output schema.
        let agg_repl: Vec<(ScalarExpr, ScalarExpr)> = aggs
            .iter()
            .map(|(a, n)| {
                (
                    a.clone(),
                    ScalarExpr::Column { qualifier: None, name: n.clone(), ty: a.ty() },
                )
            })
            .collect();
        // Every group key — including plain columns, whose qualifier is
        // stripped by the Aggregate's output schema — is referenced by
        // output name above the aggregate.
        let group_repl: Vec<(ScalarExpr, ScalarExpr)> = group_by
            .iter()
            .map(|(g, n)| {
                (
                    g.clone(),
                    ScalarExpr::Column { qualifier: None, name: n.clone(), ty: g.ty() },
                )
            })
            .collect();
        // Two passes: aggregates first (whole-node match requires their
        // arguments untouched), then group keys for the remaining
        // occurrences outside aggregates.
        let replace = |e: ScalarExpr| -> ScalarExpr {
            let e = e.rewrite_no_subquery(&mut |x| {
                for (from, to) in &agg_repl {
                    if x == *from {
                        return to.clone();
                    }
                }
                x
            });
            e.rewrite_no_subquery(&mut |x| {
                for (from, to) in &group_repl {
                    if x == *from {
                        return to.clone();
                    }
                }
                x
            })
        };
        for (e, _) in projections.iter_mut() {
            *e = replace(e.clone());
        }
        if let Some(h) = having.take() {
            *having = Some(replace(h));
        }
        if let Some(q) = qualify.take() {
            *qualify = Some(replace(q));
        }
        for (e, ..) in order_keys.iter_mut() {
            *e = replace(e.clone());
        }
        for w in windows.iter_mut() {
            if let Some(a) = w.arg.take() {
                w.arg = Some(replace(a));
            }
            for p in &mut w.partition_by {
                *p = replace(p.clone());
            }
            for k in &mut w.order_by {
                k.expr = replace(k.expr.clone());
            }
        }

        Ok(RelExpr::Aggregate {
            input: Box::new(input),
            group_by,
            grouping,
            aggs,
        })
    }

    fn bind_values(&mut self, value_rows: &[Vec<past::Expr>]) -> Result<RelExpr> {
        let empty = BlockContext::default();
        let mut rows: Vec<Vec<ScalarExpr>> = Vec::with_capacity(value_rows.len());
        for row in value_rows {
            let mut bound = Vec::with_capacity(row.len());
            for e in row {
                bound.push(self.bind_expr(e, &empty)?);
            }
            rows.push(bound);
        }
        let width = rows.first().map_or(0, std::vec::Vec::len);
        if rows.iter().any(|r| r.len() != width) {
            return self.err("VALUES rows must all have the same width");
        }
        let schema = Schema::new(
            (0..width)
                .map(|i| {
                    // The column type is the supertype across rows.
                    let mut ty = SqlType::Unknown;
                    for r in &rows {
                        ty = ty.common_supertype(&r[i].ty()).unwrap_or(SqlType::Unknown);
                    }
                    Field {
                        qualifier: None,
                        name: format!("COL{}", i + 1),
                        ty,
                        nullable: true,
                    }
                })
                .collect(),
        );
        Ok(RelExpr::Values { rows, schema })
    }

    fn flatten_group_by(
        &mut self,
        items: &[past::GroupByItem],
    ) -> Result<(Vec<past::Expr>, Grouping)> {
        let mut plain: Vec<past::Expr> = Vec::new();
        let mut extension: Option<&past::GroupByItem> = None;
        for item in items {
            match item {
                past::GroupByItem::Expr(e) => plain.push(e.clone()),
                ext => {
                    if extension.is_some() {
                        return self.err(
                            "multiple OLAP grouping extensions in one GROUP BY are not supported",
                        );
                    }
                    extension = Some(ext);
                }
            }
        }
        match extension {
            None => Ok((plain, Grouping::Simple)),
            Some(past::GroupByItem::Rollup(exprs)) => {
                self.record(Feature::GroupingExtensions);
                let offset = plain.len();
                let n = exprs.len();
                plain.extend(exprs.iter().cloned());
                let Grouping::Sets(sets) = Grouping::rollup(n) else {
                    unreachable!("rollup returns sets");
                };
                Ok((plain, Grouping::Sets(prefix_sets(sets, offset))))
            }
            Some(past::GroupByItem::Cube(exprs)) => {
                self.record(Feature::GroupingExtensions);
                let offset = plain.len();
                let n = exprs.len();
                plain.extend(exprs.iter().cloned());
                let Grouping::Sets(sets) = Grouping::cube(n) else {
                    unreachable!("cube returns sets");
                };
                Ok((plain, Grouping::Sets(prefix_sets(sets, offset))))
            }
            Some(past::GroupByItem::GroupingSets(sets)) => {
                self.record(Feature::GroupingExtensions);
                let offset = plain.len();
                // Deduplicate expressions across sets.
                let mut exprs: Vec<past::Expr> = Vec::new();
                let mut index_sets: Vec<Vec<usize>> = Vec::new();
                for set in sets {
                    let mut indices: Vec<usize> = (0..offset).collect();
                    for e in set {
                        let idx = match exprs.iter().position(|x| x == e) {
                            Some(i) => i,
                            None => {
                                exprs.push(e.clone());
                                exprs.len() - 1
                            }
                        };
                        indices.push(offset + idx);
                    }
                    index_sets.push(indices);
                }
                plain.extend(exprs);
                Ok((plain, Grouping::Sets(index_sets)))
            }
            Some(past::GroupByItem::Expr(_)) => unreachable!("handled above"),
        }
    }

    // --- FROM binding --------------------------------------------------------

    pub(crate) fn bind_table_ref(&mut self, tr: &past::TableRef) -> Result<RelExpr> {
        match tr {
            past::TableRef::Table { name, alias } => self.bind_named_table(name, alias.as_ref()),
            past::TableRef::Derived { query, alias } => {
                let rel = self.bind_query(query)?;
                // Column names in a derived table alias (a Figure 2 feature
                // many targets lack) are normalized into the Alias schema so
                // the serializer can always emit plain column aliases.
                let cols: Option<Vec<String>> = if alias.columns.is_empty() {
                    None
                } else {
                    Some(
                        alias
                            .columns
                            .iter()
                            .map(|c| c.to_ascii_uppercase())
                            .collect(),
                    )
                };
                let name = alias.name.to_ascii_uppercase();
                let schema = rel
                    .schema()
                    .with_alias(&name, cols.as_deref())
                    .map_err(HyperQError::Bind)?;
                Ok(RelExpr::Alias { input: Box::new(rel), alias: name, schema })
            }
            past::TableRef::Join { left, right, kind, constraint } => {
                let l = self.bind_table_ref(left)?;
                let r = self.bind_table_ref(right)?;
                let condition = match constraint {
                    past::JoinConstraint::On(e) => {
                        let scope = l.schema().join(&r.schema());
                        let ctx = BlockContext::for_scope(scope);
                        Some(self.bind_expr(e, &ctx)?)
                    }
                    past::JoinConstraint::None => None,
                };
                Ok(RelExpr::Join {
                    kind: *kind,
                    left: Box::new(l),
                    right: Box::new(r),
                    condition,
                })
            }
        }
    }

    fn bind_named_table(
        &mut self,
        name: &past::ObjectName,
        alias: Option<&past::TableAlias>,
    ) -> Result<RelExpr> {
        let base = name.base();
        let alias_name = alias.map(|a| a.name.to_ascii_uppercase());

        // 1. CTE reference.
        if name.0.len() == 1 {
            if let Some((_, rel)) = self.ctes.iter().rev().find(|(n, _)| *n == base) {
                let rel = rel.clone();
                return Ok(match &alias_name {
                    Some(a) if *a != base => {
                        let schema = rel
                            .schema()
                            .with_alias(a, None)
                            .map_err(HyperQError::Bind)?;
                        RelExpr::Alias { input: Box::new(rel), alias: a.clone(), schema }
                    }
                    _ => rel,
                });
            }
        }

        // 2. View: inline its body (views live in the mid-tier DTM catalog,
        //    never on the target — which is what makes DML-on-view
        //    emulation possible).
        if let Some(view) = self.catalog.view(&name.canonical()) {
            let parsed = parse_one(&view.body_sql, Dialect::Teradata)
                .map_err(|e| HyperQError::Bind(format!("invalid view body: {e}")))?;
            // The DTM catalog stores the full CREATE VIEW statement text;
            // accept either a bare query or the wrapped definition.
            let q = match parsed.stmt {
                past::Statement::Query(q) => q,
                past::Statement::CreateView { query, .. } => query,
                _ => return self.err(format!("view {} body is not a query", view.name)),
            };
            let rel = self.bind_query(&q)?;
            let vname = alias_name.unwrap_or_else(|| {
                view.name
                    .rsplit('.')
                    .next()
                    .unwrap_or(&view.name)
                    .to_ascii_uppercase()
            });
            let cols: Option<Vec<String>> = if view.columns.is_empty() {
                None
            } else {
                Some(view.columns.iter().map(|c| c.to_ascii_uppercase()).collect())
            };
            let schema = rel
                .schema()
                .with_alias(&vname, cols.as_deref())
                .map_err(HyperQError::Bind)?;
            return Ok(RelExpr::Alias { input: Box::new(rel), alias: vname, schema });
        }

        // 3. Base table.
        let def = self.lookup_table(&name.canonical())?;
        self.register_ci_columns(&def, alias_name.as_deref());
        // The range variable is the name *as referenced* (not the resolved
        // physical name) so that overlay mappings — e.g. a recursive CTE
        // name resolved to a WorkTable — keep qualified references working.
        let effective = alias_name.unwrap_or_else(|| name.base());
        Ok(RelExpr::Get {
            table: def.name.clone(),
            alias: Some(effective.clone()),
            schema: def.schema(Some(&effective)),
        })
    }

    /// Discover implicit-join tables: qualifiers used in the block that are
    /// not FROM-visible, not outer-scope-visible, but name catalog tables.
    fn find_implicit_tables(
        &self,
        block: &past::SelectBlock,
        scope: &Schema,
    ) -> Result<Vec<String>> {
        let mut out: Vec<String> = Vec::new();
        let check = |e: &past::Expr, out: &mut Vec<String>| {
            e.walk_no_subquery(&mut |x| {
                if let past::Expr::Ident(name) = x {
                    if name.0.len() >= 2 {
                        let qualifier = name.0[name.0.len() - 2].to_ascii_uppercase();
                        let visible = scope
                            .fields
                            .iter()
                            .any(|f| f.qualifier.as_deref() == Some(qualifier.as_str()))
                            || self.outer_scopes.iter().any(|s| {
                                s.fields
                                    .iter()
                                    .any(|f| f.qualifier.as_deref() == Some(qualifier.as_str()))
                            })
                            || out.iter().any(|t| {
                                t == &qualifier || t.ends_with(&format!(".{qualifier}"))
                            });
                        if !visible && self.catalog.table(&qualifier).is_some() {
                            out.push(qualifier);
                        }
                    }
                }
            });
        };
        for item in &block.items {
            if let past::SelectItem::Expr { expr, .. } = item {
                check(expr, &mut out);
            }
        }
        if let Some(w) = &block.where_clause {
            check(w, &mut out);
        }
        if let Some(h) = &block.having {
            check(h, &mut out);
        }
        if let Some(q) = &block.qualify {
            check(q, &mut out);
        }
        for k in &block.order_by {
            check(&k.expr, &mut out);
        }
        for g in &block.group_by {
            if let past::GroupByItem::Expr(e) = g {
                check(e, &mut out);
            }
        }
        Ok(out)
    }
}

/// Shift every index in the grouping sets by `offset` and prepend the
/// always-grouped plain columns `0..offset`.
fn prefix_sets(sets: Vec<Vec<usize>>, offset: usize) -> Vec<Vec<usize>> {
    sets.into_iter()
        .map(|s| {
            let mut v: Vec<usize> = (0..offset).collect();
            v.extend(s.into_iter().map(|i| i + offset));
            v
        })
        .collect()
}

/// If the AST expression is a bare positive integer literal, its value.
pub(crate) fn ordinal_of(e: &past::Expr) -> Option<usize> {
    match e {
        past::Expr::Literal(past::Literal::Number(n)) if !n.contains('.') => {
            n.parse::<usize>().ok().filter(|v| *v >= 1)
        }
        _ => None,
    }
}
