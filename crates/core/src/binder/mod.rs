//! The Binder — second half of the paper's Algebrizer (§4.2, §5.2).
//!
//! Binds the parser AST into XTRA: metadata lookup, name resolution, type
//! derivation, and the binder-stage rewrites of Table 2:
//!
//! * **Implicit joins** (X2) — tables referenced outside `FROM` are added
//!   to it,
//! * **Chained projections** (X3) — select-list aliases referenced in the
//!   same block are replaced by their definitions,
//! * **Ordinal GROUP BY / ORDER BY** (X4) — positions resolved to the
//!   corresponding select items,
//! * **QUALIFY** (X1) — lowered into a `window` operator plus a filter over
//!   the computed columns,
//! * **DML on views** (E6) — rewritten against the base table,
//! * **Case-insensitive columns** (E9) — comparisons wrapped in `UPPER`.

mod expr;
mod query;

use std::collections::HashMap;

use hyperq_parser::ast as past;
use hyperq_xtra::catalog::MetadataProvider;
use hyperq_xtra::datum::Datum;
use hyperq_xtra::expr::{ScalarExpr, WindowExpr};
use hyperq_xtra::feature::{Feature, FeatureSet};
use hyperq_xtra::rel::{Assignment, Plan, RelExpr};
use hyperq_xtra::schema::Schema;
use hyperq_xtra::types::SqlType;
use hyperq_xtra::catalog::{ColumnDef, TableDef, TableKind};

use crate::error::{HyperQError, Result};

/// Binds statements against a [`MetadataProvider`].
pub struct Binder<'a> {
    pub(crate) catalog: &'a dyn MetadataProvider,
    /// Tracked features observed while binding.
    pub features: FeatureSet,
    /// Bound values for `:name` parameters (macro/procedure expansion).
    pub params: HashMap<String, Datum>,
    /// Bound values for `?` positional parameters (parameterized queries,
    /// one of the ODBC-server request kinds of §4.5), consumed in order.
    pub positional: Vec<Datum>,
    pub(crate) positional_cursor: usize,
    /// Non-recursive CTEs visible to the query being bound, innermost last.
    pub(crate) ctes: Vec<(String, RelExpr)>,
    /// Outer query scopes for correlated subqueries, innermost last.
    pub(crate) outer_scopes: Vec<Schema>,
    /// Case-insensitive (NOT CASESPECIFIC) columns visible in the current
    /// block, as (qualifier, column) pairs.
    pub(crate) ci_columns: Vec<(String, String)>,
    /// Window expressions collected while binding the current block.
    pub(crate) pending_windows: Vec<WindowExpr>,
    /// Counter for generated names.
    pub(crate) gensym: usize,
}

impl<'a> Binder<'a> {
    pub fn new(catalog: &'a dyn MetadataProvider) -> Self {
        Binder {
            catalog,
            features: FeatureSet::new(),
            params: HashMap::new(),
            positional: Vec::new(),
            positional_cursor: 0,
            ctes: Vec::new(),
            outer_scopes: Vec::new(),
            ci_columns: Vec::new(),
            pending_windows: Vec::new(),
            gensym: 0,
        }
    }

    pub fn with_params(mut self, params: HashMap<String, Datum>) -> Self {
        self.params = params;
        self
    }

    pub fn with_positional(mut self, values: Vec<Datum>) -> Self {
        self.positional = values;
        self
    }

    pub(crate) fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(HyperQError::Bind(msg.into()))
    }

    pub(crate) fn record(&mut self, f: Feature) {
        self.features.insert(f);
    }

    pub(crate) fn fresh(&mut self, prefix: &str) -> String {
        self.gensym += 1;
        format!("__{}{}", prefix, self.gensym)
    }

    /// Bind a top-level statement into an executable [`Plan`].
    ///
    /// Statements that need emulation (`MERGE`, macros, `HELP`, recursive
    /// queries, …) must be routed to the emulator *before* this is called;
    /// encountering one here is an internal error.
    pub fn bind_statement(&mut self, stmt: &past::Statement) -> Result<Plan> {
        match stmt {
            past::Statement::Query(q) => Ok(Plan::Query(self.bind_query(q)?)),
            past::Statement::Insert { table, columns, source } => {
                self.bind_insert(table, columns, source)
            }
            past::Statement::Update { table, alias, assignments, where_clause } => {
                self.bind_update(table, alias.as_deref(), assignments, where_clause.as_ref())
            }
            past::Statement::Delete { table, alias, where_clause } => {
                self.bind_delete(table, alias.as_deref(), where_clause.as_ref())
            }
            past::Statement::CreateTable { name, columns, set_semantics, kind, as_query } => {
                self.bind_create_table(name, columns, *set_semantics, *kind, as_query.as_deref())
            }
            past::Statement::DropTable { name, if_exists } => Ok(Plan::DropTable {
                name: name.canonical(),
                if_exists: *if_exists,
            }),
            past::Statement::DropView { name, if_exists } => Ok(Plan::DropView {
                name: name.canonical(),
                if_exists: *if_exists,
            }),
            other => self.err(format!(
                "statement requires emulation and cannot be bound directly: {other:?}"
            )),
        }
    }

    // --- DML ------------------------------------------------------------

    fn bind_insert(
        &mut self,
        table: &past::ObjectName,
        columns: &[String],
        source: &past::Query,
    ) -> Result<Plan> {
        let name = table.canonical();
        let def = self.lookup_table(&name)?;
        let source_rel = self.bind_query(source)?;
        let src_schema = source_rel.schema();
        let target_cols: Vec<&ColumnDef> = if columns.is_empty() {
            def.columns.iter().collect()
        } else {
            columns
                .iter()
                .map(|c| {
                    def.columns
                        .iter()
                        .find(|d| d.name.eq_ignore_ascii_case(c))
                        .ok_or_else(|| {
                            HyperQError::Bind(format!("column {c} not found in {name}"))
                        })
                })
                .collect::<Result<Vec<_>>>()?
        };
        if target_cols.len() != src_schema.len() {
            return self.err(format!(
                "INSERT into {name} provides {} values for {} columns",
                src_schema.len(),
                target_cols.len()
            ));
        }
        Ok(Plan::Insert {
            table: def.name.clone(),
            columns: target_cols.iter().map(|c| c.name.clone()).collect(),
            source: source_rel,
        })
    }

    fn bind_update(
        &mut self,
        table: &past::ObjectName,
        alias: Option<&str>,
        assignments: &[past::AssignmentAst],
        where_clause: Option<&past::Expr>,
    ) -> Result<Plan> {
        let name = table.canonical();
        let def = self.lookup_table(&name)?;
        let scope = def.schema(alias);
        self.register_ci_columns(&def, alias);
        let mut bound = Vec::with_capacity(assignments.len());
        for a in assignments {
            let col = def
                .columns
                .iter()
                .find(|c| c.name.eq_ignore_ascii_case(&a.column))
                .ok_or_else(|| {
                    HyperQError::Bind(format!("column {} not found in {name}", a.column))
                })?;
            let value = self.bind_expr_in(&a.value, &scope)?;
            bound.push(Assignment { column: col.name.clone(), value });
        }
        let predicate = where_clause
            .map(|w| self.bind_expr_in(w, &scope))
            .transpose()?;
        Ok(Plan::Update {
            table: def.name.clone(),
            alias: alias.map(str::to_ascii_uppercase),
            assignments: bound,
            predicate,
        })
    }

    fn bind_delete(
        &mut self,
        table: &past::ObjectName,
        alias: Option<&str>,
        where_clause: Option<&past::Expr>,
    ) -> Result<Plan> {
        let name = table.canonical();
        let def = self.lookup_table(&name)?;
        let scope = def.schema(alias);
        self.register_ci_columns(&def, alias);
        let predicate = where_clause
            .map(|w| self.bind_expr_in(w, &scope))
            .transpose()?;
        Ok(Plan::Delete {
            table: def.name.clone(),
            alias: alias.map(str::to_ascii_uppercase),
            predicate,
        })
    }

    // --- DDL ------------------------------------------------------------

    fn bind_create_table(
        &mut self,
        name: &past::ObjectName,
        columns: &[past::ColumnDefAst],
        set_semantics: Option<bool>,
        kind: past::CreateTableKind,
        as_query: Option<&past::Query>,
    ) -> Result<Plan> {
        let source = as_query.map(|q| self.bind_query(q)).transpose()?;
        let mut defs: Vec<ColumnDef> = Vec::new();
        if let Some(src) = &source {
            for f in &src.schema().fields {
                defs.push(ColumnDef::new(&f.name, f.ty.clone(), f.nullable));
            }
        }
        for c in columns {
            match &c.ty {
                // PERIOD columns are decomposed into begin/end halves — the
                // paper's Assumed-Independence example (§2.2.2): "a simple
                // translation would be breaking it into two separate
                // fields".
                SqlType::Period(inner) => {
                    self.record(Feature::ColumnProperties);
                    let mut begin = ColumnDef::new(
                        &format!("{}_BEGIN", c.name.to_ascii_uppercase()),
                        (**inner).clone(),
                        !c.not_null,
                    );
                    let mut end = ColumnDef::new(
                        &format!("{}_END", c.name.to_ascii_uppercase()),
                        (**inner).clone(),
                        !c.not_null,
                    );
                    begin.case_insensitive = false;
                    end.case_insensitive = false;
                    defs.push(begin);
                    defs.push(end);
                }
                ty => {
                    let mut def = ColumnDef::new(
                        &c.name.to_ascii_uppercase(),
                        ty.clone(),
                        !c.not_null,
                    );
                    if c.not_casespecific {
                        self.record(Feature::ColumnProperties);
                        def.case_insensitive = true;
                    }
                    if let Some(d) = &c.default {
                        // Bind the default in an empty scope.
                        let bound = self.bind_expr_in(d, &Schema::empty())?;
                        if !matches!(bound, ScalarExpr::Literal(..)) {
                            self.record(Feature::ColumnProperties);
                        }
                        def.default = Some(bound);
                    }
                    defs.push(def);
                }
            }
        }
        let table_kind = match kind {
            past::CreateTableKind::Permanent => TableKind::Permanent,
            past::CreateTableKind::Volatile => TableKind::Temporary,
            past::CreateTableKind::GlobalTemporary => {
                self.record(Feature::GlobalTempTable);
                TableKind::GlobalTemporary
            }
        };
        if set_semantics == Some(true) {
            self.record(Feature::SetTableSemantics);
        }
        Ok(Plan::CreateTable {
            def: TableDef {
                name: name.canonical(),
                columns: defs,
                set_semantics: set_semantics.unwrap_or(false),
                kind: table_kind,
            },
            source,
        })
    }

    // --- helpers ----------------------------------------------------------

    pub(crate) fn lookup_table(&self, name: &str) -> Result<TableDef> {
        self.catalog
            .table(name)
            .ok_or_else(|| HyperQError::Bind(format!("table {name} not found")))
    }

    pub(crate) fn register_ci_columns(&mut self, def: &TableDef, alias: Option<&str>) {
        let qualifier = alias.map_or_else(|| def.base_name().to_string(), str::to_ascii_uppercase);
        for c in &def.columns {
            if c.case_insensitive {
                self.ci_columns.push((qualifier.clone(), c.name.clone()));
            }
        }
    }

    /// Bind an expression against a single fixed scope (DML clauses).
    pub(crate) fn bind_expr_in(
        &mut self,
        e: &past::Expr,
        scope: &Schema,
    ) -> Result<ScalarExpr> {
        let ctx = query::BlockContext::for_scope(scope.clone());
        self.bind_expr(e, &ctx)
    }
}
