//! Expression binding: name resolution, type derivation, literal typing and
//! the expression-level tracked-feature detection (date arithmetic X6,
//! date–integer comparison X5, chained projections X3, case-insensitive
//! column comparisons E9).

use hyperq_parser::ast as past;
use hyperq_xtra::datum::{parse_date, parse_timestamp, Datum, Decimal, Interval};
use hyperq_xtra::expr::{
    AggFunc, ArithOp, ScalarExpr, ScalarFunc, SortExpr, WindowExpr, WindowFuncKind,
};
use hyperq_xtra::feature::Feature;
use hyperq_xtra::types::SqlType;

use super::query::BlockContext;
use super::Binder;
use crate::error::{HyperQError, Result};

impl<'a> Binder<'a> {
    /// Bind one AST expression in the given block context.
    pub(crate) fn bind_expr(&mut self, e: &past::Expr, ctx: &BlockContext) -> Result<ScalarExpr> {
        match e {
            past::Expr::Ident(name) => self.bind_ident(name, ctx),
            past::Expr::Literal(lit) => self.bind_literal(lit),
            past::Expr::Parameter(name) => self.bind_parameter(name.as_deref()),
            past::Expr::BinaryOp { op, left, right } => self.bind_binary(*op, left, right, ctx),
            past::Expr::UnaryMinus(inner) => {
                let e = self.bind_expr(inner, ctx)?;
                // Fold negative numeric literals so `-1` binds as a constant.
                Ok(match e {
                    ScalarExpr::Literal(Datum::Int(v), t) => {
                        ScalarExpr::Literal(Datum::Int(-v), t)
                    }
                    ScalarExpr::Literal(Datum::Dec(d), t) => {
                        ScalarExpr::Literal(Datum::Dec(d.neg()), t)
                    }
                    ScalarExpr::Literal(Datum::Double(v), t) => {
                        ScalarExpr::Literal(Datum::Double(-v), t)
                    }
                    other => ScalarExpr::Neg(Box::new(other)),
                })
            }
            past::Expr::Not(inner) => {
                Ok(ScalarExpr::Not(Box::new(self.bind_expr(inner, ctx)?)))
            }
            past::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_expr(expr, ctx)?),
                negated: *negated,
            }),
            past::Expr::Like { expr, pattern, negated } => Ok(ScalarExpr::Like {
                expr: Box::new(self.bind_expr(expr, ctx)?),
                pattern: Box::new(self.bind_expr(pattern, ctx)?),
                negated: *negated,
            }),
            past::Expr::Between { expr, low, high, negated } => Ok(ScalarExpr::Between {
                expr: Box::new(self.bind_expr(expr, ctx)?),
                low: Box::new(self.bind_expr(low, ctx)?),
                high: Box::new(self.bind_expr(high, ctx)?),
                negated: *negated,
            }),
            past::Expr::InList { expr, list, negated } => Ok(ScalarExpr::InList {
                expr: Box::new(self.bind_expr(expr, ctx)?),
                list: list
                    .iter()
                    .map(|x| self.bind_expr(x, ctx))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            }),
            past::Expr::InSubquery { expr, subquery, negated } => {
                let exprs = match expr.as_ref() {
                    past::Expr::Row(items) => items
                        .iter()
                        .map(|x| self.bind_expr(x, ctx))
                        .collect::<Result<Vec<_>>>()?,
                    single => vec![self.bind_expr(single, ctx)?],
                };
                let sub = self.bind_subquery(subquery, ctx)?;
                let width = sub.schema().len();
                if exprs.len() != width {
                    return self.err(format!(
                        "IN subquery returns {width} columns but {} were compared",
                        exprs.len()
                    ));
                }
                Ok(ScalarExpr::InSubquery {
                    exprs,
                    subquery: Box::new(sub),
                    negated: *negated,
                })
            }
            past::Expr::Exists { subquery, negated } => Ok(ScalarExpr::Exists {
                subquery: Box::new(self.bind_subquery(subquery, ctx)?),
                negated: *negated,
            }),
            past::Expr::Subquery(q) => {
                let sub = self.bind_subquery(q, ctx)?;
                if sub.schema().len() != 1 {
                    return self.err("scalar subquery must return exactly one column");
                }
                Ok(ScalarExpr::ScalarSubquery(Box::new(sub)))
            }
            past::Expr::QuantifiedCmp { left, op, quantifier, subquery } => {
                let exprs = match left.as_ref() {
                    past::Expr::Row(items) => {
                        self.record(Feature::VectorSubquery);
                        items
                            .iter()
                            .map(|x| self.bind_expr(x, ctx))
                            .collect::<Result<Vec<_>>>()?
                    }
                    single => vec![self.bind_expr(single, ctx)?],
                };
                let sub = self.bind_subquery(subquery, ctx)?;
                let width = sub.schema().len();
                if exprs.len() != width {
                    return self.err(format!(
                        "quantified subquery returns {width} columns but {} were compared",
                        exprs.len()
                    ));
                }
                Ok(ScalarExpr::QuantifiedCmp {
                    left: exprs,
                    op: *op,
                    quantifier: *quantifier,
                    subquery: Box::new(sub),
                })
            }
            past::Expr::Row(_) => {
                self.err("row value expression is only allowed in quantified comparisons")
            }
            past::Expr::Case { operand, branches, else_expr } => Ok(ScalarExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.bind_expr(o, ctx).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.bind_expr(c, ctx)?, self.bind_expr(r, ctx)?)))
                    .collect::<Result<Vec<_>>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|x| self.bind_expr(x, ctx).map(Box::new))
                    .transpose()?,
            }),
            past::Expr::Cast { expr, ty } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.bind_expr(expr, ctx)?),
                ty: ty.clone(),
            }),
            past::Expr::Extract { field, expr } => Ok(ScalarExpr::Extract {
                field: *field,
                expr: Box::new(self.bind_expr(expr, ctx)?),
            }),
            past::Expr::Position { substring, string } => Ok(ScalarExpr::Func {
                func: ScalarFunc::Position,
                args: vec![self.bind_expr(substring, ctx)?, self.bind_expr(string, ctx)?],
            }),
            past::Expr::Function { name, args, distinct, over, td_sort_arg } => {
                self.bind_function(name, args, *distinct, over.as_ref(), td_sort_arg.as_ref(), ctx)
            }
            past::Expr::FunctionStar { name, over } => {
                let upper = name.base();
                if upper != "COUNT" {
                    return self.err(format!("{upper}(*) is not a valid aggregate"));
                }
                match over {
                    Some(spec) => self.bind_window(
                        WindowFuncKind::Agg(AggFunc::CountStar),
                        None,
                        spec,
                        ctx,
                    ),
                    None => {
                        if !ctx.allow_aggregates {
                            return self.err("aggregate not allowed in this clause");
                        }
                        Ok(ScalarExpr::Agg {
                            func: AggFunc::CountStar,
                            distinct: false,
                            arg: None,
                        })
                    }
                }
            }
        }
    }

    fn bind_subquery(&mut self, q: &past::Query, ctx: &BlockContext) -> Result<RelSubquery> {
        self.outer_scopes.push(ctx.scope.clone());
        let result = self.bind_query(q);
        self.outer_scopes.pop();
        result
    }

    fn bind_ident(&mut self, name: &past::ObjectName, ctx: &BlockContext) -> Result<ScalarExpr> {
        // Niladic reserved functions first.
        if name.0.len() == 1 {
            match name.base().as_str() {
                "CURRENT_DATE" | "DATE" => {
                    return Ok(ScalarExpr::Func { func: ScalarFunc::CurrentDate, args: vec![] })
                }
                "CURRENT_TIMESTAMP" => {
                    return Ok(ScalarExpr::Func {
                        func: ScalarFunc::CurrentTimestamp,
                        args: vec![],
                    })
                }
                _ => {}
            }
        }
        let (qualifier, column) = match name.0.len() {
            1 => (None, name.0[0].to_ascii_uppercase()),
            _ => (
                Some(name.0[name.0.len() - 2].to_ascii_uppercase()),
                name.0[name.0.len() - 1].to_ascii_uppercase(),
            ),
        };
        // 1. Block scope.
        if let Some(i) = ctx
            .scope
            .try_resolve(qualifier.as_deref(), &column)
            .map_err(HyperQError::Bind)?
        {
            let f = &ctx.scope.fields[i];
            return Ok(ScalarExpr::Column {
                qualifier: f.qualifier.clone(),
                name: f.name.clone(),
                ty: f.ty.clone(),
            });
        }
        // 2. Outer scopes, innermost first (correlation).
        for scope in self.outer_scopes.iter().rev() {
            if let Some(i) = scope
                .try_resolve(qualifier.as_deref(), &column)
                .map_err(HyperQError::Bind)?
            {
                let f = &scope.fields[i];
                return Ok(ScalarExpr::Column {
                    qualifier: f.qualifier.clone(),
                    name: f.name.clone(),
                    ty: f.ty.clone(),
                });
            }
        }
        // 3. Select-list alias (chained projections, X3): replace the
        //    reference by its definition, per Table 2.
        if qualifier.is_none() {
            if let Some(def) = ctx.aliases.get(&column) {
                self.record(Feature::NamedExprReference);
                return Ok(def.clone());
            }
        }
        self.err(format!(
            "column {}{column} not found",
            qualifier.map(|q| format!("{q}.")).unwrap_or_default()
        ))
    }

    fn bind_literal(&mut self, lit: &past::Literal) -> Result<ScalarExpr> {
        Ok(match lit {
            past::Literal::Number(n) => {
                if n.contains('e') || n.contains('E') {
                    let v: f64 = n
                        .parse()
                        .map_err(|_| HyperQError::Bind(format!("bad numeric literal {n}")))?;
                    ScalarExpr::Literal(Datum::Double(v), SqlType::Double)
                } else if n.contains('.') {
                    let d = Decimal::parse(n).map_err(|e| HyperQError::Bind(e.0))?;
                    let scale = d.scale;
                    ScalarExpr::Literal(
                        Datum::Dec(d),
                        SqlType::Decimal { precision: 38, scale },
                    )
                } else {
                    match n.parse::<i64>() {
                        Ok(v) => ScalarExpr::Literal(Datum::Int(v), SqlType::Integer),
                        Err(_) => {
                            let d = Decimal::parse(n).map_err(|e| HyperQError::Bind(e.0))?;
                            ScalarExpr::Literal(
                                Datum::Dec(d),
                                SqlType::Decimal { precision: 38, scale: 0 },
                            )
                        }
                    }
                }
            }
            past::Literal::String(s) => {
                ScalarExpr::Literal(Datum::str(s), SqlType::Varchar(None))
            }
            past::Literal::Date(s) => {
                let d = parse_date(s).map_err(|e| HyperQError::Bind(e.0))?;
                ScalarExpr::Literal(Datum::Date(d), SqlType::Date)
            }
            past::Literal::Timestamp(s) => {
                let t = parse_timestamp(s).map_err(|e| HyperQError::Bind(e.0))?;
                ScalarExpr::Literal(Datum::Timestamp(t), SqlType::Timestamp)
            }
            past::Literal::Interval { value, unit } => {
                let v: i32 = value
                    .trim()
                    .parse()
                    .map_err(|_| HyperQError::Bind(format!("bad interval literal {value}")))?;
                let iv = match unit {
                    past::IntervalUnit::Year => Interval::months(v * 12),
                    past::IntervalUnit::Month => Interval::months(v),
                    past::IntervalUnit::Day => Interval::days(v),
                };
                ScalarExpr::Literal(Datum::Interval(iv), SqlType::Interval)
            }
            past::Literal::Boolean(b) => {
                ScalarExpr::Literal(Datum::Bool(*b), SqlType::Boolean)
            }
            past::Literal::Null => ScalarExpr::Literal(Datum::Null, SqlType::Unknown),
        })
    }

    fn bind_parameter(&mut self, name: Option<&str>) -> Result<ScalarExpr> {
        let value = match name {
            Some(key) => self
                .params
                .get(&key.to_ascii_uppercase())
                .cloned()
                .ok_or_else(|| HyperQError::Bind(format!("parameter :{key} is not bound")))?,
            None => {
                let v = self.positional.get(self.positional_cursor).cloned().ok_or_else(|| {
                    HyperQError::Bind(format!(
                        "statement uses more `?` markers than the {} value(s) supplied",
                        self.positional.len()
                    ))
                })?;
                self.positional_cursor += 1;
                v
            }
        };
        let ty = value.sql_type();
        Ok(ScalarExpr::Literal(value, ty))
    }

    fn bind_binary(
        &mut self,
        op: past::BinOp,
        left: &past::Expr,
        right: &past::Expr,
        ctx: &BlockContext,
    ) -> Result<ScalarExpr> {
        use past::BinOp as B;
        match op {
            B::And => {
                let l = self.bind_expr(left, ctx)?;
                let r = self.bind_expr(right, ctx)?;
                Ok(ScalarExpr::and(vec![l, r]))
            }
            B::Or => {
                let l = self.bind_expr(left, ctx)?;
                let r = self.bind_expr(right, ctx)?;
                Ok(ScalarExpr::or(vec![l, r]))
            }
            B::Cmp(cmp) => {
                let mut l = self.bind_expr(left, ctx)?;
                let mut r = self.bind_expr(right, ctx)?;
                let (lt, rt) = (l.ty(), r.ty());
                if matches!(
                    (&lt, &rt),
                    (SqlType::Date, SqlType::Integer) | (SqlType::Integer, SqlType::Date)
                ) {
                    // Teradata DATE-INTEGER comparison (X5); the transformer
                    // expands the date side (paper §5.2).
                    self.record(Feature::DateIntComparison);
                }
                // NOT CASESPECIFIC columns compare case-insensitively (E9):
                // wrap both sides in UPPER.
                if self.is_ci_column(&l) || self.is_ci_column(&r) {
                    self.record(Feature::ColumnProperties);
                    l = ScalarExpr::Func { func: ScalarFunc::Upper, args: vec![l] };
                    r = ScalarExpr::Func { func: ScalarFunc::Upper, args: vec![r] };
                }
                Ok(ScalarExpr::cmp(cmp, l, r))
            }
            B::Plus | B::Minus | B::Mul | B::Div | B::Mod | B::Pow => {
                let l = self.bind_expr(left, ctx)?;
                let r = self.bind_expr(right, ctx)?;
                let aop = match op {
                    B::Plus => ArithOp::Add,
                    B::Minus => ArithOp::Sub,
                    B::Mul => ArithOp::Mul,
                    B::Div => ArithOp::Div,
                    B::Mod => ArithOp::Mod,
                    B::Pow => ArithOp::Pow,
                    _ => unreachable!("arith ops matched above"),
                };
                if matches!(aop, ArithOp::Add | ArithOp::Sub) {
                    let (lt, rt) = (l.ty(), r.ty());
                    if matches!(
                        (&lt, &rt),
                        (SqlType::Date, SqlType::Integer) | (SqlType::Integer, SqlType::Date)
                    ) {
                        // Teradata date arithmetic (X6); serializer rewrites
                        // per target capability.
                        self.record(Feature::DateArithmetic);
                    }
                }
                Ok(ScalarExpr::arith(aop, l, r))
            }
            B::Concat => {
                let l = self.bind_expr(left, ctx)?;
                let r = self.bind_expr(right, ctx)?;
                Ok(ScalarExpr::Func { func: ScalarFunc::Concat, args: vec![l, r] })
            }
        }
    }

    fn is_ci_column(&self, e: &ScalarExpr) -> bool {
        match e {
            ScalarExpr::Column { qualifier, name, .. } => self.ci_columns.iter().any(|(q, c)| {
                c == name
                    && qualifier
                        .as_deref()
                        .is_none_or(|qq| qq.eq_ignore_ascii_case(q))
            }),
            _ => false,
        }
    }

    fn bind_function(
        &mut self,
        name: &past::ObjectName,
        args: &[past::Expr],
        distinct: bool,
        over: Option<&past::WindowSpec>,
        td_sort_arg: Option<&(Box<past::Expr>, bool)>,
        ctx: &BlockContext,
    ) -> Result<ScalarExpr> {
        let upper = name.base();

        // Teradata RANK(expr DESC) shorthand → ANSI window (X9 rewrite).
        if let Some((expr, desc)) = td_sort_arg {
            let kind = match upper.as_str() {
                "RANK" => WindowFuncKind::Rank,
                "DENSE_RANK" => WindowFuncKind::DenseRank,
                other => return self.err(format!("{other} does not take an ordering argument")),
            };
            let bound = self.bind_expr(expr, ctx)?;
            let spec = WindowExpr {
                func: kind,
                arg: None,
                partition_by: Vec::new(),
                order_by: vec![SortExpr { expr: bound, desc: *desc, nulls_first: None }],
                output: self.fresh("W"),
            };
            return self.push_window(spec, ctx);
        }

        // Window function (ANSI OVER syntax).
        if let Some(spec) = over {
            let kind = match upper.as_str() {
                "RANK" => WindowFuncKind::Rank,
                "DENSE_RANK" => WindowFuncKind::DenseRank,
                "ROW_NUMBER" => WindowFuncKind::RowNumber,
                "SUM" => WindowFuncKind::Agg(AggFunc::Sum),
                "MIN" => WindowFuncKind::Agg(AggFunc::Min),
                "MAX" => WindowFuncKind::Agg(AggFunc::Max),
                "AVG" => WindowFuncKind::Agg(AggFunc::Avg),
                "COUNT" => WindowFuncKind::Agg(AggFunc::Count),
                other => return self.err(format!("unsupported window function {other}")),
            };
            let arg = match (args.len(), &kind) {
                (0, _) => None,
                (1, WindowFuncKind::Agg(_)) => Some(self.bind_expr(&args[0], ctx)?),
                (1, _) => {
                    return self.err(format!("{upper} window function takes no arguments"))
                }
                _ => return self.err(format!("too many arguments to window function {upper}")),
            };
            return self.bind_window_spec(kind, arg, spec, ctx);
        }

        // Plain aggregate.
        if let Some(agg) = match upper.as_str() {
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            "COUNT" => Some(AggFunc::Count),
            _ => None,
        } {
            if !ctx.allow_aggregates {
                return self.err(format!("aggregate {upper} not allowed in this clause"));
            }
            if args.len() != 1 {
                return self.err(format!("{upper} takes exactly one argument"));
            }
            let arg = self.bind_expr(&args[0], ctx)?;
            return Ok(ScalarExpr::Agg { func: agg, distinct, arg: Some(Box::new(arg)) });
        }
        if distinct {
            return self.err(format!("DISTINCT is not valid in a call to {upper}"));
        }

        // Scalar functions.
        let func = match upper.as_str() {
            "UPPER" => ScalarFunc::Upper,
            "LOWER" => ScalarFunc::Lower,
            "TRIM" => ScalarFunc::Trim,
            "LTRIM" => ScalarFunc::Ltrim,
            "RTRIM" => ScalarFunc::Rtrim,
            "SUBSTRING" => ScalarFunc::Substring,
            "CHAR_LENGTH" => ScalarFunc::CharLength,
            "POSITION" => ScalarFunc::Position,
            "COALESCE" => ScalarFunc::Coalesce,
            "NULLIF" => ScalarFunc::NullIf,
            "ABS" => ScalarFunc::Abs,
            "ROUND" => ScalarFunc::Round,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            "SQRT" => ScalarFunc::Sqrt,
            "EXP" => ScalarFunc::Exp,
            "LN" => ScalarFunc::Ln,
            "POWER" => ScalarFunc::Power,
            "MOD" => ScalarFunc::Mod,
            "CONCAT" => ScalarFunc::Concat,
            "ADD_MONTHS" => {
                self.record(Feature::AddMonths);
                ScalarFunc::AddMonths
            }
            "DATE_ADD_DAYS" => ScalarFunc::DateAddDays,
            "CURRENT_DATE" => ScalarFunc::CurrentDate,
            "CURRENT_TIMESTAMP" => ScalarFunc::CurrentTimestamp,
            other => return self.err(format!("unknown function {other}")),
        };
        let bound_args = args
            .iter()
            .map(|a| self.bind_expr(a, ctx))
            .collect::<Result<Vec<_>>>()?;
        let arity_ok = match func {
            ScalarFunc::Coalesce | ScalarFunc::Concat => bound_args.len() >= 2,
            ScalarFunc::Substring => (2..=3).contains(&bound_args.len()),
            ScalarFunc::Round => (1..=2).contains(&bound_args.len()),
            ScalarFunc::NullIf
            | ScalarFunc::Position
            | ScalarFunc::Power
            | ScalarFunc::Mod
            | ScalarFunc::AddMonths
            | ScalarFunc::DateAddDays => bound_args.len() == 2,
            ScalarFunc::CurrentDate | ScalarFunc::CurrentTimestamp => bound_args.is_empty(),
            _ => bound_args.len() == 1,
        };
        if !arity_ok {
            return self.err(format!(
                "wrong number of arguments ({}) to {}",
                bound_args.len(),
                func.name()
            ));
        }
        Ok(ScalarExpr::Func { func, args: bound_args })
    }

    fn bind_window(
        &mut self,
        kind: WindowFuncKind,
        arg: Option<ScalarExpr>,
        spec: &past::WindowSpec,
        ctx: &BlockContext,
    ) -> Result<ScalarExpr> {
        self.bind_window_spec(kind, arg, spec, ctx)
    }

    fn bind_window_spec(
        &mut self,
        kind: WindowFuncKind,
        arg: Option<ScalarExpr>,
        spec: &past::WindowSpec,
        ctx: &BlockContext,
    ) -> Result<ScalarExpr> {
        let partition_by = spec
            .partition_by
            .iter()
            .map(|p| self.bind_expr(p, ctx))
            .collect::<Result<Vec<_>>>()?;
        let order_by = spec
            .order_by
            .iter()
            .map(|k| {
                Ok(SortExpr {
                    expr: self.bind_expr(&k.expr, ctx)?,
                    desc: k.desc,
                    nulls_first: k.nulls_first,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let w = WindowExpr { func: kind, arg, partition_by, order_by, output: self.fresh("W") };
        self.push_window(w, ctx)
    }

    fn push_window(&mut self, w: WindowExpr, ctx: &BlockContext) -> Result<ScalarExpr> {
        if !ctx.allow_windows {
            return self.err("window function not allowed in this clause");
        }
        let ty = w.ty();
        let name = w.output.clone();
        self.pending_windows.push(w);
        Ok(ScalarExpr::Column { qualifier: None, name, ty })
    }
}

/// Alias to keep signatures readable.
type RelSubquery = hyperq_xtra::rel::RelExpr;
