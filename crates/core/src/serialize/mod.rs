//! The Serializer (§4.4): XTRA → target-dialect SQL text.
//!
//! "Each target database has its own Serializer implementation. These
//! different serializers share a common interface: the input is an XTRA
//! expression, and the output is the serialized SQL statement of that
//! XTRA." We realize the family of serializers as one engine parameterized
//! by a target profile: [`TargetCapabilities`] decides *what* must be
//! rewritten away before serialization, and the profile's [`Flavor`]
//! decides every dialect spelling (`LIMIT` vs `TOP` vs neither, `%` vs
//! `MOD()`, the date-add family, identifier quoting, type names) exactly
//! where real targets differ.
//!
//! Serialization "takes place by walking through the XTRA expression,
//! generating a SQL block for each operator": the walker assembles
//! `SELECT` blocks greedily and wraps the accumulated block into a derived
//! table whenever the next operator cannot be merged (which is how the
//! paper's Example 3 acquires its nested `(...) AS T` structure).

use std::fmt::Write as _;

use hyperq_xtra::catalog::{TableDef, TableKind};
use hyperq_xtra::datum::Datum;
use hyperq_xtra::expr::{
    AggFunc, ArithOp, BoolOp, ScalarExpr, ScalarFunc, SortExpr, WindowExpr, WindowFuncKind,
};
use hyperq_xtra::rel::{Grouping, JoinKind, Plan, RelExpr};

use crate::capability::{AddMonthsStyle, DateAddStyle, ModStyle, TargetCapabilities};
use crate::error::{HyperQError, Result};
use crate::targets::TargetProfile;

pub mod flavor;
pub use flavor::{Flavor, IdentQuoting, LimitSpelling, ParamStyle};

/// Serializes plans for one target.
pub struct Serializer<'a> {
    caps: &'a TargetCapabilities,
    flavor: Flavor,
    counter: std::cell::Cell<usize>,
    /// Qualifier-rename frames. Wrapping a block into a derived table
    /// `_Tn` makes the original range variables invisible to the enclosing
    /// scope; every reference to them must be re-qualified with the derived
    /// alias. Subqueries push a shadow frame for their own local range
    /// variables so correlated references still rename while local ones do
    /// not.
    frames: std::cell::RefCell<Vec<Frame>>,
}

enum Frame {
    /// Original qualifier → derived-table alias.
    Rename(std::collections::HashMap<String, String>),
    /// Qualifiers defined locally by the current (sub)query scope.
    Shadow(std::collections::HashSet<String>),
}

/// An accumulating SELECT block.
#[derive(Default)]
struct Block {
    distinct: bool,
    /// Rendered select-list items; `None` means `*` so far.
    select: Option<Vec<String>>,
    /// Rendered FROM text; `None` = no FROM clause (constant SELECT).
    from: Option<String>,
    where_: Option<String>,
    group_by: Option<String>,
    having: Option<String>,
    order_by: Option<String>,
    limit: Option<u64>,
}

impl Block {
    fn has_projection(&self) -> bool {
        self.select.is_some() || self.distinct
    }
}

impl<'a> Serializer<'a> {
    /// Serialize for a bare capability signature, with the flavor the
    /// signature has always implied ([`Flavor::from_caps`]).
    pub fn new(caps: &'a TargetCapabilities) -> Self {
        Serializer {
            caps,
            flavor: Flavor::from_caps(caps),
            counter: std::cell::Cell::new(0),
            frames: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Serialize for a registered [`TargetProfile`], taking both the
    /// capability signature and the dialect flavor from the profile.
    pub fn for_profile(profile: &'a TargetProfile) -> Self {
        Serializer {
            caps: &profile.caps,
            flavor: profile.flavor.clone(),
            counter: std::cell::Cell::new(0),
            frames: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Resolve a column qualifier through the rename frames: `Some(alias)`
    /// when a wrap renamed it, `None` to keep it as written.
    fn resolve_qualifier(&self, q: &str) -> Option<String> {
        for frame in self.frames.borrow().iter().rev() {
            match frame {
                Frame::Shadow(locals) if locals.contains(q) => return None,
                Frame::Rename(map) => {
                    if let Some(alias) = map.get(q) {
                        return Some(alias.clone());
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Range variables defined directly by this query scope (not inside
    /// expression subqueries): `Get` aliases and derived-table aliases.
    fn local_qualifiers(rel: &RelExpr, out: &mut std::collections::HashSet<String>) {
        match rel {
            RelExpr::Get { table, alias, .. } => {
                out.insert(
                    alias
                        .clone()
                        .unwrap_or_else(|| {
                            table.rsplit('.').next().unwrap_or(table).to_string()
                        }),
                );
            }
            RelExpr::Alias { alias, .. } => {
                out.insert(alias.clone());
            }
            RelExpr::Select { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::Window { input, .. }
            | RelExpr::Aggregate { input, .. }
            | RelExpr::Distinct { input }
            | RelExpr::Sort { input, .. }
            | RelExpr::Limit { input, .. } => Self::local_qualifiers(input, out),
            RelExpr::Join { left, right, .. } | RelExpr::SetOp { left, right, .. } => {
                Self::local_qualifiers(left, out);
                Self::local_qualifiers(right, out);
            }
            RelExpr::Values { .. } => {}
        }
    }

    fn fresh(&self, prefix: &str) -> String {
        let n = self.counter.get() + 1;
        self.counter.set(n);
        format!("_{prefix}{n}")
    }

    /// Serialize a full statement.
    pub fn serialize_plan(&self, plan: &Plan) -> Result<String> {
        match plan {
            Plan::Query(rel) => self.query(rel),
            Plan::Insert { table, columns, source } => {
                let mut sql = format!("INSERT INTO {table}");
                if !columns.is_empty() {
                    let _ = write!(sql, " ({})", columns.join(", "));
                }
                match source {
                    RelExpr::Values { rows, .. } if !rows.is_empty() => {
                        sql.push_str(" VALUES ");
                        let rendered: Result<Vec<String>> = rows
                            .iter()
                            .map(|row| {
                                let vals: Result<Vec<String>> =
                                    row.iter().map(|e| self.expr(e)).collect();
                                Ok(format!("({})", vals?.join(", ")))
                            })
                            .collect();
                        sql.push_str(&rendered?.join(", "));
                    }
                    other => {
                        sql.push(' ');
                        sql.push_str(&self.query(other)?);
                    }
                }
                Ok(sql)
            }
            Plan::Update { table, alias, assignments, predicate } => {
                let mut sql = format!("UPDATE {table}");
                if let Some(a) = alias {
                    let _ = write!(sql, " AS {a}");
                }
                sql.push_str(" SET ");
                let sets: Result<Vec<String>> = assignments
                    .iter()
                    .map(|a| Ok(format!("{} = {}", a.column, self.expr(&a.value)?)))
                    .collect();
                sql.push_str(&sets?.join(", "));
                if let Some(p) = predicate {
                    let _ = write!(sql, " WHERE {}", self.expr(p)?);
                }
                Ok(sql)
            }
            Plan::Delete { table, alias, predicate } => {
                let mut sql = format!("DELETE FROM {table}");
                if let Some(a) = alias {
                    let _ = write!(sql, " AS {a}");
                }
                if let Some(p) = predicate {
                    let _ = write!(sql, " WHERE {}", self.expr(p)?);
                }
                Ok(sql)
            }
            Plan::CreateTable { def, source } => self.create_table(def, source.as_ref()),
            Plan::DropTable { name, if_exists } => Ok(format!(
                "DROP TABLE {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            )),
            Plan::CreateView { def } => Ok(format!(
                "CREATE VIEW {}{} AS {}",
                def.name,
                if def.columns.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", def.columns.join(", "))
                },
                def.body_sql
            )),
            Plan::DropView { name, if_exists } => Ok(format!(
                "DROP VIEW {}{name}",
                if *if_exists { "IF EXISTS " } else { "" }
            )),
        }
    }

    fn create_table(&self, def: &TableDef, source: Option<&RelExpr>) -> Result<String> {
        let temp = match def.kind {
            TableKind::Permanent => "",
            // Global temporary definitions never reach the serializer (they
            // live in the DTM catalog); per-session instances and volatile
            // tables serialize as plain TEMPORARY.
            TableKind::Temporary | TableKind::GlobalTemporary => "TEMPORARY ",
        };
        if let Some(src) = source {
            return Ok(format!(
                "CREATE {temp}TABLE {} AS {}",
                def.name,
                self.query(src)?
            ));
        }
        let cols: Result<Vec<String>> = def
            .columns
            .iter()
            .map(|c| {
                let mut s = format!(
                    "{} {}",
                    self.flavor.ident(&c.name),
                    self.flavor.type_name(&c.ty.to_string())
                );
                if !c.nullable {
                    s.push_str(" NOT NULL");
                }
                if let Some(d) = &c.default {
                    // Only constant defaults are forwarded; non-constant
                    // defaults are injected by the mid tier (E9).
                    if matches!(d, ScalarExpr::Literal(..)) {
                        let _ = write!(s, " DEFAULT {}", self.expr(d)?);
                    }
                }
                Ok(s)
            })
            .collect();
        Ok(format!("CREATE {temp}TABLE {} ({})", def.name, cols?.join(", ")))
    }

    /// Serialize a relational tree as a complete query (new name scope).
    pub fn query(&self, rel: &RelExpr) -> Result<String> {
        let mark = self.frames.borrow().len();
        let mut locals = std::collections::HashSet::new();
        Self::local_qualifiers(rel, &mut locals);
        self.frames.borrow_mut().push(Frame::Shadow(locals));
        let result = self.query_inner(rel);
        self.frames.borrow_mut().truncate(mark);
        result
    }

    fn query_inner(&self, rel: &RelExpr) -> Result<String> {
        // Set operations (possibly under a final Sort/Limit) render as
        // top-level UNION/INTERSECT/EXCEPT chains.
        match rel {
            RelExpr::SetOp { .. } => return self.setop_chain(rel, None, None),
            RelExpr::Sort { input, keys } => {
                if matches!(**input, RelExpr::SetOp { .. }) {
                    return self.setop_chain(input, Some(keys), None);
                }
            }
            RelExpr::Limit { input, limit, with_ties: false, .. } => {
                if let RelExpr::Sort { input: inner, keys } = &**input {
                    if matches!(**inner, RelExpr::SetOp { .. }) {
                        return self.setop_chain(inner, Some(keys), *limit);
                    }
                }
                if matches!(**input, RelExpr::SetOp { .. }) {
                    return self.setop_chain(input, None, *limit);
                }
            }
            _ => {}
        }
        let block = self.build(rel)?;
        Ok(self.render(block))
    }

    fn setop_chain(
        &self,
        rel: &RelExpr,
        order: Option<&[SortExpr]>,
        limit: Option<u64>,
    ) -> Result<String> {
        let mut sql = self.setop_operand(rel)?;
        if let Some(keys) = order {
            let _ = write!(sql, " ORDER BY {}", self.order_list(keys)?);
        }
        if let Some(n) = limit {
            sql.push_str(&self.limit_suffix(n));
        }
        Ok(sql)
    }

    fn setop_operand(&self, rel: &RelExpr) -> Result<String> {
        match rel {
            RelExpr::SetOp { kind, all, left, right } => Ok(format!(
                "{} {}{} {}",
                self.setop_operand(left)?,
                kind.name(),
                if *all { " ALL" } else { "" },
                self.setop_operand(right)?
            )),
            other => self.query(other),
        }
    }

    fn limit_suffix(&self, n: u64) -> String {
        match self.flavor.limit {
            LimitSpelling::Limit => format!(" LIMIT {n}"),
            // TOP targets get the limit injected after SELECT in render();
            // reaching here means a set-operation limit, which needs a wrap.
            // LimitSpelling::None never reaches this point: `build()`
            // rejects any Limit operator for such targets.
            LimitSpelling::Top | LimitSpelling::None => format!(" LIMIT {n}"),
        }
    }

    /// Wrap an accumulated block into a derived-table FROM item. Every
    /// range variable the wrapped subtree exposed is renamed to the derived
    /// alias for the remainder of this scope.
    fn wrap(&self, block: Block, wrapped: &RelExpr) -> Block {
        let alias = self.fresh("T");
        let mut map = std::collections::HashMap::new();
        for f in wrapped.schema().fields {
            if let Some(q) = f.qualifier {
                map.insert(q, alias.clone());
            }
        }
        let out = Block {
            from: Some(format!("({}) AS {alias}", self.render(block))),
            ..Block::default()
        };
        self.frames.borrow_mut().push(Frame::Rename(map));
        out
    }

    fn render(&self, b: Block) -> String {
        let mut sql = String::from("SELECT ");
        if b.distinct {
            sql.push_str("DISTINCT ");
        }
        if self.flavor.limit == LimitSpelling::Top {
            if let Some(n) = b.limit {
                let _ = write!(sql, "TOP {n} ");
            }
        }
        match &b.select {
            Some(items) => sql.push_str(&items.join(", ")),
            None => sql.push('*'),
        }
        if let Some(f) = &b.from {
            let _ = write!(sql, " FROM {f}");
        }
        if let Some(w) = &b.where_ {
            let _ = write!(sql, " WHERE {w}");
        }
        if let Some(g) = &b.group_by {
            let _ = write!(sql, " GROUP BY {g}");
        }
        if let Some(h) = &b.having {
            let _ = write!(sql, " HAVING {h}");
        }
        if let Some(o) = &b.order_by {
            let _ = write!(sql, " ORDER BY {o}");
        }
        if self.flavor.limit == LimitSpelling::Limit {
            if let Some(n) = b.limit {
                let _ = write!(sql, " LIMIT {n}");
            }
        }
        sql
    }

    /// Descend the operator tree, merging into one block where the dialect
    /// allows and wrapping into derived tables where it does not.
    fn build(&self, rel: &RelExpr) -> Result<Block> {
        Ok(match rel {
            RelExpr::Get { .. } | RelExpr::Alias { .. } | RelExpr::Join { .. } => {
                Block { from: Some(self.render_from_item(rel)?), ..Block::default() }
            }
            RelExpr::Values { rows, schema } => {
                // Render VALUES as a UNION ALL of constant selects, the most
                // portable spelling.
                if rows.is_empty() {
                    // Empty relation: SELECT ... WHERE FALSE.
                    let items: Result<Vec<String>> = schema
                        .fields
                        .iter()
                        .map(|f| Ok(format!("NULL AS {}", f.name)))
                        .collect();
                    Block {
                        select: Some(items?),
                        where_: Some("1 = 0".to_string()),
                        ..Block::default()
                    }
                } else if rows.len() == 1 {
                    let items: Result<Vec<String>> = rows[0]
                        .iter()
                        .enumerate()
                        .map(|(i, e)| {
                            let name = schema
                                .fields
                                .get(i).map_or_else(|| format!("COL{}", i + 1), |f| f.name.clone());
                            Ok(format!("{} AS {name}", self.expr(e)?))
                        })
                        .collect();
                    let items = items?;
                    if items.is_empty() {
                        Block { select: Some(vec!["1 AS ONE".to_string()]), ..Block::default() }
                    } else {
                        Block { select: Some(items), ..Block::default() }
                    }
                } else {
                    let selects: Result<Vec<String>> = rows
                        .iter()
                        .map(|row| {
                            let items: Result<Vec<String>> = row
                                .iter()
                                .enumerate()
                                .map(|(i, e)| {
                                    let name = schema
                                        .fields
                                        .get(i).map_or_else(|| format!("COL{}", i + 1), |f| f.name.clone());
                                    Ok(format!("{} AS {name}", self.expr(e)?))
                                })
                                .collect();
                            Ok(format!("SELECT {}", items?.join(", ")))
                        })
                        .collect();
                    let alias = self.fresh("V");
                    Block {
                        from: Some(format!("({}) AS {alias}", selects?.join(" UNION ALL "))),
                        ..Block::default()
                    }
                }
            }
            RelExpr::Select { input, predicate } => {
                let mut b = self.build(input)?;
                if b.has_projection() || b.order_by.is_some() || b.limit.is_some() {
                    b = self.wrap(b, input);
                }
                let rendered = self.expr(predicate)?;
                if b.group_by.is_some() {
                    // Filter above an aggregate in the same block = HAVING.
                    b.having = Some(match b.having.take() {
                        Some(prev) => format!("({prev}) AND ({rendered})"),
                        None => rendered,
                    });
                } else {
                    b.where_ = Some(match b.where_.take() {
                        Some(prev) => format!("({prev}) AND ({rendered})"),
                        None => rendered,
                    });
                }
                b
            }
            RelExpr::Project { input, exprs } => {
                let mut b = self.build(input)?;
                if b.has_projection() || b.order_by.is_some() || b.limit.is_some() {
                    b = self.wrap(b, input);
                }
                let items: Result<Vec<String>> = exprs
                    .iter()
                    .map(|(e, name)| {
                        let rendered = self.expr(e)?;
                        Ok(match e {
                            ScalarExpr::Column { name: cn, .. } if cn == name => rendered,
                            _ => format!("{rendered} AS {name}"),
                        })
                    })
                    .collect();
                b.select = Some(items?);
                b
            }
            RelExpr::Window { input, exprs } => {
                let mut b = self.build(input)?;
                if b.has_projection()
                    || b.order_by.is_some()
                    || b.limit.is_some()
                    || b.group_by.is_some()
                {
                    b = self.wrap(b, input);
                }
                let mut items = vec!["*".to_string()];
                for w in exprs {
                    items.push(format!("{} AS {}", self.window_expr(w)?, w.output));
                }
                b.select = Some(items);
                b
            }
            RelExpr::Aggregate { input, group_by, grouping, aggs } => {
                let mut b = self.build(input)?;
                if b.has_projection()
                    || b.group_by.is_some()
                    || b.order_by.is_some()
                    || b.limit.is_some()
                {
                    b = self.wrap(b, input);
                }
                let mut items = Vec::with_capacity(group_by.len() + aggs.len());
                for (g, name) in group_by {
                    let rendered = self.expr(g)?;
                    items.push(match g {
                        ScalarExpr::Column { name: cn, .. } if cn == name => rendered,
                        _ => format!("{rendered} AS {name}"),
                    });
                }
                for (a, name) in aggs {
                    items.push(format!("{} AS {name}", self.expr(a)?));
                }
                b.select = Some(items);
                if !group_by.is_empty() {
                    let keys: Result<Vec<String>> =
                        group_by.iter().map(|(g, _)| self.expr(g)).collect();
                    let keys = keys?;
                    b.group_by = Some(match grouping {
                        Grouping::Simple => keys.join(", "),
                        Grouping::Sets(sets) => {
                            if !self.caps.grouping_sets {
                                return Err(HyperQError::Transform(
                                    "grouping sets reached a serializer for a target without \
                                     native support; the expansion rule should have fired"
                                        .into(),
                                ));
                            }
                            let rendered: Vec<String> = sets
                                .iter()
                                .map(|s| {
                                    let cols: Vec<String> =
                                        s.iter().map(|&i| keys[i].clone()).collect();
                                    format!("({})", cols.join(", "))
                                })
                                .collect();
                            format!("GROUPING SETS ({})", rendered.join(", "))
                        }
                    });
                } else if matches!(grouping, Grouping::Sets(_)) {
                    return Err(HyperQError::Transform(
                        "empty grouping sets cannot be serialized".into(),
                    ));
                }
                b
            }
            RelExpr::Distinct { input } => {
                let mut b = self.build(input)?;
                if b.distinct || b.order_by.is_some() || b.limit.is_some() {
                    b = self.wrap(b, input);
                }
                b.distinct = true;
                b
            }
            RelExpr::Sort { input, keys } => {
                let mut b = self.build(input)?;
                if b.order_by.is_some() || b.limit.is_some() {
                    b = self.wrap(b, input);
                }
                b.order_by = Some(self.order_list(keys)?);
                b
            }
            RelExpr::Limit { input, limit, with_ties, offset } => {
                if *with_ties && !self.caps.with_ties {
                    return Err(HyperQError::Transform(
                        "WITH TIES reached a serializer for a target without support; \
                         the lowering rule should have fired"
                            .into(),
                    ));
                }
                if *offset > 0 {
                    return Err(HyperQError::Transform(
                        "OFFSET serialization is not supported".into(),
                    ));
                }
                if self.flavor.limit == LimitSpelling::None {
                    return Err(HyperQError::Transform(format!(
                        "{} spells neither LIMIT nor TOP; the LimitFetch \
                         emulation should have peeled this bound",
                        self.caps.name
                    )));
                }
                let mut b = self.build(input)?;
                if b.limit.is_some() {
                    b = self.wrap(b, input);
                }
                b.limit = *limit;
                b
            }
            RelExpr::SetOp { .. } => {
                let alias = self.fresh("S");
                Block {
                    from: Some(format!("({}) AS {alias}", self.setop_operand(rel)?)),
                    ..Block::default()
                }
            }
        })
    }

    /// Render a FROM item (table, alias, join tree, or derived table).
    fn render_from_item(&self, rel: &RelExpr) -> Result<String> {
        Ok(match rel {
            RelExpr::Get { table, alias, .. } => match alias {
                Some(a) if !a.eq_ignore_ascii_case(
                    table.rsplit('.').next().unwrap_or(table),
                ) =>
                {
                    format!("{table} AS {a}")
                }
                _ => table.clone(),
            },
            RelExpr::Alias { input, alias, schema } => {
                // Emit explicit column aliases when the alias renames
                // columns; plain `(query) AS a` otherwise.
                let inner = self.query(input)?;
                let inner_names: Vec<String> =
                    input.schema().fields.iter().map(|f| f.name.clone()).collect();
                let outer_names: Vec<String> =
                    schema.fields.iter().map(|f| f.name.clone()).collect();
                if inner_names == outer_names || !self.caps.derived_table_column_aliases {
                    if inner_names != outer_names {
                        // Normalize the renaming into the subquery's own
                        // projection for targets without derived-table
                        // column aliases.
                        let items: Vec<String> = inner_names
                            .iter()
                            .zip(outer_names.iter())
                            .map(|(i, o)| {
                                if i == o {
                                    i.clone()
                                } else {
                                    format!("{i} AS {o}")
                                }
                            })
                            .collect();
                        format!(
                            "(SELECT {} FROM ({inner}) AS {}) AS {alias}",
                            items.join(", "),
                            self.fresh("R")
                        )
                    } else {
                        format!("({inner}) AS {alias}")
                    }
                } else {
                    format!("({inner}) AS {alias} ({})", outer_names.join(", "))
                }
            }
            RelExpr::Join { kind, left, right, condition } => {
                let l = self.render_from_item_nested(left)?;
                let r = self.render_from_item_nested(right)?;
                match (kind, condition) {
                    (JoinKind::Cross, None) => format!("{l} CROSS JOIN {r}"),
                    (JoinKind::Cross | JoinKind::Inner, Some(c)) => {
                        format!("{l} INNER JOIN {r} ON {}", self.expr(c)?)
                    }
                    (JoinKind::Inner, None) => format!("{l} CROSS JOIN {r}"),
                    (JoinKind::Semi | JoinKind::Anti, _) => {
                        return Err(HyperQError::Transform(
                            "semi/anti joins are engine-internal and cannot be serialized"
                                .into(),
                        ))
                    }
                    (k, Some(c)) => {
                        format!("{l} {} JOIN {r} ON {}", k.name(), self.expr(c)?)
                    }
                    (k, None) => {
                        return Err(HyperQError::Transform(format!(
                            "{} JOIN requires a condition",
                            k.name()
                        )))
                    }
                }
            }
            other => {
                let alias = self.fresh("D");
                format!("({}) AS {alias}", self.query(other)?)
            }
        })
    }

    fn render_from_item_nested(&self, rel: &RelExpr) -> Result<String> {
        match rel {
            RelExpr::Join { .. } => Ok(format!("({})", self.render_from_item(rel)?)),
            _ => self.render_from_item(rel),
        }
    }

    fn order_list(&self, keys: &[SortExpr]) -> Result<String> {
        let parts: Result<Vec<String>> = keys
            .iter()
            .map(|k| {
                let mut s = self.expr(&k.expr)?;
                if k.desc {
                    s.push_str(" DESC");
                }
                match k.nulls_first {
                    Some(true) => s.push_str(" NULLS FIRST"),
                    Some(false) => s.push_str(" NULLS LAST"),
                    None => {}
                }
                Ok(s)
            })
            .collect();
        Ok(parts?.join(", "))
    }

    fn window_expr(&self, w: &WindowExpr) -> Result<String> {
        let func = match (&w.func, &w.arg) {
            (WindowFuncKind::Agg(AggFunc::CountStar), _) => "COUNT(*)".to_string(),
            (WindowFuncKind::Agg(a), Some(arg)) => {
                format!("{}({})", a.name(), self.expr(arg)?)
            }
            (WindowFuncKind::Agg(a), None) => format!("{}(*)", a.name()),
            (kind, _) => format!("{}()", kind.name()),
        };
        let mut over = String::new();
        if !w.partition_by.is_empty() {
            let parts: Result<Vec<String>> =
                w.partition_by.iter().map(|p| self.expr(p)).collect();
            let _ = write!(over, "PARTITION BY {}", parts?.join(", "));
        }
        if !w.order_by.is_empty() {
            if !over.is_empty() {
                over.push(' ');
            }
            let _ = write!(over, "ORDER BY {}", self.order_list(&w.order_by)?);
        }
        Ok(format!("{func} OVER ({over})"))
    }

    // --- expressions --------------------------------------------------------

    pub fn expr(&self, e: &ScalarExpr) -> Result<String> {
        Ok(match e {
            ScalarExpr::Column { qualifier, name, .. } => match qualifier {
                Some(q) => match self.resolve_qualifier(q) {
                    Some(alias) => format!("{alias}.{name}"),
                    None => format!("{q}.{name}"),
                },
                None => name.clone(),
            },
            ScalarExpr::Literal(d, _) => self.literal(d),
            ScalarExpr::Arith { op, left, right } => match op {
                ArithOp::Mod => match self.flavor.mod_style {
                    ModStyle::Percent => {
                        format!("({} % {})", self.expr(left)?, self.expr(right)?)
                    }
                    ModStyle::Function => {
                        format!("MOD({}, {})", self.expr(left)?, self.expr(right)?)
                    }
                },
                ArithOp::Pow => {
                    format!("POWER({}, {})", self.expr(left)?, self.expr(right)?)
                }
                op => format!(
                    "({} {} {})",
                    self.expr(left)?,
                    op.symbol(),
                    self.expr(right)?
                ),
            },
            ScalarExpr::Neg(inner) => format!("(- {})", self.expr(inner)?),
            ScalarExpr::Cmp { op, left, right } => format!(
                "({} {} {})",
                self.expr(left)?,
                op.symbol(),
                self.expr(right)?
            ),
            ScalarExpr::BoolExpr { op, args } => {
                let sep = match op {
                    BoolOp::And => " AND ",
                    BoolOp::Or => " OR ",
                };
                let parts: Result<Vec<String>> = args.iter().map(|a| self.expr(a)).collect();
                format!("({})", parts?.join(sep))
            }
            ScalarExpr::Not(inner) => format!("(NOT {})", self.expr(inner)?),
            ScalarExpr::IsNull { expr, negated } => format!(
                "({} IS {}NULL)",
                self.expr(expr)?,
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::Like { expr, pattern, negated } => format!(
                "({} {}LIKE {})",
                self.expr(expr)?,
                if *negated { "NOT " } else { "" },
                self.expr(pattern)?
            ),
            ScalarExpr::InList { expr, list, negated } => {
                let parts: Result<Vec<String>> = list.iter().map(|x| self.expr(x)).collect();
                format!(
                    "({} {}IN ({}))",
                    self.expr(expr)?,
                    if *negated { "NOT " } else { "" },
                    parts?.join(", ")
                )
            }
            ScalarExpr::Between { expr, low, high, negated } => format!(
                "({} {}BETWEEN {} AND {})",
                self.expr(expr)?,
                if *negated { "NOT " } else { "" },
                self.expr(low)?,
                self.expr(high)?
            ),
            ScalarExpr::Case { operand, branches, else_expr } => {
                let mut s = String::from("CASE");
                if let Some(o) = operand {
                    let _ = write!(s, " {}", self.expr(o)?);
                }
                for (c, r) in branches {
                    let _ = write!(s, " WHEN {} THEN {}", self.expr(c)?, self.expr(r)?);
                }
                if let Some(x) = else_expr {
                    let _ = write!(s, " ELSE {}", self.expr(x)?);
                }
                s.push_str(" END");
                s
            }
            ScalarExpr::Cast { expr, ty } => {
                format!("CAST({} AS {ty})", self.expr(expr)?)
            }
            ScalarExpr::Extract { field, expr } => {
                format!("EXTRACT({} FROM {})", field.name(), self.expr(expr)?)
            }
            ScalarExpr::Func { func, args } => self.func(func, args)?,
            ScalarExpr::Agg { func, distinct, arg } => match (func, arg) {
                (AggFunc::CountStar, _) => "COUNT(*)".to_string(),
                (f, Some(a)) => format!(
                    "{}({}{})",
                    f.name(),
                    if *distinct { "DISTINCT " } else { "" },
                    self.expr(a)?
                ),
                (f, None) => format!("{}(*)", f.name()),
            },
            ScalarExpr::ScalarSubquery(rel) => format!("({})", self.query(rel)?),
            ScalarExpr::Exists { subquery, negated } => format!(
                "({}EXISTS ({}))",
                if *negated { "NOT " } else { "" },
                self.query(subquery)?
            ),
            ScalarExpr::InSubquery { exprs, subquery, negated } => {
                let left = if exprs.len() == 1 {
                    self.expr(&exprs[0])?
                } else {
                    let parts: Result<Vec<String>> =
                        exprs.iter().map(|x| self.expr(x)).collect();
                    format!("({})", parts?.join(", "))
                };
                format!(
                    "({left} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    self.query(subquery)?
                )
            }
            ScalarExpr::QuantifiedCmp { left, op, quantifier, subquery } => {
                if left.len() > 1 && !self.caps.vector_subquery {
                    return Err(HyperQError::Transform(
                        "vector subquery comparison reached a serializer for a target \
                         without support; the EXISTS rewrite should have fired"
                            .into(),
                    ));
                }
                let left_sql = if left.len() == 1 {
                    self.expr(&left[0])?
                } else {
                    let parts: Result<Vec<String>> =
                        left.iter().map(|x| self.expr(x)).collect();
                    format!("({})", parts?.join(", "))
                };
                format!(
                    "({left_sql} {} {} ({}))",
                    op.symbol(),
                    quantifier.name(),
                    self.query(subquery)?
                )
            }
        })
    }

    fn literal(&self, d: &Datum) -> String {
        match d {
            Datum::Null => "NULL".to_string(),
            Datum::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Datum::Int(v) => v.to_string(),
            Datum::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Datum::Dec(dec) => dec.to_string(),
            Datum::Date(days) => format!("DATE '{}'", hyperq_xtra::datum::format_date(*days)),
            Datum::Timestamp(t) => {
                format!("TIMESTAMP '{}'", hyperq_xtra::datum::format_timestamp(*t))
            }
            Datum::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Datum::Interval(iv) => iv.to_string(),
        }
    }

    fn func(&self, func: &ScalarFunc, args: &[ScalarExpr]) -> Result<String> {
        let rendered: Result<Vec<String>> = args.iter().map(|a| self.expr(a)).collect();
        let rendered = rendered?;
        Ok(match func {
            ScalarFunc::Concat => format!("({})", rendered.join(" || ")),
            ScalarFunc::Position => {
                format!("POSITION({} IN {})", rendered[0], rendered[1])
            }
            ScalarFunc::DateAddDays => match self.flavor.date_add_style {
                DateAddStyle::PlusInteger => format!("({} + {})", rendered[0], rendered[1]),
                DateAddStyle::DateAddFn => {
                    format!("DATEADD(DAY, {}, {})", rendered[1], rendered[0])
                }
                DateAddStyle::IntervalFn => {
                    format!("DATE_ADD({}, INTERVAL {} DAY)", rendered[0], rendered[1])
                }
                DateAddStyle::IntervalLiteral => {
                    format!("({} + INTERVAL '{}' DAY)", rendered[0], rendered[1])
                }
            },
            ScalarFunc::AddMonths => match self.flavor.add_months_style {
                AddMonthsStyle::AddMonthsFn => {
                    format!("ADD_MONTHS({}, {})", rendered[0], rendered[1])
                }
                AddMonthsStyle::DateAddFn => {
                    format!("DATEADD(MONTH, {}, {})", rendered[1], rendered[0])
                }
                AddMonthsStyle::IntervalLiteral => {
                    format!("({} + INTERVAL '{}' MONTH)", rendered[0], rendered[1])
                }
            },
            ScalarFunc::Mod => match self.flavor.mod_style {
                ModStyle::Percent => format!("({} % {})", rendered[0], rendered[1]),
                ModStyle::Function => format!("MOD({}, {})", rendered[0], rendered[1]),
            },
            ScalarFunc::CurrentDate => "CURRENT_DATE".to_string(),
            ScalarFunc::CurrentTimestamp => "CURRENT_TIMESTAMP".to_string(),
            f => format!("{}({})", f.name(), rendered.join(", ")),
        })
    }
}
