//! The dialect-spelling half of a target profile.
//!
//! [`TargetCapabilities`] answers *whether* a target supports a construct
//! (driving the transformer and the emulation layer); a [`Flavor`] answers
//! *how the target spells* what it does support: identifier quoting, the
//! parameter-marker style, type-name overrides, `LIMIT` vs `TOP`, and the
//! modulo / date-add function families. The [`Serializer`] consumes a
//! `Flavor` for every spelling decision, so "each target database has its
//! own Serializer implementation … sharing a common interface" (§4.4)
//! is realized as one walker parameterized by a flavor value.
//!
//! Every flavor is derivable from a capability signature via
//! [`Flavor::from_caps`] (the historical behavior, byte-for-byte), and a
//! [`TargetProfile`](crate::targets::TargetProfile) bundles the two so
//! they cannot drift apart.
//!
//! [`Serializer`]: crate::serialize::Serializer

use crate::capability::TargetCapabilities;

// The spelling enums predate this module (they lived on the capability
// struct); they remain defined in `capability` so its `Debug` format —
// which seeds the translation-cache context hash — is unchanged, and are
// re-exported here as part of the flavor vocabulary.
pub use crate::capability::{AddMonthsStyle, DateAddStyle, ModStyle};

/// How the target quotes identifiers that need quoting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentQuoting {
    /// Emit identifiers bare (the mid tier already normalizes names to
    /// unquoted uppercase, so nothing needs quoting).
    Bare,
    /// Wrap every identifier in ANSI double quotes, doubling embedded
    /// quotes.
    Double,
}

/// How the target spells a positional parameter marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamStyle {
    /// `?` (the ODBC shape, §4.5).
    Question,
    /// `$1`, `$2`, … (one-based).
    Dollar,
}

/// How the target spells a row-count bound on a query block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitSpelling {
    /// Trailing `LIMIT n`.
    Limit,
    /// `SELECT TOP n …`.
    Top,
    /// Neither: the mid tier must peel the bound and truncate the result
    /// itself (the `LimitFetch` emulation).
    None,
}

/// The dialect spellings of one target, consumed by the serializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flavor {
    pub ident_quoting: IdentQuoting,
    pub param_style: ParamStyle,
    pub limit: LimitSpelling,
    pub mod_style: ModStyle,
    pub date_add_style: DateAddStyle,
    pub add_months_style: AddMonthsStyle,
    /// Column-type spelling overrides, `(canonical, target)` pairs matched
    /// case-insensitively against the canonical rendering. Empty for every
    /// built-in profile (the bundled engine parses the canonical names).
    pub type_overrides: &'static [(&'static str, &'static str)],
}

impl Flavor {
    /// The flavor a capability signature has always implied: bare
    /// identifiers, `?` markers, canonical type names, and the spelling
    /// enums carried on the signature itself. `Serializer::new(caps)`
    /// output is byte-identical before and after the flavor split.
    pub fn from_caps(caps: &TargetCapabilities) -> Flavor {
        Flavor {
            ident_quoting: IdentQuoting::Bare,
            param_style: ParamStyle::Question,
            limit: if caps.limit_clause {
                LimitSpelling::Limit
            } else if caps.top_clause {
                LimitSpelling::Top
            } else {
                LimitSpelling::None
            },
            mod_style: caps.mod_style,
            date_add_style: caps.date_add_style,
            add_months_style: caps.add_months_style,
            type_overrides: &[],
        }
    }

    /// Spell an identifier for this target.
    pub fn ident(&self, name: &str) -> String {
        match self.ident_quoting {
            IdentQuoting::Bare => name.to_string(),
            IdentQuoting::Double => format!("\"{}\"", name.replace('"', "\"\"")),
        }
    }

    /// Spell the `i`-th (zero-based) positional parameter marker.
    pub fn param_marker(&self, i: usize) -> String {
        match self.param_style {
            ParamStyle::Question => "?".to_string(),
            ParamStyle::Dollar => format!("${}", i + 1),
        }
    }

    /// Spell a column type, applying any per-target override to the
    /// canonical rendering.
    pub fn type_name(&self, canonical: &str) -> String {
        for (from, to) in self.type_overrides {
            if from.eq_ignore_ascii_case(canonical) {
                return (*to).to_string();
            }
        }
        canonical.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_caps_mirrors_the_capability_spellings() {
        let caps = TargetCapabilities::simwh();
        let f = Flavor::from_caps(&caps);
        assert_eq!(f.limit, LimitSpelling::Limit);
        assert_eq!(f.mod_style, caps.mod_style);
        assert_eq!(f.date_add_style, caps.date_add_style);
        assert_eq!(f.add_months_style, caps.add_months_style);
        assert_eq!(f.ident("R_NAME"), "R_NAME");
        assert_eq!(f.param_marker(0), "?");
        assert_eq!(f.type_name("INTEGER"), "INTEGER");

        let mut top = TargetCapabilities::cloud_b();
        top.limit_clause = false;
        top.top_clause = true;
        assert_eq!(Flavor::from_caps(&top).limit, LimitSpelling::Top);
        top.top_clause = false;
        assert_eq!(Flavor::from_caps(&top).limit, LimitSpelling::None);
    }

    #[test]
    fn non_default_spellings_render() {
        let mut f = Flavor::from_caps(&TargetCapabilities::simwh());
        f.ident_quoting = IdentQuoting::Double;
        f.param_style = ParamStyle::Dollar;
        f.type_overrides = &[("DOUBLE PRECISION", "FLOAT8")];
        assert_eq!(f.ident("weird\"name"), "\"weird\"\"name\"");
        assert_eq!(f.param_marker(1), "$2");
        assert_eq!(f.type_name("double precision"), "FLOAT8");
        assert_eq!(f.type_name("INTEGER"), "INTEGER");
    }
}
