//! Capability-conformance linting of *serialized* SQL, plus anti-pattern
//! lints over *source* statements.
//!
//! The analyzer layer ([`crate::analyze`]) checks the plan tree; this module
//! is its post-serializer sibling: a token walk over the exact bytes Hyper-Q
//! is about to send to the target, cross-checked against the session's
//! [`TargetCapabilities`]. Any construct the target lacks — a leaked
//! `QUALIFY`, a `GROUPING SETS` the transformer should have lowered, a
//! `RETURNING` clause on a no-`RETURNING` target — is reported as a
//! [`Finding`] with a rule name and a byte span into the serialized text.
//!
//! The same machinery also runs a set of *anti-pattern* lints over the
//! client's source statement (cache-hostile volatile literals, `SELECT *`
//! feeding DML, DML outside an explicit transaction, constructs with poor
//! cloud portability). Anti-pattern findings are advisory: they carry
//! [`Severity::Warning`] or [`Severity::Info`] and never fail a statement,
//! even in [`ConformanceMode::Strict`].
//!
//! Every rule is declared in [`RULES`], which doubles as the exhaustiveness
//! ledger: each of the 27 tracked [`Feature`]s and each mid-tier
//! [`EmulationKind`] must be policed by at least one rule (a unit test and
//! the CI audit enforce this). Rules whose construct is structurally
//! eliminated *before* serialization (e.g. named-expression references,
//! which the binder inlines) have no lexical check; the table entry records
//! why the emitted SQL cannot contain them.
//!
//! Reporting follows the analyzer convention:
//! `hyperq_conformance_checks_total{stage}` counts walks,
//! `hyperq_conformance_violations_total{rule}` counts findings, and walk
//! latency lands in `hyperq_stage_duration_seconds{stage="conformance"}`.

use std::sync::Arc;
use std::time::Instant;

use hyperq_obs::{Counter, Histogram, ObsContext};
use hyperq_parser::lexer::tokenize;
use hyperq_parser::token::{Spanned, Token};
use hyperq_xtra::feature::{Feature, FeatureSet};

use crate::capability::{support_rows, AddMonthsStyle, DateAddStyle, ModStyle, TargetCapabilities};
use crate::crosscompiler::STAGE_DURATION_METRIC;
use crate::emulate::EmulationKind;
use crate::error::{HyperQError, Result};

/// How the conformance layer reacts to findings (mirrors
/// [`crate::analyze::AnalyzeMode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConformanceMode {
    /// No lint walks at all.
    Off,
    /// Lint and count findings in the metrics registry, but never fail a
    /// statement — the production default.
    #[default]
    LogOnly,
    /// [`Severity::Error`] findings on serialized SQL become
    /// [`HyperQError::Validation`] errors. Advisory (warning/info) findings
    /// still only count. Used by tests and CI.
    Strict,
}

impl ConformanceMode {
    pub fn is_strict(&self) -> bool {
        matches!(self, ConformanceMode::Strict)
    }

    /// Stable lowercase name (cache-key ingredient and config spelling).
    pub fn as_str(&self) -> &'static str {
        match self {
            ConformanceMode::Off => "off",
            ConformanceMode::LogOnly => "log_only",
            ConformanceMode::Strict => "strict",
        }
    }
}

/// Finding severity. Only [`Severity::Error`] fails statements in strict
/// mode; warnings and infos are advisory in every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding: a named rule, where it fired, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule name from [`RULES`].
    pub rule: &'static str,
    pub severity: Severity,
    /// Byte range into the linted text (`start < end`, both within bounds).
    pub span: (usize, usize),
    /// 1-based line of the span start.
    pub line: u32,
    pub message: String,
}

/// How a rule polices its constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleCheck {
    /// A lexical pattern over serialized SQL ([`lint_serialized`]).
    Serialized,
    /// A lexical pattern over the client's source statement
    /// ([`lint_source`]).
    Source,
    /// No lexical check: the construct is structurally eliminated before
    /// serialization (binder inlining, mid-tier interception), so emitted
    /// SQL cannot contain it. The entry documents the policing story.
    Structural,
}

/// Declaration of one conformance rule: the ledger row the exhaustiveness
/// audit consumes.
pub struct RuleSpec {
    pub name: &'static str,
    pub severity: Severity,
    pub check: RuleCheck,
    /// Tracked source features this rule polices in emitted SQL.
    pub features: &'static [Feature],
    /// Mid-tier emulation kinds whose emitted artifacts this rule covers.
    pub emulations: &'static [EmulationKind],
    pub description: &'static str,
}

/// The complete rule table. Every [`Feature`] and every [`EmulationKind`]
/// appears in at least one entry; `conformance::tests` and the repo's
/// exhaustiveness audit enforce this.
pub const RULES: &[RuleSpec] = &[
    // --- capability rules over serialized SQL (translation class) ---
    RuleSpec {
        name: "keyword-shortcut",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::KeywordShortcut],
        emulations: &[],
        description: "statement-leading SEL/INS/UPD/DEL shortcut on a target \
                      without keyword shortcuts",
    },
    RuleSpec {
        name: "keyword-comparison",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::KeywordComparison],
        emulations: &[],
        description: "EQ/NE/LT/LE/GT/GE comparison keyword on a target that \
                      only accepts symbolic operators",
    },
    RuleSpec {
        name: "mod-spelling",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::ModOperator],
        emulations: &[],
        description: "infix MOD on a target without it, or `%` on a target \
                      that spells modulo as MOD(a, b)",
    },
    RuleSpec {
        name: "exponent-operator",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::ExponentOperator],
        emulations: &[],
        description: "`**` exponentiation on a target without the operator",
    },
    RuleSpec {
        name: "chars-function",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::CharsFunction],
        emulations: &[],
        description: "CHARS/CHARACTERS length function on a target without it",
    },
    RuleSpec {
        name: "zeroifnull-function",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::ZeroIfNull],
        emulations: &[],
        description: "ZEROIFNULL/NULLIFZERO on a target without them",
    },
    RuleSpec {
        name: "index-function",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::IndexFunction],
        emulations: &[],
        description: "INDEX(string, substring) on a target without it",
    },
    RuleSpec {
        name: "substr-function",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::SubstrFunction],
        emulations: &[],
        description: "SUBSTR spelling on a target that only accepts SUBSTRING",
    },
    RuleSpec {
        name: "add-months-function",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::AddMonths],
        emulations: &[],
        description: "ADD_MONTHS(d, n) on a target that spells month \
                      arithmetic differently",
    },
    // --- capability rules over serialized SQL (transformation class) ---
    RuleSpec {
        name: "qualify-clause",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::Qualify],
        emulations: &[],
        description: "QUALIFY clause on a target without it",
    },
    RuleSpec {
        name: "implicit-join",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::ImplicitJoin],
        emulations: &[],
        description: "comma-separated FROM list on a target requiring \
                      explicit join syntax",
    },
    RuleSpec {
        name: "named-expr-reuse",
        severity: Severity::Error,
        check: RuleCheck::Structural,
        features: &[Feature::NamedExprReference],
        emulations: &[],
        description: "select-list alias referenced within the same statement: \
                      the binder inlines every named-expression reference \
                      before serialization, so emitted SQL cannot contain one",
    },
    RuleSpec {
        name: "ordinal-group-by",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::OrdinalGroupBy],
        emulations: &[],
        description: "ordinal in GROUP BY on a target that requires \
                      expressions",
    },
    RuleSpec {
        name: "date-int-comparison",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::DateIntComparison],
        emulations: &[],
        description: "DATE literal compared against a bare integer on a \
                      target without Teradata's internal date encoding",
    },
    RuleSpec {
        name: "date-arithmetic",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::DateArithmetic],
        emulations: &[],
        description: "DATE literal ± integer on a target without native date \
                      arithmetic, or a DATEADD/DATE_ADD spelling the target \
                      does not use",
    },
    RuleSpec {
        name: "vector-subquery",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::VectorSubquery],
        emulations: &[],
        description: "row-value comparison against a (quantified) subquery on \
                      a target without vector comparison",
    },
    RuleSpec {
        name: "grouping-sets",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::GroupingExtensions],
        emulations: &[],
        description: "GROUPING SETS/ROLLUP/CUBE on a target without grouping \
                      extensions",
    },
    RuleSpec {
        name: "td-window-syntax",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::NonAnsiWindowSyntax],
        emulations: &[],
        description: "Teradata window shorthand (RANK(expr), CSUM, MAVG, \
                      MSUM, MDIFF) on a target that requires ANSI OVER() \
                      syntax",
    },
    // --- capability rules over serialized SQL (emulation class) ---
    RuleSpec {
        name: "recursive-cte",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::RecursiveQuery],
        emulations: &[EmulationKind::Recursive],
        description: "WITH RECURSIVE on a target without recursive CTEs (the \
                      mid-tier iterative protocol should have decomposed it)",
    },
    RuleSpec {
        name: "macro-statement",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::MacroStatement],
        emulations: &[EmulationKind::Macro],
        description: "CREATE/DROP MACRO or EXEC on a target without macros \
                      (macro bodies are expanded mid-tier)",
    },
    RuleSpec {
        name: "stored-procedure",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::StoredProcedureCall],
        emulations: &[EmulationKind::Procedure],
        description: "CREATE PROCEDURE / CALL on a target without stored \
                      procedures (procedure bodies are interpreted mid-tier)",
    },
    RuleSpec {
        name: "merge-statement",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::MergeStatement],
        emulations: &[EmulationKind::Merge],
        description: "MERGE on a target without it (should have been \
                      decomposed into UPDATE + INSERT steps)",
    },
    RuleSpec {
        name: "help-command",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::HelpCommand],
        emulations: &[EmulationKind::Help],
        description: "HELP command on a target without it (answered from the \
                      mid-tier catalog)",
    },
    RuleSpec {
        name: "dml-on-view",
        severity: Severity::Error,
        check: RuleCheck::Structural,
        features: &[Feature::DmlOnView],
        emulations: &[EmulationKind::ViewDml],
        description: "DML against a session view: detecting this requires the \
                      catalog, and the E6 rewrite re-targets the base table \
                      before serialization, so emitted SQL cannot contain it",
    },
    RuleSpec {
        name: "global-temp-table",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::GlobalTempTable],
        emulations: &[EmulationKind::GttDefine, EmulationKind::GttMaterialize],
        description: "GLOBAL TEMPORARY on a target without global temp tables \
                      (materialized as per-session instances mid-tier)",
    },
    RuleSpec {
        name: "set-table",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::SetTableSemantics],
        emulations: &[EmulationKind::SetTableDedup],
        description: "CREATE SET TABLE on a target without SET semantics \
                      (deduplication is injected into DML instead)",
    },
    RuleSpec {
        name: "column-properties",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[Feature::ColumnProperties],
        emulations: &[EmulationKind::DefaultInjection],
        description: "Teradata column properties (CASESPECIFIC, …) on a \
                      target without them (defaults are injected into INSERTs \
                      mid-tier)",
    },
    // --- output-only capability rules (no Teradata source feature) ---
    RuleSpec {
        name: "top-clause",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[EmulationKind::LimitFetch],
        description: "SELECT TOP n on a target without the TOP clause (a \
                      target with neither spelling gets the bound peeled \
                      and the result truncated mid-tier)",
    },
    RuleSpec {
        name: "limit-clause",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[EmulationKind::LimitFetch],
        description: "LIMIT n on a target without the LIMIT clause (a \
                      target with neither spelling gets the bound peeled \
                      and the result truncated mid-tier)",
    },
    RuleSpec {
        name: "with-ties",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[],
        description: "WITH TIES on a target without it",
    },
    RuleSpec {
        name: "returning-clause",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[],
        description: "RETURNING clause on DML sent to a target without it",
    },
    RuleSpec {
        name: "derived-table-column-aliases",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[],
        description: "derived-table column alias list `) AS d (a, b)` on a \
                      target without the syntax",
    },
    // --- mid-tier leak rules ---
    RuleSpec {
        name: "session-setting",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[EmulationKind::SetSession],
        description: "statement-leading SET sent to a target that rejects \
                      session settings (should have been kept mid-tier)",
    },
    RuleSpec {
        name: "transaction-shorthand",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[EmulationKind::Transaction],
        description: "Teradata BT/ET transaction shorthand, valid on no \
                      target (transactions are journaled mid-tier)",
    },
    RuleSpec {
        name: "mid-tier-leak",
        severity: Severity::Error,
        check: RuleCheck::Serialized,
        features: &[],
        emulations: &[EmulationKind::Explain, EmulationKind::View],
        description: "EXPLAIN or view DDL in serialized output: both are \
                      answered entirely in the mid-tier and must never reach \
                      the target",
    },
    RuleSpec {
        name: "orphan-cleanup",
        severity: Severity::Info,
        check: RuleCheck::Structural,
        features: &[],
        emulations: &[EmulationKind::Cleanup],
        description: "temp-table cleanup emits `DROP TABLE IF EXISTS` only, \
                      idempotent by construction on every profile",
    },
    // --- anti-pattern rules over source statements ---
    RuleSpec {
        name: "volatile-literal",
        severity: Severity::Warning,
        check: RuleCheck::Source,
        features: &[],
        emulations: &[],
        description: "CURRENT_DATE/CURRENT_TIME/CURRENT_TIMESTAMP in a read \
                      query: cache-hostile, the fingerprint changes meaning \
                      across days",
    },
    RuleSpec {
        name: "select-star-dml",
        severity: Severity::Warning,
        check: RuleCheck::Source,
        features: &[],
        emulations: &[],
        description: "SELECT * feeding an INSERT or CTAS: breaks silently \
                      when the source schema evolves",
    },
    RuleSpec {
        name: "implicit-transaction",
        severity: Severity::Info,
        check: RuleCheck::Source,
        features: &[],
        emulations: &[],
        description: "DML outside an explicit transaction: each statement \
                      auto-commits on the target, so multi-statement updates \
                      are not atomic",
    },
    RuleSpec {
        name: "non-portable",
        severity: Severity::Warning,
        check: RuleCheck::Source,
        features: &[],
        emulations: &[],
        description: "statement uses a tracked feature supported by fewer \
                      than half of the surveyed cloud targets",
    },
];

/// Look up a rule declaration by name.
pub fn rule(name: &str) -> Option<&'static RuleSpec> {
    RULES.iter().find(|r| r.name == name)
}

// ---------------------------------------------------------------------------
// Token-walk machinery
// ---------------------------------------------------------------------------

/// Byte length of a token as rendered in source (approximate for string
/// literals containing escaped quotes — always ≤ the written length, so
/// spans never run past the following token).
fn tok_len(t: &Token) -> usize {
    match t {
        Token::Word(w) => w.len(),
        Token::QuotedIdent(w) => w.len() + 2,
        Token::Number(n) => n.len(),
        Token::StringLit(s) => s.len() + 2,
        Token::NamedParam(n) => n.len() + 1,
        Token::Concat | Token::Power | Token::Le | Token::Ge | Token::Neq => 2,
        Token::Eof => 0,
        _ => 1,
    }
}

fn is_cmp(t: &Token) -> bool {
    matches!(
        t,
        Token::Eq | Token::Neq | Token::Lt | Token::Le | Token::Gt | Token::Ge
    )
}

/// Could this token end an operand (so that a following keyword could be an
/// infix operator)?
fn ends_operand(t: &Token) -> bool {
    matches!(
        t,
        Token::Word(_) | Token::QuotedIdent(_) | Token::Number(_) | Token::StringLit(_) | Token::RParen
    )
}

/// Could this token begin an operand?
fn starts_operand(t: &Token) -> bool {
    matches!(
        t,
        Token::Word(_)
            | Token::QuotedIdent(_)
            | Token::Number(_)
            | Token::StringLit(_)
            | Token::NamedParam(_)
            | Token::Question
            | Token::LParen
            | Token::Plus
            | Token::Minus
    )
}

/// Clause context at one paren-nesting level.
#[derive(Clone, Copy, PartialEq)]
enum Clause {
    None,
    From,
    GroupBy,
}

struct Walk<'a> {
    toks: &'a [Spanned],
    findings: Vec<Finding>,
}

impl<'a> Walk<'a> {
    fn kw(&self, i: usize) -> Option<String> {
        self.toks.get(i).and_then(|s| s.token.keyword())
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.toks.get(i).is_some_and(|s| s.token.is_kw(kw))
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.toks.get(i).map(|s| &s.token)
    }

    fn flag(&mut self, name: &'static str, i: usize, msg: String) {
        let sp = &self.toks[i];
        let spec = rule(name).expect("rule declared in RULES");
        self.findings.push(Finding {
            rule: name,
            severity: spec.severity,
            span: (sp.offset, sp.offset + tok_len(&sp.token).max(1)),
            line: sp.line,
            message: msg,
        });
    }
}

/// Lint serialized SQL against the target's capability signature. Returns
/// findings sorted by span start (the natural walk order).
pub fn lint_serialized(sql: &str, caps: &TargetCapabilities) -> Vec<Finding> {
    let Ok(toks) = tokenize(sql) else {
        // The serializers always produce lexable SQL; an unlexable string
        // cannot be checked token-wise, and the pipeline's own parser will
        // reject it long before this point when it matters.
        return Vec::new();
    };
    let mut w = Walk {
        toks: &toks,
        findings: Vec::new(),
    };
    // Clause context per nesting level, plus whether each open paren group
    // has seen a top-level comma (vector-subquery detection).
    let mut clause: Vec<Clause> = vec![Clause::None];
    let mut group_comma: Vec<bool> = Vec::new();
    // Index of the statement's first token and its leading keyword.
    let mut stmt_start = true;
    let mut leading: Option<String> = None;

    let n = toks.len();
    let mut i = 0;
    while i < n {
        let t = &toks[i].token;
        if *t == Token::Eof {
            break;
        }
        if stmt_start {
            if *t == Token::Semicolon {
                i += 1;
                continue;
            }
            leading = t.keyword();
            stmt_start = false;
            if let Some(kw) = leading.as_deref() {
                match kw {
                    "SEL" | "INS" | "UPD" | "DEL" if !caps.keyword_shortcuts => {
                        w.flag(
                            "keyword-shortcut",
                            i,
                            format!("{} shortcut: {} lacks keyword shortcuts", kw, caps.name),
                        );
                    }
                    "EXEC" | "EXECUTE" if !caps.macros => {
                        w.flag(
                            "macro-statement",
                            i,
                            format!("{} leaked to {}: macros are mid-tier objects", kw, caps.name),
                        );
                    }
                    "CALL" if !caps.stored_procedures => {
                        w.flag(
                            "stored-procedure",
                            i,
                            format!("CALL leaked to {}: procedures are mid-tier objects", caps.name),
                        );
                    }
                    "MERGE" if !caps.merge => {
                        w.flag(
                            "merge-statement",
                            i,
                            format!("MERGE is not supported by {}", caps.name),
                        );
                    }
                    "HELP" if !caps.help_commands => {
                        w.flag(
                            "help-command",
                            i,
                            format!("HELP leaked to {}: answered from the mid-tier catalog", caps.name),
                        );
                    }
                    "SET" if !caps.session_settings => {
                        w.flag(
                            "session-setting",
                            i,
                            format!("session SET leaked to {}: should stay mid-tier", caps.name),
                        );
                    }
                    "BT" | "ET" => {
                        w.flag(
                            "transaction-shorthand",
                            i,
                            format!("Teradata {kw} shorthand is valid on no target"),
                        );
                    }
                    "EXPLAIN" => {
                        w.flag(
                            "mid-tier-leak",
                            i,
                            "EXPLAIN is answered mid-tier and must not reach the target".into(),
                        );
                    }
                    _ => {}
                }
            }
        }
        match t {
            Token::Semicolon => {
                stmt_start = true;
                leading = None;
                clause.truncate(1);
                clause[0] = Clause::None;
                group_comma.clear();
            }
            Token::LParen => {
                clause.push(Clause::None);
                group_comma.push(false);
                // Preceding word + open paren: function-style checks.
                if i > 0 {
                    if let Some(kw) = w.kw(i - 1) {
                        let fi = i - 1;
                        let nonempty = w.tok(i + 1).is_some_and(|t| *t != Token::RParen);
                        match kw.as_str() {
                            "CHARS" | "CHARACTERS" if !caps.chars_function => w.flag(
                                "chars-function",
                                fi,
                                format!("{}() is not supported by {}", kw, caps.name),
                            ),
                            "ZEROIFNULL" | "NULLIFZERO" if !caps.zeroifnull => w.flag(
                                "zeroifnull-function",
                                fi,
                                format!("{}() is not supported by {}", kw, caps.name),
                            ),
                            "INDEX" if !caps.index_function && fi > 0 && !w.is_kw(fi - 1, "CREATE") => {
                                w.flag(
                                    "index-function",
                                    fi,
                                    format!("INDEX() is not supported by {}", caps.name),
                                );
                            }
                            "SUBSTR" if !caps.substr_function => w.flag(
                                "substr-function",
                                fi,
                                format!("{} only accepts SUBSTRING", caps.name),
                            ),
                            "ADD_MONTHS" if caps.add_months_style != AddMonthsStyle::AddMonthsFn => {
                                w.flag(
                                    "add-months-function",
                                    fi,
                                    format!("{} does not spell month arithmetic ADD_MONTHS", caps.name),
                                );
                            }
                            "DATEADD"
                                if caps.date_add_style != DateAddStyle::DateAddFn
                                    && caps.add_months_style != AddMonthsStyle::DateAddFn =>
                            {
                                w.flag(
                                    "date-arithmetic",
                                    fi,
                                    format!("{} does not use the DATEADD spelling", caps.name),
                                );
                            }
                            "DATE_ADD" if caps.date_add_style != DateAddStyle::IntervalFn => w.flag(
                                "date-arithmetic",
                                fi,
                                format!("{} does not use the DATE_ADD spelling", caps.name),
                            ),
                            "RANK" if !caps.td_window_syntax && nonempty => w.flag(
                                "td-window-syntax",
                                fi,
                                format!("RANK(expr) shorthand is not supported by {}", caps.name),
                            ),
                            "CSUM" | "MAVG" | "MSUM" | "MDIFF" if !caps.td_window_syntax => w.flag(
                                "td-window-syntax",
                                fi,
                                format!("{}() is not supported by {}", kw, caps.name),
                            ),
                            // The new nesting level was already pushed;
                            // ROLLUP/CUBE sit in the *enclosing* clause.
                            "ROLLUP" | "CUBE"
                                if !caps.grouping_sets
                                    && clause[clause.len() - 2] == Clause::GroupBy =>
                            {
                                w.flag(
                                    "grouping-sets",
                                    fi,
                                    format!("{} is not supported by {}", kw, caps.name),
                                );
                            }
                            _ => {}
                        }
                    }
                }
            }
            Token::RParen => {
                if clause.len() > 1 {
                    clause.pop();
                }
                let had_comma = group_comma.pop().unwrap_or(false);
                // `(a, b) cmp [ANY|ALL|SOME] (…)` — a row-value (vector)
                // comparison. The group must not be a call argument list.
                if had_comma && !caps.vector_subquery {
                    // Find the matching LParen to inspect the token before it.
                    // Walk back using a simple depth count.
                    let mut depth = 0usize;
                    let mut open = None;
                    for j in (0..i).rev() {
                        match toks[j].token {
                            Token::RParen => depth += 1,
                            Token::LParen => {
                                if depth == 0 {
                                    open = Some(j);
                                    break;
                                }
                                depth -= 1;
                            }
                            _ => {}
                        }
                    }
                    // A word directly before the open paren makes this a
                    // call argument list — unless it's a clause keyword
                    // that merely precedes a parenthesized row value.
                    let call_like = open.is_some_and(|j| {
                        j > 0
                            && match &toks[j - 1].token {
                                Token::QuotedIdent(_) => true,
                                Token::Word(wd) => !matches!(
                                    wd.to_ascii_uppercase().as_str(),
                                    "WHERE" | "AND" | "OR" | "NOT" | "ON" | "WHEN" | "THEN"
                                        | "ELSE" | "SELECT" | "SEL" | "BY" | "HAVING"
                                        | "QUALIFY" | "SET"
                                ),
                                _ => false,
                            }
                    });
                    let mut k = i + 1;
                    if !call_like && w.tok(k).is_some_and(is_cmp) {
                        k += 1;
                        if w.is_kw(k, "ANY") || w.is_kw(k, "ALL") || w.is_kw(k, "SOME") {
                            k += 1;
                        }
                        if w.tok(k) == Some(&Token::LParen) {
                            w.flag(
                                "vector-subquery",
                                i,
                                format!("vector comparison is not supported by {}", caps.name),
                            );
                        }
                    }
                }
            }
            Token::Comma => {
                if let Some(f) = group_comma.last_mut() {
                    *f = true;
                }
                if *clause.last().unwrap() == Clause::From && !caps.implicit_joins {
                    w.flag(
                        "implicit-join",
                        i,
                        format!("comma join: {} requires explicit JOIN syntax", caps.name),
                    );
                }
            }
            Token::Percent if caps.mod_style == ModStyle::Function => {
                w.flag(
                    "mod-spelling",
                    i,
                    format!("{} spells modulo MOD(a, b), not `%`", caps.name),
                );
            }
            Token::Power if !caps.exponent_operator => {
                w.flag(
                    "exponent-operator",
                    i,
                    format!("`**` is not supported by {}", caps.name),
                );
            }
            Token::Number(_)
                // Ordinal GROUP BY item: a bare number that is a complete
                // list element in GROUP BY context.
                if *clause.last().unwrap() == Clause::GroupBy
                    && !caps.ordinal_group_by
                    && i > 0
                    && matches!(toks[i - 1].token, Token::Comma | Token::Word(_))
                    && (w.is_kw(i - 1, "BY") || toks[i - 1].token == Token::Comma)
                => {
                    let terminated = match w.tok(i + 1) {
                        Some(Token::Comma | Token::Semicolon | Token::Eof) | None => true,
                        Some(Token::Word(word)) => matches!(
                            word.to_ascii_uppercase().as_str(),
                            "HAVING" | "ORDER" | "LIMIT" | "QUALIFY" | "UNION" | "EXCEPT"
                                | "INTERSECT" | "WINDOW"
                        ),
                        Some(Token::RParen) => true,
                        _ => false,
                    };
                    if terminated {
                        w.flag(
                            "ordinal-group-by",
                            i,
                            format!("GROUP BY ordinal: {} requires expressions", caps.name),
                        );
                    }
                }
            Token::Word(word) => {
                let kw = word.to_ascii_uppercase();
                let dotted = i > 0 && toks[i - 1].token == Token::Dot;
                match kw.as_str() {
                    // clause tracking
                    "FROM" if !dotted => *clause.last_mut().unwrap() = Clause::From,
                    "GROUP" if !dotted && w.is_kw(i + 1, "BY") => {
                        *clause.last_mut().unwrap() = Clause::GroupBy;
                    }
                    "SELECT" | "WHERE" | "HAVING" | "WINDOW" | "ORDER" | "UNION" | "EXCEPT"
                    | "INTERSECT" | "VALUES" | "ON" if !dotted => {
                        *clause.last_mut().unwrap() = Clause::None;
                    }
                    "SET" if !dotted && i > 0 => {
                        // UPDATE … SET resets clause context; CREATE SET
                        // TABLE is the Teradata set-semantics leak.
                        if w.is_kw(i - 1, "CREATE") && w.is_kw(i + 1, "TABLE") && !caps.set_tables {
                            w.flag(
                                "set-table",
                                i,
                                format!("CREATE SET TABLE: {} has no SET semantics", caps.name),
                            );
                        }
                        *clause.last_mut().unwrap() = Clause::None;
                    }
                    "QUALIFY" if !dotted && !caps.qualify => {
                        *clause.last_mut().unwrap() = Clause::None;
                        w.flag(
                            "qualify-clause",
                            i,
                            format!("QUALIFY is not supported by {}", caps.name),
                        );
                    }
                    "LIMIT" if !dotted && !caps.limit_clause
                        && w.tok(i + 1).is_some_and(|t| matches!(t, Token::Number(_))) => {
                            w.flag(
                                "limit-clause",
                                i,
                                format!("LIMIT is not supported by {}", caps.name),
                            );
                        }
                    "TOP" if !caps.top_clause
                        && i > 0
                        && (w.is_kw(i - 1, "SELECT")
                            || w.is_kw(i - 1, "SEL")
                            || w.is_kw(i - 1, "DISTINCT")) =>
                    {
                        w.flag(
                            "top-clause",
                            i,
                            format!("TOP is not supported by {}", caps.name),
                        );
                    }
                    "WITH" if !dotted => {
                        if w.is_kw(i + 1, "RECURSIVE") && !caps.recursive_cte {
                            w.flag(
                                "recursive-cte",
                                i,
                                format!("WITH RECURSIVE is not supported by {}", caps.name),
                            );
                        }
                        if w.is_kw(i + 1, "TIES") && !caps.with_ties {
                            w.flag(
                                "with-ties",
                                i,
                                format!("WITH TIES is not supported by {}", caps.name),
                            );
                        }
                    }
                    "GROUPING" if w.is_kw(i + 1, "SETS") && !caps.grouping_sets => {
                        w.flag(
                            "grouping-sets",
                            i,
                            format!("GROUPING SETS is not supported by {}", caps.name),
                        );
                    }
                    "MACRO" if !caps.macros
                        && i > 0
                        && (w.is_kw(i - 1, "CREATE")
                            || w.is_kw(i - 1, "REPLACE")
                            || w.is_kw(i - 1, "DROP")) =>
                    {
                        w.flag(
                            "macro-statement",
                            i,
                            format!("macro DDL leaked to {}: macros are mid-tier objects", caps.name),
                        );
                    }
                    "PROCEDURE" if !caps.stored_procedures
                        && i > 0
                        && (w.is_kw(i - 1, "CREATE")
                            || w.is_kw(i - 1, "REPLACE")
                            || w.is_kw(i - 1, "DROP")) =>
                    {
                        w.flag(
                            "stored-procedure",
                            i,
                            format!("procedure DDL leaked to {}: procedures are mid-tier objects", caps.name),
                        );
                    }
                    "VIEW" if i > 0
                        && (w.is_kw(i - 1, "CREATE")
                            || w.is_kw(i - 1, "REPLACE")
                            || w.is_kw(i - 1, "DROP")) =>
                    {
                        w.flag(
                            "mid-tier-leak",
                            i,
                            "view DDL is kept mid-tier and must not reach the target".into(),
                        );
                    }
                    "GLOBAL" if w.is_kw(i + 1, "TEMPORARY") && !caps.global_temp_tables => {
                        w.flag(
                            "global-temp-table",
                            i,
                            format!("GLOBAL TEMPORARY is not supported by {}", caps.name),
                        );
                    }
                    "CASESPECIFIC" if !caps.column_properties => {
                        w.flag(
                            "column-properties",
                            i,
                            format!("CASESPECIFIC is not supported by {}", caps.name),
                        );
                    }
                    "RETURNING" if !caps.returning_clause
                        && clause.len() == 1
                        && matches!(
                            leading.as_deref(),
                            Some("INSERT" | "UPDATE" | "DELETE" | "MERGE")
                        ) =>
                    {
                        w.flag(
                            "returning-clause",
                            i,
                            format!("RETURNING is not supported by {}", caps.name),
                        );
                    }
                    "EQ" | "NE" | "LT" | "LE" | "GT" | "GE"
                        if !caps.keyword_comparisons
                            && i > 0
                            && ends_operand(&toks[i - 1].token)
                            && w.tok(i + 1).is_some_and(starts_operand) =>
                    {
                        w.flag(
                            "keyword-comparison",
                            i,
                            format!("{} comparison keyword: {} only accepts symbols", kw, caps.name),
                        );
                    }
                    "MOD" if !caps.mod_operator_infix
                        && i > 0
                        && ends_operand(&toks[i - 1].token)
                        && w.tok(i + 1).is_some_and(starts_operand)
                        && w.tok(i + 1) != Some(&Token::LParen) =>
                    {
                        w.flag(
                            "mod-spelling",
                            i,
                            format!("infix MOD is not supported by {}", caps.name),
                        );
                    }
                    "AS"
                        // `) AS alias (col, …)` — derived-table column alias
                        // list (a CTE is `alias AS (…)`, no leading RParen).
                        if !caps.derived_table_column_aliases
                            && i > 0
                            && toks[i - 1].token == Token::RParen
                            && w.tok(i + 1).is_some_and(|t| matches!(t, Token::Word(_) | Token::QuotedIdent(_)))
                            && w.tok(i + 2) == Some(&Token::LParen)
                        => {
                            w.flag(
                                "derived-table-column-aliases",
                                i,
                                format!("derived-table column aliases are not supported by {}", caps.name),
                            );
                        }
                    "DATE" if !dotted => {
                        // DATE 'lit' followed by a comparison/arithmetic with
                        // a bare integer (or preceded by one).
                        if w.tok(i + 1).is_some_and(|t| matches!(t, Token::StringLit(_))) {
                            let after = i + 2;
                            if !caps.date_int_comparison
                                && w.tok(after).is_some_and(is_cmp)
                                && w.tok(after + 1).is_some_and(|t| matches!(t, Token::Number(_)))
                            {
                                w.flag(
                                    "date-int-comparison",
                                    i,
                                    format!("DATE vs integer comparison: {} lacks the internal date encoding", caps.name),
                                );
                            }
                            if !caps.date_arithmetic
                                && w.tok(after)
                                    .is_some_and(|t| matches!(t, Token::Plus | Token::Minus))
                                && w.tok(after + 1).is_some_and(|t| matches!(t, Token::Number(_)))
                                && !w.is_kw(after + 1, "INTERVAL")
                            {
                                w.flag(
                                    "date-arithmetic",
                                    i,
                                    format!("DATE ± integer: {} lacks native date arithmetic", caps.name),
                                );
                            }
                        }
                        // integer cmp DATE 'lit'
                        if !caps.date_int_comparison
                            && i >= 2
                            && matches!(toks[i - 2].token, Token::Number(_))
                            && is_cmp(&toks[i - 1].token)
                            && w.tok(i + 1).is_some_and(|t| matches!(t, Token::StringLit(_)))
                        {
                            w.flag(
                                "date-int-comparison",
                                i,
                                format!("integer vs DATE comparison: {} lacks the internal date encoding", caps.name),
                            );
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        i += 1;
    }
    w.findings
}

/// Anti-pattern lints over a client's *source* statement. `features` is the
/// statement's tracked-feature set from the parser; `in_transaction` is the
/// session's explicit-transaction state. Findings are always advisory
/// (warning/info).
pub fn lint_source(sql: &str, features: &FeatureSet, in_transaction: bool) -> Vec<Finding> {
    let Ok(toks) = tokenize(sql) else {
        return Vec::new();
    };
    let mut w = Walk {
        toks: &toks,
        findings: Vec::new(),
    };
    let leading = toks
        .iter()
        .find(|s| !matches!(s.token, Token::Semicolon | Token::Eof))
        .and_then(|s| s.token.keyword());
    let leading = leading.as_deref().unwrap_or("");
    let is_read = matches!(leading, "SELECT" | "SEL" | "WITH");
    let is_dml = matches!(
        leading,
        "INSERT" | "INS" | "UPDATE" | "UPD" | "DELETE" | "DEL" | "MERGE"
    );
    let is_ctas = leading == "CREATE"
        && toks
            .iter()
            .any(|s| s.token.is_kw("AS"));

    let n = toks.len();
    for i in 0..n {
        if let Token::Word(word) = &toks[i].token {
            let kw = word.to_ascii_uppercase();
            match kw.as_str() {
                "CURRENT_DATE" | "CURRENT_TIME" | "CURRENT_TIMESTAMP" if is_read => {
                    w.flag(
                        "volatile-literal",
                        i,
                        format!("{kw} makes this query cache-hostile: its fingerprint is stable but its meaning changes with the clock"),
                    );
                }
                "SELECT" | "SEL" if (is_dml || is_ctas) && i + 1 < n
                    && toks[i + 1].token == Token::Star => {
                        w.flag(
                            "select-star-dml",
                            i + 1,
                            "SELECT * feeding DML breaks silently when the source schema evolves".into(),
                        );
                    }
                _ => {}
            }
        }
    }

    if is_dml && !in_transaction {
        w.flag(
            "implicit-transaction",
            0,
            format!("{leading} outside an explicit transaction auto-commits on the target"),
        );
    }

    // Portability advisory: any tracked feature supported by fewer than half
    // of the surveyed cloud targets.
    if !features.is_empty() {
        let rows = support_rows();
        for f in features.iter() {
            let Some(row) = rows.iter().find(|r| r.feature == f) else {
                continue;
            };
            if row.percent_supported < 50.0 {
                w.flag(
                    "non-portable",
                    0,
                    format!(
                        "{} ({}) is supported by only {:.0}% of surveyed cloud targets",
                        f.code(),
                        f.title(),
                        row.percent_supported
                    ),
                );
            }
        }
    }
    w.findings
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// The per-session conformance driver: mode + pre-resolved metric handles,
/// the post-serializer sibling of [`crate::analyze::Analyzer`].
pub struct Conformance {
    mode: ConformanceMode,
    obs: Arc<ObsContext>,
    duration: Arc<Histogram>,
    checks_serialized: Arc<Counter>,
    checks_source: Arc<Counter>,
}

impl Conformance {
    pub fn new(mode: ConformanceMode, obs: &Arc<ObsContext>) -> Self {
        let checks = |stage| {
            obs.metrics
                .counter("hyperq_conformance_checks_total", &[("stage", stage)])
        };
        Conformance {
            mode,
            obs: Arc::clone(obs),
            duration: obs
                .metrics
                .histogram(STAGE_DURATION_METRIC, &[("stage", "conformance")]),
            checks_serialized: checks("serialized"),
            checks_source: checks("source"),
        }
    }

    pub fn mode(&self) -> ConformanceMode {
        self.mode
    }

    /// Count findings attributed to the rule *and* the target profile
    /// that tripped it — a multi-target gateway (or a session serving
    /// per-request target overrides) needs both coordinates to tell which
    /// profile a violation belongs to.
    fn count(&self, findings: &[Finding], target: &str) {
        for f in findings {
            self.obs
                .metrics
                .counter(
                    "hyperq_conformance_violations_total",
                    &[("rule", f.rule), ("target", target)],
                )
                .inc();
        }
    }

    /// Lint serialized SQL on its way to the target. In strict mode, an
    /// error-severity finding fails the statement. `target` is the
    /// registry name of the profile the SQL was serialized for — the
    /// violation counter's `target` label.
    pub fn check_serialized(&self, sql: &str, caps: &TargetCapabilities, target: &str) -> Result<()> {
        if self.mode == ConformanceMode::Off {
            return Ok(());
        }
        let t0 = Instant::now();
        let findings = lint_serialized(sql, caps);
        let d = t0.elapsed();
        self.duration.record(d);
        hyperq_obs::provenance::note_stage("conformance", d);
        self.checks_serialized.inc();
        if findings.is_empty() {
            return Ok(());
        }
        self.count(&findings, target);
        if self.mode.is_strict() {
            if let Some(f) = findings.iter().find(|f| f.severity == Severity::Error) {
                return Err(HyperQError::Validation(format!(
                    "conformance rule '{}' at bytes {}..{} (line {}): {} — {sql}",
                    f.rule, f.span.0, f.span.1, f.line, f.message
                )));
            }
        }
        Ok(())
    }

    /// Run the advisory anti-pattern lints over a source statement. Never
    /// fails; findings are only counted.
    pub fn check_source(
        &self,
        sql: &str,
        features: &FeatureSet,
        in_transaction: bool,
        target: &str,
    ) {
        if self.mode == ConformanceMode::Off || sql.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let findings = lint_source(sql, features, in_transaction);
        let d = t0.elapsed();
        self.duration.record(d);
        hyperq_obs::provenance::note_stage("conformance", d);
        self.checks_source.inc();
        self.count(&findings, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simwh() -> TargetCapabilities {
        TargetCapabilities::simwh()
    }

    fn find(sql: &str, caps: &TargetCapabilities, rule: &str) -> bool {
        lint_serialized(sql, caps).iter().any(|f| f.rule == rule)
    }

    #[test]
    fn rules_cover_every_feature_and_emulation_kind() {
        for f in Feature::ALL {
            assert!(
                RULES.iter().any(|r| r.features.contains(&f)),
                "feature {} ({:?}) has no conformance rule",
                f.code(),
                f
            );
        }
        for k in EmulationKind::ALL {
            assert!(
                RULES.iter().any(|r| r.emulations.contains(&k)),
                "emulation kind {} has no conformance rule",
                k.as_str()
            );
        }
        let mut names: Vec<_> = RULES.iter().map(|r| r.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(n, names.len(), "duplicate rule names");
    }

    #[test]
    fn clean_ansi_is_clean_on_simwh() {
        let sql = "SELECT a, b FROM t INNER JOIN u ON t.id = u.id WHERE a > 3 \
                   GROUP BY a, b ORDER BY a LIMIT 10";
        assert!(lint_serialized(sql, &simwh()).is_empty());
    }

    #[test]
    fn capability_rules_fire() {
        let caps = simwh();
        assert!(find("SEL a FROM t", &caps, "keyword-shortcut"));
        assert!(find("SELECT a FROM t WHERE a EQ 3", &caps, "keyword-comparison"));
        assert!(find("SELECT a ** 2 FROM t", &caps, "exponent-operator"));
        assert!(find("SELECT CHARS(a) FROM t", &caps, "chars-function"));
        assert!(find("SELECT ZEROIFNULL(a) FROM t", &caps, "zeroifnull-function"));
        assert!(find("SELECT INDEX(a, 'x') FROM t", &caps, "index-function"));
        assert!(find("SELECT SUBSTR(a, 1, 2) FROM t", &caps, "substr-function"));
        assert!(find("SELECT a FROM t QUALIFY rn = 1", &caps, "qualify-clause"));
        assert!(find("SELECT a FROM t, u WHERE t.id = u.id", &caps, "implicit-join"));
        assert!(find("SELECT a FROM t GROUP BY 1", &caps, "ordinal-group-by"));
        assert!(find(
            "SELECT a FROM t WHERE d > DATE '2020-01-01' AND DATE '2020-01-01' = 20200101",
            &caps,
            "date-int-comparison"
        ));
        assert!(find(
            "SELECT a, b FROM t WHERE (a, b) > ANY (SELECT x, y FROM u)",
            &caps,
            "vector-subquery"
        ));
        assert!(find(
            "SELECT a FROM t GROUP BY GROUPING SETS ((a), ())",
            &caps,
            "grouping-sets"
        ));
        assert!(find("SELECT a FROM t GROUP BY ROLLUP (a)", &caps, "grouping-sets"));
        assert!(find("SELECT RANK(a DESC) FROM t", &caps, "td-window-syntax"));
        assert!(find(
            "WITH RECURSIVE r AS (SELECT 1) SELECT * FROM r",
            &caps,
            "recursive-cte"
        ));
        assert!(find("MERGE INTO t USING u ON t.id = u.id", &caps, "merge-statement"));
        assert!(find("HELP TABLE t", &caps, "help-command"));
        assert!(find(
            "CREATE GLOBAL TEMPORARY TABLE g (a INT)",
            &caps,
            "global-temp-table"
        ));
        assert!(find("CREATE SET TABLE t (a INT)", &caps, "set-table"));
        assert!(find(
            "CREATE TABLE t (a VARCHAR(3) CASESPECIFIC)",
            &caps,
            "column-properties"
        ));
        assert!(find("SELECT TOP 3 a FROM t", &caps, "top-clause"));
        assert!(find(
            "INSERT INTO t VALUES (1) RETURNING a",
            &caps,
            "returning-clause"
        ));
        assert!(find("BT", &caps, "transaction-shorthand"));
        assert!(find("EXPLAIN SELECT 1", &caps, "mid-tier-leak"));
        assert!(find("CREATE VIEW v AS SELECT 1", &caps, "mid-tier-leak"));
        assert!(find("EXEC report(3)", &caps, "macro-statement"));
        assert!(find("CALL p(1)", &caps, "stored-procedure"));
    }

    #[test]
    fn spellings_follow_target_styles() {
        // simwh spells modulo `%` and months ADD_MONTHS: both clean.
        let caps = simwh();
        assert!(lint_serialized("SELECT a % 2 FROM t", &caps).is_empty());
        assert!(lint_serialized("SELECT ADD_MONTHS(d, 3) FROM t", &caps).is_empty());
        // cloud_c spells modulo MOD() and months via intervals.
        let c = TargetCapabilities::cloud_c();
        assert!(find("SELECT a % 2 FROM t", &c, "mod-spelling"));
        assert!(find("SELECT ADD_MONTHS(d, 3) FROM t", &c, "add-months-function"));
        assert!(find("SELECT DATEADD(DAY, 3, d) FROM t", &simwh(), "date-arithmetic"));
        // LIMIT on a TOP-only target, and vice versa.
        let a = TargetCapabilities::cloud_a();
        assert!(find("SELECT a FROM t LIMIT 5", &a, "limit-clause"));
        assert!(lint_serialized("SELECT TOP 5 a FROM t", &a).is_empty());
        assert!(find(") AS d (x, y)", &a, "derived-table-column-aliases"));
    }

    #[test]
    fn reduced_profile_flags_grouping_sets_and_returning() {
        // cloud_d supports GROUPING SETS; remove it and the rule must fire
        // with correct attribution.
        let mut reduced = TargetCapabilities::cloud_d();
        assert!(lint_serialized(
            "SELECT a FROM t GROUP BY GROUPING SETS ((a), ())",
            &reduced
        )
        .is_empty());
        reduced.grouping_sets = false;
        let f = lint_serialized("SELECT a FROM t GROUP BY GROUPING SETS ((a), ())", &reduced);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "grouping-sets");
        assert_eq!(f[0].severity, Severity::Error);

        let mut no_ret = TargetCapabilities::cloud_b();
        assert!(lint_serialized("INSERT INTO t VALUES (1) RETURNING a", &no_ret).is_empty());
        no_ret.returning_clause = false;
        let f = lint_serialized("INSERT INTO t VALUES (1) RETURNING a", &no_ret);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "returning-clause");
    }

    #[test]
    fn spans_are_real_source_ranges() {
        let sql = "SELECT a FROM t QUALIFY rn = 1";
        for f in lint_serialized(sql, &simwh()) {
            assert!(f.span.0 < f.span.1);
            assert!(f.span.1 <= sql.len());
            assert_eq!(&sql[f.span.0..f.span.1], "QUALIFY");
        }
    }

    #[test]
    fn source_lints_are_advisory() {
        let mut fs = FeatureSet::new();
        fs.insert(Feature::Qualify);
        let findings = lint_source(
            "INSERT INTO t SELECT * FROM u WHERE d = CURRENT_DATE",
            &fs,
            false,
        );
        assert!(findings.iter().all(|f| f.severity < Severity::Error));
        assert!(findings.iter().any(|f| f.rule == "select-star-dml"));
        assert!(findings.iter().any(|f| f.rule == "implicit-transaction"));
        assert!(findings.iter().any(|f| f.rule == "non-portable"));
        // volatile-literal only fires on reads.
        let reads = lint_source("SELECT CURRENT_DATE", &FeatureSet::new(), false);
        assert!(reads.iter().any(|f| f.rule == "volatile-literal"));
    }
}
