//! The compiled-translation cache.
//!
//! The pipeline's per-request cost is the cross-compile itself (parse →
//! bind → transform → serialize); the BI workloads Hyper-Q fronts are
//! dominated by the *same* statement templates re-issued with different
//! literals. This module caches the post-transform serialized SQL-B keyed
//! on the statement's [fingerprint](hyperq_parser::fingerprint) plus a
//! translation-context hash (capabilities, analyze mode, session settings,
//! session-local catalog), so a repeated statement skips the entire
//! pipeline and only re-splices its literals.
//!
//! ## Safety model
//!
//! Literal splicing is only sound when the translation treats the literal
//! as opaque — rewrite rules may fold literals (e.g. date→integer
//! comparisons), merge them, or drop them. The cache therefore never
//! *assumes* splice-ability:
//!
//! 1. The first translation of a fingerprint is stored as an **exact**
//!    entry: it replays only for byte-identical literals.
//! 2. When the same fingerprint returns with *different* literals (so the
//!    exact entry missed), the fresh translation is used to build a
//!    **spliced template**: each source literal is matched to a literal
//!    token of the serialized SQL-B, in order. Literals that do not
//!    reappear verbatim stay **pinned** (the template only matches when
//!    they are byte-identical).
//! 3. The candidate template is **probe-verified**: the literals are
//!    perturbed (each hole gets an index-distinct value), the perturbed
//!    source is re-translated through the full pipeline, and the output is
//!    compared against the template's own splice. Any divergence — a
//!    value-dependent rule, a misassigned hole — fails the probe and the
//!    entry stays exact.
//!
//! Strict-analyze sessions additionally revalidate sampled hits against a
//! full re-translation (see `CacheConfig::revalidate_every`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use hyperq_obs::{Counter, Gauge, Histogram, ObsContext};
use hyperq_parser::fingerprint::{LiteralKind, LiteralSlot};
use hyperq_parser::lexer::tokenize;
use hyperq_parser::token::Token;
use hyperq_xtra::feature::FeatureSet;

/// Tuning knobs for a [`TranslationCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Upper bound on cached entries across all shards; least-recently
    /// used entries are evicted past it.
    pub max_entries: usize,
    /// Number of independently locked shards.
    pub shards: usize,
    /// In `Strict` analyze mode, every Nth hit of an entry is revalidated
    /// against a full re-translation; a mismatch invalidates the entry.
    pub revalidate_every: u64,
    /// Maximum exact (all-literals-pinned) variants kept per cache key.
    pub max_variants: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { max_entries: 1024, shards: 8, revalidate_every: 64, max_variants: 4 }
    }
}

/// Cache key: statement fingerprint × translation context.
///
/// `ctx` folds together everything besides the statement text that the
/// translation depends on: target capabilities, analyze mode, DML
/// batching, the session's settings epoch and its session-local (DTM)
/// catalog epoch. Two sessions with identical context share entries; a
/// `SET` or a session-local DDL moves the session to a different key
/// space without touching other sessions' entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub fingerprint: u64,
    pub ctx: u64,
}

/// The cached SQL-B shape.
#[derive(Debug, Clone)]
enum Template {
    /// Valid only for byte-identical literals.
    Exact { literals: Vec<String>, sql: String },
    /// `segments` interleaved with literal holes; `holes[i]` is the index
    /// into the statement's literal vector whose text fills hole `i`.
    /// `pinned` lists (literal index, required text) pairs that must match
    /// byte-identically for the template to apply.
    Spliced { pinned: Vec<(usize, String)>, segments: Vec<String>, holes: Vec<usize> },
}

/// One cached translation.
struct Entry {
    template: Template,
    features: FeatureSet,
    is_query: bool,
    /// Base names (uppercase, unqualified) of every table the translation
    /// resolved; [`TranslationCache::invalidate_table`] drops entries by
    /// these.
    tables: Vec<String>,
    hits: AtomicU64,
    last_used: AtomicU64,
}

/// A successful cache lookup: the ready-to-send SQL-B plus the metadata
/// the crosscompiler needs to finish the statement without a pipeline run.
pub struct CacheHit {
    pub sql: String,
    pub features: FeatureSet,
    pub is_query: bool,
    /// This entry's hit count (1-based) — drives strict-mode revalidation
    /// sampling.
    pub hit_seq: u64,
}

/// What the crosscompiler hands the cache after a slow-path translation.
pub struct CacheFill {
    pub sql: String,
    pub features: FeatureSet,
    pub is_query: bool,
    pub tables: Vec<String>,
}

struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    bypass: Arc<Counter>,
    evictions: Arc<Counter>,
    invalidations: Arc<Counter>,
    reval_ok: Arc<Counter>,
    reval_mismatch: Arc<Counter>,
    lookup: Arc<Histogram>,
    entries: Arc<Gauge>,
}

/// A sharded, LRU-bounded map from [`CacheKey`] to cached translations.
///
/// Shareable across sessions (the gateway holds one per listener): all
/// session-dependent state is folded into the key's `ctx` hash, and all
/// interior mutability is behind per-shard locks.
pub struct TranslationCache {
    shards: Vec<Mutex<HashMap<CacheKey, Vec<Arc<Entry>>>>>,
    config: CacheConfig,
    tick: AtomicU64,
    metrics: CacheMetrics,
}

impl TranslationCache {
    pub fn new(config: CacheConfig, obs: &ObsContext) -> Self {
        let shards = config.shards.max(1);
        let metrics = CacheMetrics {
            hits: obs.metrics.counter("hyperq_cache_hits_total", &[]),
            misses: obs.metrics.counter("hyperq_cache_misses_total", &[]),
            bypass: obs.metrics.counter("hyperq_cache_bypass_total", &[]),
            evictions: obs.metrics.counter("hyperq_cache_evictions_total", &[]),
            invalidations: obs.metrics.counter("hyperq_cache_invalidations_total", &[]),
            reval_ok: obs
                .metrics
                .counter("hyperq_cache_revalidations_total", &[("outcome", "ok")]),
            reval_mismatch: obs
                .metrics
                .counter("hyperq_cache_revalidations_total", &[("outcome", "mismatch")]),
            lookup: obs.metrics.histogram("hyperq_cache_lookup_seconds", &[]),
            entries: obs.metrics.gauge("hyperq_cache_entries", &[]),
        };
        TranslationCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            config,
            tick: AtomicU64::new(0),
            metrics,
        }
    }

    /// The revalidation sampling period (for the crosscompiler's
    /// strict-mode check).
    pub fn revalidate_every(&self) -> u64 {
        self.config.revalidate_every.max(1)
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Vec<Arc<Entry>>>> {
        let ix = (key.fingerprint ^ key.ctx) as usize % self.shards.len();
        &self.shards[ix]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Count a statement the caller decided not to cache.
    pub fn note_bypass(&self) {
        self.metrics.bypass.inc();
    }

    /// Count a strict-mode revalidation outcome.
    pub fn note_revalidation(&self, ok: bool) {
        if ok {
            self.metrics.reval_ok.inc();
        } else {
            self.metrics.reval_mismatch.inc();
        }
    }

    /// Look up a translation for `key` with the statement's current
    /// literals. `in_transaction` suppresses non-query entries: DML inside
    /// an open transaction must take the slow path (its replay semantics
    /// are owned by the pipeline, and the bypass is itself a metric).
    pub fn lookup(
        &self,
        key: &CacheKey,
        literals: &[LiteralSlot],
        in_transaction: bool,
    ) -> Option<CacheHit> {
        let t0 = Instant::now();
        let out = self.lookup_inner(key, literals, in_transaction);
        self.metrics.lookup.record(t0.elapsed());
        out
    }

    fn lookup_inner(
        &self,
        key: &CacheKey,
        literals: &[LiteralSlot],
        in_transaction: bool,
    ) -> Option<CacheHit> {
        let shard = self.shard(key).lock();
        let Some(entries) = shard.get(key) else {
            self.metrics.misses.inc();
            return None;
        };
        for entry in entries {
            let Some(sql) = render(&entry.template, literals) else { continue };
            if in_transaction && !entry.is_query {
                self.metrics.bypass.inc();
                return None;
            }
            entry.last_used.store(self.next_tick(), Ordering::Relaxed);
            let seq = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
            self.metrics.hits.inc();
            return Some(CacheHit {
                sql,
                features: entry.features.clone(),
                is_query: entry.is_query,
                hit_seq: seq,
            });
        }
        self.metrics.misses.inc();
        None
    }

    /// Store a slow-path translation. On the first occurrence of a key the
    /// entry is exact (replays only for identical literals); when an exact
    /// variant already exists for different literals, the fill is used to
    /// build a spliceable template, verified through `probe`: a closure
    /// that runs the *full* translation pipeline over a perturbed source
    /// text (returning `None` on any failure). Only a template whose
    /// probe output matches its own splice byte-for-byte is stored;
    /// otherwise the fill is kept as another exact variant (up to
    /// `max_variants`).
    pub fn populate(
        &self,
        key: CacheKey,
        source: &str,
        literals: &[LiteralSlot],
        fill: CacheFill,
        probe: impl Fn(&str) -> Option<String>,
    ) {
        let texts: Vec<String> = literals.iter().map(|l| l.text.clone()).collect();
        // Phase 1: decide under the lock, without running any pipeline.
        let try_upgrade = {
            let shard = self.shard(&key).lock();
            match shard.get(&key) {
                None => false,
                Some(entries) => {
                    if entries.iter().any(|e| covers(&e.template, &texts)) {
                        return; // raced: an equivalent entry landed already
                    }
                    // A fingerprint seen with two literal vectors is a
                    // template candidate.
                    entries
                        .iter()
                        .any(|e| matches!(e.template, Template::Exact { .. }))
                }
            }
        };

        let mut template = Template::Exact { literals: texts.clone(), sql: fill.sql.clone() };
        if try_upgrade {
            if let Some(candidate) = build_template(literals, &fill.sql) {
                if verify_template(&candidate, source, literals, &probe) {
                    template = candidate;
                }
            }
        }

        // Phase 2: insert under the lock, re-checking for races.
        let is_spliced = matches!(template, Template::Spliced { .. });
        let entry = Arc::new(Entry {
            template,
            features: fill.features,
            is_query: fill.is_query,
            tables: fill.tables,
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(self.next_tick()),
        });
        {
            let mut shard = self.shard(&key).lock();
            let entries = shard.entry(key).or_default();
            if entries.iter().any(|e| covers(&e.template, &texts)) {
                return;
            }
            if is_spliced {
                // One verified template subsumes the exact variants it
                // covers; drop them so lookups prefer the general form.
                let before = entries.len();
                entries.retain(|e| match &e.template {
                    Template::Exact { literals, .. } => !covers(&entry.template, literals),
                    Template::Spliced { .. } => true,
                });
                let dropped = before - entries.len();
                if dropped > 0 {
                    self.metrics.entries.sub(dropped as i64);
                }
                entries.insert(0, entry);
            } else {
                if entries.len() >= self.config.max_variants {
                    return; // key is literal-diverse but unspliceable; stop hoarding
                }
                entries.push(entry);
            }
            self.metrics.entries.add(1);
        }
        self.evict_if_needed();
    }

    /// Drop every entry whose translation resolved the given table (base
    /// name, case-insensitive). Called on backend-visible DDL.
    pub fn invalidate_table(&self, name: &str) {
        let base = base_name(name);
        let mut removed = 0i64;
        for shard in &self.shards {
            let mut map = shard.lock();
            map.retain(|_, entries| {
                entries.retain(|e| {
                    let stale = e.tables.iter().any(|t| t == &base);
                    if stale {
                        removed += 1;
                    }
                    !stale
                });
                !entries.is_empty()
            });
        }
        if removed > 0 {
            self.metrics.invalidations.add(removed as u64);
            self.metrics.entries.sub(removed);
        }
    }

    /// Drop all entries for one key (strict-mode revalidation mismatch).
    pub fn invalidate_key(&self, key: &CacheKey) {
        let mut map = self.shard(key).lock();
        if let Some(entries) = map.remove(key) {
            self.metrics.invalidations.add(entries.len() as u64);
            self.metrics.entries.sub(entries.len() as i64);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut removed = 0i64;
        for shard in &self.shards {
            let mut map = shard.lock();
            removed += map.values().map(|v| v.len() as i64).sum::<i64>();
            map.clear();
        }
        if removed > 0 {
            self.metrics.invalidations.add(removed as u64);
            self.metrics.entries.sub(removed);
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().values().map(Vec::len).sum::<usize>()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn evict_if_needed(&self) {
        if self.len() <= self.config.max_entries {
            return;
        }
        // Scan for the globally least-recently-used entries. O(n) on the
        // overflow path only; the bound is small and overflow is rare.
        let mut ticks: Vec<u64> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock();
            for entries in map.values() {
                for e in entries {
                    ticks.push(e.last_used.load(Ordering::Relaxed));
                }
            }
        }
        let excess = ticks.len().saturating_sub(self.config.max_entries);
        if excess == 0 {
            return;
        }
        ticks.sort_unstable();
        let cutoff = ticks[excess - 1];
        let mut removed = 0i64;
        for shard in &self.shards {
            let mut map = shard.lock();
            map.retain(|_, entries| {
                entries.retain(|e| {
                    let evict = e.last_used.load(Ordering::Relaxed) <= cutoff;
                    if evict {
                        removed += 1;
                    }
                    !evict
                });
                !entries.is_empty()
            });
        }
        if removed > 0 {
            self.metrics.evictions.add(removed as u64);
            self.metrics.entries.sub(removed);
        }
    }
}

fn base_name(name: &str) -> String {
    let upper = name.to_ascii_uppercase();
    upper.rsplit('.').next().unwrap_or(&upper).to_string()
}

/// A number literal may fill a splice hole only in its canonical integer
/// form: any other spelling (`1e2`, `007`, `1.50`) may be re-rendered
/// differently by the serializer than it appears in the source, so splicing
/// the source text would diverge from a full translation.
fn canonical_number(text: &str) -> bool {
    !text.is_empty()
        && text.bytes().all(|b| b.is_ascii_digit())
        && (text.len() == 1 || !text.starts_with('0'))
}

fn spliceable(slot: &LiteralSlot) -> bool {
    match slot.kind {
        LiteralKind::Number => canonical_number(&slot.text),
        LiteralKind::String => true,
    }
}

/// Render a template against the current literal texts; `None` when the
/// template does not apply (pinned mismatch, arity mismatch, or a hole
/// literal in a non-canonical spelling).
fn render(template: &Template, literals: &[LiteralSlot]) -> Option<String> {
    match template {
        Template::Exact { literals: pinned, sql } => {
            if pinned.len() == literals.len()
                && pinned.iter().zip(literals).all(|(p, l)| *p == l.text)
            {
                Some(sql.clone())
            } else {
                None
            }
        }
        Template::Spliced { pinned, segments, holes } => {
            let arity = pinned.len() + holes.len();
            if literals.len() != arity {
                return None;
            }
            for (ix, text) in pinned {
                if literals.get(*ix)?.text != *text {
                    return None;
                }
            }
            let mut out = String::new();
            for (i, seg) in segments.iter().enumerate() {
                out.push_str(seg);
                if let Some(&lit_ix) = holes.get(i) {
                    let slot = literals.get(lit_ix)?;
                    if !spliceable(slot) {
                        return None;
                    }
                    out.push_str(&slot.text);
                }
            }
            Some(out)
        }
    }
}

/// Would this template serve the given literal texts? (Race check during
/// population; uses text equality only, no splicing.)
fn covers(template: &Template, texts: &[String]) -> bool {
    match template {
        Template::Exact { literals, .. } => literals == texts,
        Template::Spliced { pinned, holes, .. } => {
            texts.len() == pinned.len() + holes.len()
                && pinned.iter().all(|(ix, t)| texts.get(*ix).is_some_and(|x| x == t))
                && holes.iter().all(|&ix| {
                    texts.get(ix).is_some_and(|t| {
                        canonical_number(t) || t.starts_with('\'')
                    })
                })
        }
    }
}

/// Match each source literal to a literal token of the serialized SQL-B,
/// in order (skip-forward). Unmatched source literals become pinned;
/// unmatched SQL-B literal tokens stay fixed text. Returns `None` when no
/// hole could be formed (an exact entry covers that case already) or the
/// SQL-B does not tokenize.
fn build_template(literals: &[LiteralSlot], sql_b: &str) -> Option<Template> {
    let tokens = tokenize(sql_b).ok()?;
    // (start, end, rendered text) of each literal token in SQL-B.
    let mut b_lits: Vec<(usize, usize, String)> = Vec::new();
    for sp in &tokens {
        match &sp.token {
            Token::Number(n) => b_lits.push((sp.offset, sp.offset + n.len(), n.clone())),
            Token::StringLit(s) => {
                let text = LiteralSlot::render_string(s);
                b_lits.push((sp.offset, sp.offset + text.len(), text));
            }
            _ => {}
        }
    }
    let mut pinned: Vec<(usize, String)> = Vec::new();
    // (sql_b literal token index, source literal index)
    let mut matched: Vec<(usize, usize)> = Vec::new();
    let mut cursor = 0usize;
    for (i, slot) in literals.iter().enumerate() {
        if !spliceable(slot) {
            pinned.push((i, slot.text.clone()));
            continue;
        }
        let found = (cursor..b_lits.len()).find(|&j| b_lits[j].2 == slot.text);
        match found {
            Some(j) => {
                matched.push((j, i));
                cursor = j + 1;
            }
            None => pinned.push((i, slot.text.clone())),
        }
    }
    if matched.is_empty() {
        return None;
    }
    let mut segments = Vec::with_capacity(matched.len() + 1);
    let mut holes = Vec::with_capacity(matched.len());
    let mut pos = 0usize;
    for &(j, i) in &matched {
        let (start, end, _) = b_lits[j];
        segments.push(sql_b[pos..start].to_string());
        holes.push(i);
        pos = end;
    }
    segments.push(sql_b[pos..].to_string());
    Some(Template::Spliced { pinned, segments, holes })
}

/// An index-distinct perturbation of a literal: still lexically valid,
/// still canonical, but different per hole index — so a hole matched to
/// the wrong source literal produces a probe mismatch instead of a false
/// verification.
fn perturb(slot: &LiteralSlot, idx: usize) -> String {
    match slot.kind {
        LiteralKind::Number => format!("{}{}7", slot.text, idx),
        LiteralKind::String => {
            let body = &slot.text[..slot.text.len().saturating_sub(1)];
            format!("{body}HQ{idx}'")
        }
    }
}

/// Verify a template candidate: perturb every hole literal, re-translate
/// the perturbed source through the full pipeline (`probe`), and compare
/// against the template's own splice of the perturbed literals.
fn verify_template(
    template: &Template,
    source: &str,
    literals: &[LiteralSlot],
    probe: &impl Fn(&str) -> Option<String>,
) -> bool {
    let Template::Spliced { holes, .. } = template else { return false };
    let replacements: Vec<String> = literals
        .iter()
        .enumerate()
        .map(|(i, slot)| {
            if holes.contains(&i) {
                perturb(slot, i)
            } else {
                slot.text.clone()
            }
        })
        .collect();
    let probe_source =
        hyperq_parser::fingerprint::splice_source(source, literals, &replacements);
    // Re-fingerprint the probe source so the spliced slots carry the
    // perturbed texts (shape must be unchanged for the comparison to mean
    // anything).
    let Ok(probe_fp) = hyperq_parser::fingerprint::fingerprint(&probe_source) else {
        return false;
    };
    if probe_fp.literals.len() != literals.len() {
        return false;
    }
    let Some(expected) = render(template, &probe_fp.literals) else { return false };
    match probe(&probe_source) {
        Some(actual) => actual == expected,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_parser::fingerprint::fingerprint;

    fn obs() -> Arc<ObsContext> {
        ObsContext::new()
    }

    fn key(fp: u64) -> CacheKey {
        CacheKey { fingerprint: fp, ctx: 1 }
    }

    fn fill(sql: &str, tables: &[&str]) -> CacheFill {
        CacheFill {
            sql: sql.to_string(),
            features: FeatureSet::new(),
            is_query: true,
            tables: tables.iter().map(std::string::ToString::to_string).collect(),
        }
    }

    /// A fake "pipeline" that lowercases keywords but passes literals
    /// through — splice-compatible by construction.
    fn echo_translate(src: &str) -> Option<String> {
        Some(src.replace("SELECT", "select").replace("FROM", "from").replace("WHERE", "where"))
    }

    #[test]
    fn first_occurrence_is_exact_second_upgrades_to_template() {
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        let a = "SELECT * FROM T WHERE X = 1";
        let fp_a = fingerprint(a).unwrap();
        let k = key(fp_a.hash);
        assert!(cache.lookup(&k, &fp_a.literals, false).is_none());
        cache.populate(k, a, &fp_a.literals, fill(&echo_translate(a).unwrap(), &["T"]), |s| {
            echo_translate(s)
        });
        // Same literals: exact hit.
        let hit = cache.lookup(&k, &fp_a.literals, false).expect("exact hit");
        assert_eq!(hit.sql, "select * from T where X = 1");

        // Different literal: miss, then populate upgrades to a template.
        let b = "SELECT * FROM T WHERE X = 2";
        let fp_b = fingerprint(b).unwrap();
        assert_eq!(fp_a.hash, fp_b.hash);
        assert!(cache.lookup(&k, &fp_b.literals, false).is_none());
        cache.populate(k, b, &fp_b.literals, fill(&echo_translate(b).unwrap(), &["T"]), |s| {
            echo_translate(s)
        });
        // Any further literal now hits by splicing.
        let c = "SELECT * FROM T WHERE X = 31337";
        let fp_c = fingerprint(c).unwrap();
        let hit = cache.lookup(&k, &fp_c.literals, false).expect("spliced hit");
        assert_eq!(hit.sql, "select * from T where X = 31337");
    }

    #[test]
    fn probe_failure_keeps_entries_exact() {
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        // A value-dependent "pipeline": doubles the numeric literal, so
        // splicing the source literal would be wrong.
        let folding = |src: &str| -> Option<String> {
            let fp = fingerprint(src).ok()?;
            let n: i64 = fp.literals.first()?.text.parse().ok()?;
            Some(format!("SELECT * FROM T WHERE X2 = {}", n * 2))
        };
        let a = "SELECT * FROM T WHERE X = 1";
        let b = "SELECT * FROM T WHERE X = 2";
        let fp_a = fingerprint(a).unwrap();
        let fp_b = fingerprint(b).unwrap();
        let k = key(fp_a.hash);
        cache.populate(k, a, &fp_a.literals, fill(&folding(a).unwrap(), &["T"]), folding);
        cache.populate(k, b, &fp_b.literals, fill(&folding(b).unwrap(), &["T"]), folding);
        // Exact replays still work...
        assert_eq!(
            cache.lookup(&k, &fp_a.literals, false).unwrap().sql,
            "SELECT * FROM T WHERE X2 = 2"
        );
        assert_eq!(
            cache.lookup(&k, &fp_b.literals, false).unwrap().sql,
            "SELECT * FROM T WHERE X2 = 4"
        );
        // ...but an unseen literal misses instead of mis-splicing.
        let c = "SELECT * FROM T WHERE X = 9";
        let fp_c = fingerprint(c).unwrap();
        assert!(cache.lookup(&k, &fp_c.literals, false).is_none());
    }

    #[test]
    fn non_canonical_numbers_never_splice() {
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        let a = "SELECT * FROM T WHERE X = 1";
        let b = "SELECT * FROM T WHERE X = 2";
        let fp_a = fingerprint(a).unwrap();
        let fp_b = fingerprint(b).unwrap();
        let k = key(fp_a.hash);
        cache.populate(k, a, &fp_a.literals, fill(&echo_translate(a).unwrap(), &["T"]), |s| {
            echo_translate(s)
        });
        cache.populate(k, b, &fp_b.literals, fill(&echo_translate(b).unwrap(), &["T"]), |s| {
            echo_translate(s)
        });
        // `1e2` shares the fingerprint but is not canonical: must miss.
        let c = "SELECT * FROM T WHERE X = 1e2";
        let fp_c = fingerprint(c).unwrap();
        assert_eq!(fp_a.hash, fp_c.hash);
        assert!(cache.lookup(&k, &fp_c.literals, false).is_none());
    }

    #[test]
    fn invalidate_table_drops_matching_entries_by_base_name() {
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        let a = "SELECT * FROM T WHERE X = 1";
        let b = "SELECT * FROM R WHERE X = 1";
        let fp_a = fingerprint(a).unwrap();
        let fp_b = fingerprint(b).unwrap();
        cache.populate(key(fp_a.hash), a, &fp_a.literals, fill("sa", &["T"]), |_| None);
        cache.populate(key(fp_b.hash), b, &fp_b.literals, fill("sb", &["R"]), |_| None);
        assert_eq!(cache.len(), 2);
        cache.invalidate_table("db.t");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&key(fp_a.hash), &fp_a.literals, false).is_none());
        assert!(cache.lookup(&key(fp_b.hash), &fp_b.literals, false).is_some());
    }

    #[test]
    fn in_transaction_suppresses_non_query_entries() {
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        let a = "INSERT INTO T VALUES (1)";
        let fp = fingerprint(a).unwrap();
        let k = key(fp.hash);
        let mut f = fill("insert into t values (1)", &["T"]);
        f.is_query = false;
        cache.populate(k, a, &fp.literals, f, |_| None);
        assert!(cache.lookup(&k, &fp.literals, true).is_none());
        assert!(cache.lookup(&k, &fp.literals, false).is_some());
    }

    #[test]
    fn lru_eviction_bounds_entries() {
        let obs = obs();
        let cfg = CacheConfig { max_entries: 8, shards: 2, ..CacheConfig::default() };
        let cache = TranslationCache::new(cfg, &obs);
        for i in 0..32 {
            let sql = format!("SELECT C{i} FROM T");
            let fp = fingerprint(&sql).unwrap();
            cache.populate(key(fp.hash), &sql, &fp.literals, fill(&sql, &["T"]), |_| None);
        }
        assert!(cache.len() <= 8, "len {} exceeds bound", cache.len());
        // The newest entry survived.
        let last = "SELECT C31 FROM T";
        let fp = fingerprint(last).unwrap();
        assert!(cache.lookup(&key(fp.hash), &fp.literals, false).is_some());
    }

    #[test]
    fn variant_cap_limits_unspliceable_keys() {
        let obs = obs();
        let cfg = CacheConfig { max_variants: 2, ..CacheConfig::default() };
        let cache = TranslationCache::new(cfg, &obs);
        // Probe always fails → every fill stays exact.
        for i in 1..10 {
            let sql = format!("SELECT * FROM T WHERE X = {i}");
            let fp = fingerprint(&sql).unwrap();
            cache.populate(key(fp.hash), &sql, &fp.literals, fill(&sql, &["T"]), |_| None);
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn probe_catches_crossed_holes() {
        // A pipeline that swaps its two literals: positional matching
        // would pair source literal 0 with output literal 0 (which really
        // came from source literal 1). Index-distinct perturbation makes
        // the probe output differ from the template splice.
        let swapping = |src: &str| -> Option<String> {
            let fp = fingerprint(src).ok()?;
            if fp.literals.len() != 2 {
                return None;
            }
            Some(format!(
                "SELECT * FROM T WHERE A = {} AND B = {}",
                fp.literals[1].text, fp.literals[0].text
            ))
        };
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        let a = "SELECT * FROM T WHERE A = 7 AND B = 7";
        let b = "SELECT * FROM T WHERE A = 8 AND B = 8";
        let fp_a = fingerprint(a).unwrap();
        let fp_b = fingerprint(b).unwrap();
        let k = key(fp_a.hash);
        cache.populate(k, a, &fp_a.literals, fill(&swapping(a).unwrap(), &["T"]), swapping);
        cache.populate(k, b, &fp_b.literals, fill(&swapping(b).unwrap(), &["T"]), swapping);
        // With identical literal values the swap is invisible — the probe
        // must still detect it and refuse the template, because a future
        // statement with *distinct* values would be mis-spliced.
        let c = "SELECT * FROM T WHERE A = 1 AND B = 2";
        let fp_c = fingerprint(c).unwrap();
        assert!(cache.lookup(&k, &fp_c.literals, false).is_none());
    }

    #[test]
    fn string_literals_splice_with_escapes() {
        let obs = obs();
        let cache = TranslationCache::new(CacheConfig::default(), &obs);
        let a = "SELECT * FROM T WHERE R = 'WEST'";
        let b = "SELECT * FROM T WHERE R = 'EAST'";
        let fp_a = fingerprint(a).unwrap();
        let fp_b = fingerprint(b).unwrap();
        let k = key(fp_a.hash);
        cache.populate(k, a, &fp_a.literals, fill(&echo_translate(a).unwrap(), &["T"]), |s| {
            echo_translate(s)
        });
        cache.populate(k, b, &fp_b.literals, fill(&echo_translate(b).unwrap(), &["T"]), |s| {
            echo_translate(s)
        });
        let c = "SELECT * FROM T WHERE R = 'o''brien'";
        let fp_c = fingerprint(c).unwrap();
        let hit = cache.lookup(&k, &fp_c.literals, false).expect("escaped string splices");
        assert_eq!(hit.sql, "select * from T where R = 'o''brien'");
    }
}
