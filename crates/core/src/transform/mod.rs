//! The Transformer (§4.3): pluggable rewrite rules cascaded to a fixed
//! point.
//!
//! "The Transformer takes care of running all relevant transformations
//! repeatedly until reaching a fixed point, where no further modifications
//! to the XTRA expression via transformation is possible."
//!
//! Rules are split into two phases, following §5:
//!
//! * **Binding** — target-agnostic normalization, applied as early as
//!   possible ("applying this rewrite as early as possible is important to
//!   create a normalized representation", §5.2). Example: the
//!   `comp_date_to_int` expansion.
//! * **Serialization** — target-specific, "designed to match the
//!   capabilities of a particular target database system and hence …
//!   triggered right before serialization" (§5.3). Example: the vector
//!   subquery → correlated EXISTS rewrite. Each rule consults the target's
//!   [`TargetCapabilities`] and does not fire when the target supports the
//!   construct natively.

mod rules;

use std::sync::Arc;

use hyperq_obs::{Counter, MetricsRegistry};
use hyperq_xtra::expr::ScalarExpr;
use hyperq_xtra::feature::FeatureSet;
use hyperq_xtra::rel::{Plan, RelExpr};

use crate::capability::TargetCapabilities;
use crate::error::{HyperQError, Result};

pub use rules::standard_rules;

/// When a rule runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Target-agnostic, right after binding.
    Binding,
    /// Target-specific, right before serialization.
    Serialization,
}

/// A pluggable transformation (paper: "the transformations are plug-able
/// components that could be shared across different databases and
/// application requests").
pub trait TransformRule: Send + Sync {
    fn name(&self) -> &'static str;

    /// The tracked feature this rule rewrites, if any (Figure 8
    /// instrumentation).
    fn tracked_feature(&self) -> Option<hyperq_xtra::feature::Feature> {
        None
    }

    fn phase(&self) -> Phase;

    /// Serialization-phase rules return `false` when the target natively
    /// supports the construct, so the rewrite is not triggered (§5.3).
    fn enabled_for(&self, caps: &TargetCapabilities) -> bool {
        let _ = caps;
        true
    }

    /// Rewrite one expression node (children already rewritten). Return
    /// `(expr, true)` when a change was made.
    fn rewrite_expr(&self, expr: ScalarExpr) -> (ScalarExpr, bool) {
        (expr, false)
    }

    /// Rewrite one relational node (children already rewritten).
    fn rewrite_rel(&self, rel: RelExpr) -> (RelExpr, bool) {
        (rel, false)
    }
}

/// The rule engine. Holds the rule registry and drives passes to a fixed
/// point.
pub struct Transformer {
    rules: Vec<Box<dyn TransformRule>>,
    /// Safety bound on fixed-point iterations.
    max_passes: usize,
    /// When true (the default), exhausting `max_passes` while still
    /// changing is an error (a cyclic rule is a bug). Ablation
    /// configurations relax this to observe bounded-pass behavior.
    strict: bool,
    /// Per-rule (fired, noop) counters aligned with `rules`; populated by
    /// [`Transformer::instrumented`], otherwise empty and free.
    rule_counters: Vec<Option<(Arc<Counter>, Arc<Counter>)>>,
}

impl Default for Transformer {
    fn default() -> Self {
        Self::standard()
    }
}

impl Transformer {
    /// The standard rule set (Table 2).
    pub fn standard() -> Self {
        Self::with_rules(standard_rules())
    }

    /// A transformer with a custom rule set (tests, ablations).
    pub fn with_rules(rules: Vec<Box<dyn TransformRule>>) -> Self {
        let rule_counters = rules.iter().map(|_| None).collect();
        Transformer { rules, max_passes: 32, strict: true, rule_counters }
    }

    /// Report per-rule activity into `metrics`: each `run` flushes one
    /// `hyperq_transform_rule_total{rule,outcome=fired|noop}` observation
    /// per active rule — `fired` counts node rewrites, `noop` counts runs
    /// where the rule was consulted but matched nothing.
    pub fn instrumented(mut self, metrics: &MetricsRegistry) -> Self {
        self.rule_counters = self
            .rules
            .iter()
            .map(|r| {
                let counter = |outcome| {
                    metrics.counter(
                        "hyperq_transform_rule_total",
                        &[("rule", r.name()), ("outcome", outcome)],
                    )
                };
                Some((counter("fired"), counter("noop")))
            })
            .collect();
        self
    }

    /// Cap the fixed-point iteration count (ablation: a cap of 1 models a
    /// single-pass rewriter that never re-scans after a change).
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes.max(1);
        self.strict = false;
        self
    }

    /// Run one phase over a plan until fixed point. `fired` accumulates the
    /// tracked features of rules that actually changed something.
    pub fn run(
        &self,
        mut plan: Plan,
        phase: Phase,
        caps: &TargetCapabilities,
        fired: &mut FeatureSet,
    ) -> Result<Plan> {
        let active: Vec<(usize, &dyn TransformRule)> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.phase() == phase && r.enabled_for(caps))
            .map(|(i, r)| (i, r.as_ref()))
            .collect();
        if active.is_empty() {
            return Ok(plan);
        }
        // Node-level rewrite counts per active rule, accumulated across
        // passes and flushed to the rule counters on exit.
        let mut fires = vec![0u64; active.len()];
        for _pass in 0..self.max_passes {
            // Cooperative cancellation between fixed-point passes: a
            // pathological rule cascade must not outlive the statement's
            // deadline or a client abort.
            hyperq_governor::checkpoint()?;
            // Both rewrite closures need shared access to the pass state,
            // so it lives in cells.
            let changed = std::cell::Cell::new(false);
            let pass_fired = std::cell::RefCell::new(FeatureSet::new());
            let pass_fires = std::cell::RefCell::new(vec![0u64; active.len()]);
            plan = plan.rewrite(
                &mut |mut rel| {
                    for (slot, (_, rule)) in active.iter().enumerate() {
                        let (next, did) = rule.rewrite_rel(rel);
                        rel = next;
                        if did {
                            changed.set(true);
                            pass_fires.borrow_mut()[slot] += 1;
                            if let Some(f) = rule.tracked_feature() {
                                pass_fired.borrow_mut().insert(f);
                            }
                        }
                    }
                    rel
                },
                &mut |mut expr| {
                    for (slot, (_, rule)) in active.iter().enumerate() {
                        let (next, did) = rule.rewrite_expr(expr);
                        expr = next;
                        if did {
                            changed.set(true);
                            pass_fires.borrow_mut()[slot] += 1;
                            if let Some(f) = rule.tracked_feature() {
                                pass_fired.borrow_mut().insert(f);
                            }
                        }
                    }
                    expr
                },
            );
            fired.union(&pass_fired.into_inner());
            for (slot, n) in pass_fires.into_inner().into_iter().enumerate() {
                fires[slot] += n;
            }
            if !changed.get() {
                self.flush_rule_counters(&active, &fires);
                return Ok(plan);
            }
        }
        if self.strict {
            Err(HyperQError::Transform(format!(
                "transformation did not reach a fixed point within {} passes",
                self.max_passes
            )))
        } else {
            self.flush_rule_counters(&active, &fires);
            Ok(plan)
        }
    }

    fn flush_rule_counters(&self, active: &[(usize, &dyn TransformRule)], fires: &[u64]) {
        for (slot, &(idx, rule)) in active.iter().enumerate() {
            if let Some((fired, noop)) = &self.rule_counters[idx] {
                if fires[slot] > 0 {
                    fired.add(fires[slot]);
                    // Probe translations run an uninstrumented transformer
                    // (no counters), so this branch naturally excludes them
                    // from the statement's provenance trail too.
                    hyperq_obs::provenance::note_rule(rule.name(), fires[slot]);
                } else {
                    noop.inc();
                }
            }
        }
    }

    /// Convenience: run both phases in order.
    pub fn run_all(
        &self,
        plan: Plan,
        caps: &TargetCapabilities,
        fired: &mut FeatureSet,
    ) -> Result<Plan> {
        let plan = self.run(plan, Phase::Binding, caps, fired)?;
        self.run(plan, Phase::Serialization, caps, fired)
    }

    /// Like [`Transformer::run`], but applies rules one at a time — a full
    /// tree pass per rule — and calls `audit` after every application that
    /// changed the tree, so a broken rewrite is attributed to the rule by
    /// name. An `Err` from the hook aborts the run (strict auditing);
    /// exceeding the convergence budget names the rules still firing.
    pub fn run_audited(
        &self,
        mut plan: Plan,
        phase: Phase,
        caps: &TargetCapabilities,
        fired: &mut FeatureSet,
        audit: &mut dyn FnMut(&'static str, &Plan) -> Result<()>,
    ) -> Result<Plan> {
        let active: Vec<(usize, &dyn TransformRule)> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.phase() == phase && r.enabled_for(caps))
            .map(|(i, r)| (i, r.as_ref()))
            .collect();
        if active.is_empty() {
            return Ok(plan);
        }
        let mut fires = vec![0u64; active.len()];
        let mut last_changed: Vec<&'static str> = Vec::new();
        for _pass in 0..self.max_passes {
            hyperq_governor::checkpoint()?;
            last_changed.clear();
            for (slot, (_, rule)) in active.iter().enumerate() {
                let rewrites = std::cell::Cell::new(0u64);
                plan = plan.rewrite(
                    &mut |rel| {
                        let (next, did) = rule.rewrite_rel(rel);
                        if did {
                            rewrites.set(rewrites.get() + 1);
                        }
                        next
                    },
                    &mut |expr| {
                        let (next, did) = rule.rewrite_expr(expr);
                        if did {
                            rewrites.set(rewrites.get() + 1);
                        }
                        next
                    },
                );
                if rewrites.get() > 0 {
                    fires[slot] += rewrites.get();
                    if let Some(f) = rule.tracked_feature() {
                        fired.insert(f);
                    }
                    last_changed.push(rule.name());
                    audit(rule.name(), &plan)?;
                }
            }
            if last_changed.is_empty() {
                self.flush_rule_counters(&active, &fires);
                return Ok(plan);
            }
        }
        if self.strict {
            Err(HyperQError::Transform(format!(
                "transformation did not reach a fixed point within {} passes \
                 (rules still firing: {})",
                self.max_passes,
                last_changed.join(", ")
            )))
        } else {
            self.flush_rule_counters(&active, &fires);
            Ok(plan)
        }
    }

    /// Audited variant of [`Transformer::run_all`].
    pub fn run_all_audited(
        &self,
        plan: Plan,
        caps: &TargetCapabilities,
        fired: &mut FeatureSet,
        audit: &mut dyn FnMut(&'static str, &Plan) -> Result<()>,
    ) -> Result<Plan> {
        let plan = self.run_audited(plan, Phase::Binding, caps, fired, audit)?;
        self.run_audited(plan, Phase::Serialization, caps, fired, audit)
    }
}
