//! The standard transformation rules (Table 2).

use hyperq_xtra::datum::{teradata_int_from_date, Datum};
use hyperq_xtra::expr::{
    ArithOp, CmpOp, Quantifier, ScalarExpr, SortExpr, WindowExpr, WindowFuncKind,
};
use hyperq_xtra::feature::Feature;
use hyperq_xtra::rel::{Grouping, RelExpr, SetOpKind};
use hyperq_xtra::types::SqlType;

use super::{Phase, TransformRule};
use crate::capability::TargetCapabilities;

/// The full standard rule registry.
pub fn standard_rules() -> Vec<Box<dyn TransformRule>> {
    vec![
        Box::new(DateIntComparison),
        Box::new(VectorSubqueryToExists),
        Box::new(ExpandGroupingSets),
        Box::new(DateArithToFunction),
        Box::new(LowerWithTies),
        Box::new(ExplicitNullOrdering),
    ]
}

// ---------------------------------------------------------------------------
// comp_date_to_int (X5) — binding phase
// ---------------------------------------------------------------------------

/// Expands the DATE side of a DATE–INTEGER comparison into the arithmetic
/// expression `DAY + MONTH*100 + (YEAR-1900)*10000` — the paper's
/// `comp_date_to_int` transformation module (§5.2, Figure 5).
pub struct DateIntComparison;

/// Build the integer-encoding expansion of a date expression.
fn date_to_int_expr(e: ScalarExpr) -> ScalarExpr {
    // Constant dates fold directly to the Teradata integer encoding.
    if let ScalarExpr::Literal(Datum::Date(d), _) = &e {
        return ScalarExpr::Literal(Datum::Int(teradata_int_from_date(*d)), SqlType::Integer);
    }
    let day = ScalarExpr::Extract {
        field: hyperq_xtra::expr::DateField::Day,
        expr: Box::new(e.clone()),
    };
    let month = ScalarExpr::Extract {
        field: hyperq_xtra::expr::DateField::Month,
        expr: Box::new(e.clone()),
    };
    let year = ScalarExpr::Extract {
        field: hyperq_xtra::expr::DateField::Year,
        expr: Box::new(e),
    };
    // DAY + (MONTH * 100) + (YEAR - 1900) * 10000
    ScalarExpr::arith(
        ArithOp::Add,
        ScalarExpr::arith(
            ArithOp::Add,
            day,
            ScalarExpr::arith(ArithOp::Mul, month, ScalarExpr::int(100)),
        ),
        ScalarExpr::arith(
            ArithOp::Mul,
            ScalarExpr::arith(ArithOp::Sub, year, ScalarExpr::int(1900)),
            ScalarExpr::int(10_000),
        ),
    )
}

impl TransformRule for DateIntComparison {
    fn name(&self) -> &'static str {
        "comp_date_to_int"
    }

    fn tracked_feature(&self) -> Option<Feature> {
        Some(Feature::DateIntComparison)
    }

    fn phase(&self) -> Phase {
        // "Binding is an appropriate stage for such transformations since it
        // does not require knowledge of the target database system" (§5.2).
        Phase::Binding
    }

    fn rewrite_expr(&self, expr: ScalarExpr) -> (ScalarExpr, bool) {
        if let ScalarExpr::Cmp { op, left, right } = &expr {
            let (lt, rt) = (left.ty(), right.ty());
            if lt == SqlType::Date && rt == SqlType::Integer {
                return (
                    ScalarExpr::cmp(*op, date_to_int_expr((**left).clone()), (**right).clone()),
                    true,
                );
            }
            if lt == SqlType::Integer && rt == SqlType::Date {
                return (
                    ScalarExpr::cmp(*op, (**left).clone(), date_to_int_expr((**right).clone())),
                    true,
                );
            }
        }
        (expr, false)
    }
}

// ---------------------------------------------------------------------------
// Vector subquery → correlated EXISTS (X7) — serialization phase
// ---------------------------------------------------------------------------

/// Replaces a quantified *vector* comparison with a semantically equivalent
/// existential correlated subquery (§5.3, Figures 6–7).
pub struct VectorSubqueryToExists;

/// Lexicographic row comparison `left (op) right`, the semantics spelled
/// out in the paper: `(a1, a2) > (b1, b2) ⇔ a1 > b1 ∨ (a1 = b1 ∧ a2 > b2)`.
fn row_cmp(op: CmpOp, left: &[ScalarExpr], right: &[ScalarExpr]) -> ScalarExpr {
    let eq_prefix = |k: usize| -> Vec<ScalarExpr> {
        (0..k)
            .map(|j| ScalarExpr::cmp(CmpOp::Eq, left[j].clone(), right[j].clone()))
            .collect()
    };
    match op {
        CmpOp::Eq => ScalarExpr::and(eq_prefix(left.len())),
        CmpOp::Ne => ScalarExpr::or(
            (0..left.len())
                .map(|i| ScalarExpr::cmp(CmpOp::Ne, left[i].clone(), right[i].clone()))
                .collect(),
        ),
        CmpOp::Gt | CmpOp::Lt | CmpOp::Ge | CmpOp::Le => {
            let strict = match op {
                CmpOp::Gt | CmpOp::Ge => CmpOp::Gt,
                _ => CmpOp::Lt,
            };
            let mut alternatives = Vec::with_capacity(left.len() + 1);
            for i in 0..left.len() {
                let mut conj = eq_prefix(i);
                conj.push(ScalarExpr::cmp(strict, left[i].clone(), right[i].clone()));
                alternatives.push(ScalarExpr::and(conj));
            }
            if matches!(op, CmpOp::Ge | CmpOp::Le) {
                alternatives.push(ScalarExpr::and(eq_prefix(left.len())));
            }
            ScalarExpr::or(alternatives)
        }
    }
}

impl TransformRule for VectorSubqueryToExists {
    fn name(&self) -> &'static str {
        "vector_subquery_to_exists"
    }

    fn tracked_feature(&self) -> Option<Feature> {
        Some(Feature::VectorSubquery)
    }

    fn phase(&self) -> Phase {
        // "It is designed to match the capabilities of a particular target
        // database system and hence it needs to be triggered right before
        // serialization" (§5.3).
        Phase::Serialization
    }

    fn enabled_for(&self, caps: &TargetCapabilities) -> bool {
        !caps.vector_subquery
    }

    fn rewrite_expr(&self, expr: ScalarExpr) -> (ScalarExpr, bool) {
        let (left, op, quantifier, subquery) = match expr {
            ScalarExpr::QuantifiedCmp { left, op, quantifier, subquery } if left.len() > 1 => {
                (left, op, quantifier, subquery)
            }
            other => return (other, false),
        };
        let fields = subquery.schema().fields;
        let right: Vec<ScalarExpr> = fields
            .iter()
            .map(|f| ScalarExpr::Column {
                qualifier: f.qualifier.clone(),
                name: f.name.clone(),
                ty: f.ty.clone(),
            })
            .collect();
        let (predicate, negated) = match quantifier {
            Quantifier::Any => (row_cmp(op, &left, &right), false),
            // x op ALL S  ⇔  NOT EXISTS (s ∈ S : NOT (x op s)).
            Quantifier::All => (
                ScalarExpr::Not(Box::new(row_cmp(op, &left, &right))),
                true,
            ),
        };
        // SELECT 1 FROM (sub) WHERE pred — the paper's "remap consts: (1)".
        let filtered = RelExpr::Select { input: subquery, predicate };
        let one = RelExpr::Project {
            input: Box::new(filtered),
            exprs: vec![(ScalarExpr::int(1), "ONE".to_string())],
        };
        (
            ScalarExpr::Exists { subquery: Box::new(one), negated },
            true,
        )
    }
}

// ---------------------------------------------------------------------------
// OLAP grouping extensions (X8) — serialization phase
// ---------------------------------------------------------------------------

/// Expands `ROLLUP`/`CUBE`/`GROUPING SETS` into a `UNION ALL` over simple
/// `GROUP BY`s (Table 2).
pub struct ExpandGroupingSets;

impl TransformRule for ExpandGroupingSets {
    fn name(&self) -> &'static str {
        "expand_grouping_sets"
    }

    fn tracked_feature(&self) -> Option<Feature> {
        Some(Feature::GroupingExtensions)
    }

    fn phase(&self) -> Phase {
        Phase::Serialization
    }

    fn enabled_for(&self, caps: &TargetCapabilities) -> bool {
        !caps.grouping_sets
    }

    fn rewrite_rel(&self, rel: RelExpr) -> (RelExpr, bool) {
        let (input, group_by, sets, aggs) = match rel {
            RelExpr::Aggregate { input, group_by, grouping: Grouping::Sets(sets), aggs } => {
                (input, group_by, sets, aggs)
            }
            other => return (other, false),
        };
        let mut branches: Vec<RelExpr> = Vec::with_capacity(sets.len());
        for set in &sets {
            let branch_groups: Vec<(ScalarExpr, String)> = set
                .iter()
                .map(|&i| group_by[i].clone())
                .collect();
            let agg = RelExpr::Aggregate {
                input: input.clone(),
                group_by: branch_groups,
                grouping: Grouping::Simple,
                aggs: aggs.clone(),
            };
            // Align every branch to the full output shape: excluded keys
            // become NULL literals.
            let exprs: Vec<(ScalarExpr, String)> = group_by
                .iter()
                .enumerate()
                .map(|(i, (g, name))| {
                    if set.contains(&i) {
                        (
                            ScalarExpr::Column {
                                qualifier: None,
                                name: name.clone(),
                                ty: g.ty(),
                            },
                            name.clone(),
                        )
                    } else {
                        (ScalarExpr::Literal(Datum::Null, g.ty()), name.clone())
                    }
                })
                .chain(aggs.iter().map(|(a, name)| {
                    (
                        ScalarExpr::Column { qualifier: None, name: name.clone(), ty: a.ty() },
                        name.clone(),
                    )
                }))
                .collect();
            branches.push(RelExpr::Project { input: Box::new(agg), exprs });
        }
        let union = branches
            .into_iter()
            .reduce(|l, r| RelExpr::SetOp {
                kind: SetOpKind::Union,
                all: true,
                left: Box::new(l),
                right: Box::new(r),
            })
            .expect("grouping sets are never empty");
        (union, true)
    }
}

// ---------------------------------------------------------------------------
// Date arithmetic (X6) — serialization phase
// ---------------------------------------------------------------------------

/// Rewrites Teradata `date ± n` arithmetic into an explicit date-add
/// function for targets without native date/integer arithmetic (Table 2,
/// "Date arithmetics": "replace by DATEADD function").
pub struct DateArithToFunction;

impl TransformRule for DateArithToFunction {
    fn name(&self) -> &'static str {
        "date_arith_to_function"
    }

    fn tracked_feature(&self) -> Option<Feature> {
        Some(Feature::DateArithmetic)
    }

    fn phase(&self) -> Phase {
        Phase::Serialization
    }

    fn enabled_for(&self, caps: &TargetCapabilities) -> bool {
        !caps.date_arithmetic
    }

    fn rewrite_expr(&self, expr: ScalarExpr) -> (ScalarExpr, bool) {
        use hyperq_xtra::expr::ScalarFunc;
        if let ScalarExpr::Arith { op, left, right } = &expr {
            let (lt, rt) = (left.ty(), right.ty());
            match (op, &lt, &rt) {
                (ArithOp::Add, SqlType::Date, SqlType::Integer) => {
                    return (
                        ScalarExpr::Func {
                            func: ScalarFunc::DateAddDays,
                            args: vec![(**left).clone(), (**right).clone()],
                        },
                        true,
                    )
                }
                (ArithOp::Add, SqlType::Integer, SqlType::Date) => {
                    return (
                        ScalarExpr::Func {
                            func: ScalarFunc::DateAddDays,
                            args: vec![(**right).clone(), (**left).clone()],
                        },
                        true,
                    )
                }
                (ArithOp::Sub, SqlType::Date, SqlType::Integer) => {
                    return (
                        ScalarExpr::Func {
                            func: ScalarFunc::DateAddDays,
                            args: vec![
                                (**left).clone(),
                                ScalarExpr::Neg(Box::new((**right).clone())),
                            ],
                        },
                        true,
                    )
                }
                _ => {}
            }
        }
        (expr, false)
    }
}

// ---------------------------------------------------------------------------
// TOP n WITH TIES lowering — serialization phase
// ---------------------------------------------------------------------------

/// Lowers tie-preserving limits (`TOP n WITH TIES`, and `QUALIFY
/// RANK() <= n` lowered to a limit) into a RANK window + filter for targets
/// without `WITH TIES`.
pub struct LowerWithTies;

impl TransformRule for LowerWithTies {
    fn name(&self) -> &'static str {
        "lower_with_ties"
    }

    fn phase(&self) -> Phase {
        Phase::Serialization
    }

    fn enabled_for(&self, caps: &TargetCapabilities) -> bool {
        !caps.with_ties
    }

    fn rewrite_rel(&self, rel: RelExpr) -> (RelExpr, bool) {
        let (input, limit, offset) = match rel {
            RelExpr::Limit { input, limit: Some(n), offset, with_ties: true } => {
                (input, n, offset)
            }
            other => return (other, false),
        };
        match *input {
            RelExpr::Sort { input: inner, keys } => {
                let visible = inner.schema();
                let w = WindowExpr {
                    func: WindowFuncKind::Rank,
                    arg: None,
                    partition_by: Vec::new(),
                    order_by: keys.clone(),
                    output: "__TIES_RANK".to_string(),
                };
                let win = RelExpr::Window { input: inner, exprs: vec![w] };
                let sel = RelExpr::Select {
                    input: Box::new(win),
                    predicate: ScalarExpr::cmp(
                        CmpOp::Le,
                        ScalarExpr::Column {
                            qualifier: None,
                            name: "__TIES_RANK".to_string(),
                            ty: SqlType::Integer,
                        },
                        ScalarExpr::int(limit as i64),
                    ),
                };
                let sort = RelExpr::Sort { input: Box::new(sel), keys };
                let proj = RelExpr::Project {
                    input: Box::new(sort),
                    exprs: visible
                        .fields
                        .iter()
                        .map(|f| {
                            (
                                ScalarExpr::Column {
                                    qualifier: f.qualifier.clone(),
                                    name: f.name.clone(),
                                    ty: f.ty.clone(),
                                },
                                f.name.clone(),
                            )
                        })
                        .collect(),
                };
                (proj, true)
            }
            // Without an ordering, WITH TIES degenerates to a plain limit.
            other => (
                RelExpr::Limit {
                    input: Box::new(other),
                    limit: Some(limit),
                    offset,
                    with_ties: false,
                },
                true,
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Explicit NULL ordering — serialization phase
// ---------------------------------------------------------------------------

/// Makes the source system's default NULL placement explicit on every sort
/// key. The paper (§2.1) singles out default NULL ordering as a construct
/// that "may be syntactically supported as-is on the target system, but
/// ha[s] a different behavior … correctness has been compromised and leads
/// to subtle defects". Teradata sorts NULLs low: first ascending, last
/// descending.
pub struct ExplicitNullOrdering;

fn fill_keys(keys: &mut [SortExpr]) -> bool {
    let mut changed = false;
    for k in keys {
        if k.nulls_first.is_none() {
            k.nulls_first = Some(!k.desc);
            changed = true;
        }
    }
    changed
}

impl TransformRule for ExplicitNullOrdering {
    fn name(&self) -> &'static str {
        "explicit_null_ordering"
    }

    fn phase(&self) -> Phase {
        Phase::Serialization
    }

    fn rewrite_rel(&self, rel: RelExpr) -> (RelExpr, bool) {
        match rel {
            RelExpr::Sort { input, mut keys } => {
                let changed = fill_keys(&mut keys);
                (RelExpr::Sort { input, keys }, changed)
            }
            RelExpr::Window { input, mut exprs } => {
                let mut changed = false;
                for w in &mut exprs {
                    changed |= fill_keys(&mut w.order_by);
                }
                (RelExpr::Window { input, exprs }, changed)
            }
            other => (other, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_xtra::datum::date_from_ymd;

    #[test]
    fn date_literal_folds_to_teradata_int() {
        let d = ScalarExpr::Literal(
            Datum::Date(date_from_ymd(2014, 1, 1)),
            SqlType::Date,
        );
        match date_to_int_expr(d) {
            ScalarExpr::Literal(Datum::Int(v), _) => assert_eq!(v, 1_140_101),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn date_column_expands_to_extract_arith() {
        let col = ScalarExpr::column(Some("S"), "SALES_DATE", SqlType::Date);
        let e = date_to_int_expr(col);
        assert_eq!(e.ty(), SqlType::Integer);
        let rendered = format!("{e}");
        assert!(rendered.contains("EXTRACT(DAY"), "{rendered}");
        assert!(rendered.contains("1900"), "{rendered}");
        assert!(rendered.contains("10000"), "{rendered}");
    }

    #[test]
    fn row_cmp_gt_matches_paper_semantics() {
        // (AMOUNT, AMOUNT*0.85) > (GROSS, NET) ⇔
        //   AMOUNT > GROSS ∨ (AMOUNT = GROSS ∧ AMOUNT*0.85 > NET)
        let l = vec![
            ScalarExpr::column(Some("S1"), "AMOUNT", SqlType::Integer),
            ScalarExpr::column(Some("S1"), "DISCOUNTED", SqlType::Integer),
        ];
        let r = vec![
            ScalarExpr::column(Some("S2"), "GROSS", SqlType::Integer),
            ScalarExpr::column(Some("S2"), "NET", SqlType::Integer),
        ];
        let p = row_cmp(CmpOp::Gt, &l, &r);
        let s = format!("{p}");
        assert!(s.contains("(S1.AMOUNT > S2.GROSS)"), "{s}");
        assert!(s.contains("(S1.AMOUNT = S2.GROSS)"), "{s}");
        assert!(s.contains("(S1.DISCOUNTED > S2.NET)"), "{s}");
        assert!(s.contains(" OR "), "{s}");
    }

    #[test]
    fn row_cmp_eq_and_ne() {
        let l = vec![ScalarExpr::int(1), ScalarExpr::int(2)];
        let r = vec![ScalarExpr::int(3), ScalarExpr::int(4)];
        assert!(format!("{}", row_cmp(CmpOp::Eq, &l, &r)).contains("AND"));
        assert!(format!("{}", row_cmp(CmpOp::Ne, &l, &r)).contains("OR"));
    }

    #[test]
    fn null_ordering_uses_teradata_defaults() {
        let rule = ExplicitNullOrdering;
        let sort = RelExpr::Sort {
            input: Box::new(RelExpr::Values {
                rows: vec![],
                schema: hyperq_xtra::Schema::empty(),
            }),
            keys: vec![
                SortExpr::asc(ScalarExpr::int(1)),
                SortExpr::desc(ScalarExpr::int(2)),
            ],
        };
        let (out, changed) = rule.rewrite_rel(sort);
        assert!(changed);
        match out {
            RelExpr::Sort { keys, .. } => {
                assert_eq!(keys[0].nulls_first, Some(true), "ASC: NULLs first");
                assert_eq!(keys[1].nulls_first, Some(false), "DESC: NULLs last");
            }
            other => panic!("{other:?}"),
        }
        // Idempotent: second application changes nothing (fixed point).
        let sort2 = RelExpr::Sort {
            input: Box::new(RelExpr::Values {
                rows: vec![],
                schema: hyperq_xtra::Schema::empty(),
            }),
            keys: vec![SortExpr {
                expr: ScalarExpr::int(1),
                desc: false,
                nulls_first: Some(true),
            }],
        };
        let (_, changed2) = rule.rewrite_rel(sort2);
        assert!(!changed2);
    }
}
