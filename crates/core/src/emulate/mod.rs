//! Emulation building blocks (§6): AST-level decompositions and mid-tier
//! answers for features the target database lacks entirely.
//!
//! "Hyper-Q breaks down these sophisticated features into smaller units
//! such that running these units in combination gives the application
//! exactly the same behavior of the main feature." The *driving* of those
//! units against the backend lives in [`crate::crosscompiler`]; this module
//! holds the pure decomposition logic so it can be unit-tested without a
//! backend.

use std::collections::HashMap;

use hyperq_parser::ast as past;
use hyperq_xtra::datum::{Datum, Decimal};
use hyperq_xtra::expr::ScalarFunc;
use hyperq_xtra::schema::{Field, Schema};
use hyperq_xtra::types::SqlType;
use hyperq_xtra::Row;

use crate::backend::ExecResult;
use crate::error::{HyperQError, Result};
use crate::session::{RoutineDef, SessionState};

// ---------------------------------------------------------------------------
// Emulation taxonomy
// ---------------------------------------------------------------------------

/// Relative runtime cost of one emulation kind: how many extra target
/// requests (and how much mid-tier work) the emulation spends per source
/// statement. Drives the migration-assessment cost tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostTier {
    /// Answered mid-tier or a single rewritten request.
    Low,
    /// A bounded handful of extra requests or catalog bookkeeping.
    Medium,
    /// Unbounded request sequences (iteration, per-session materialization).
    High,
}

impl CostTier {
    pub fn as_str(&self) -> &'static str {
        match self {
            CostTier::Low => "low",
            CostTier::Medium => "medium",
            CostTier::High => "high",
        }
    }
}

/// Every kind of mid-tier emulation the crosscompiler can perform, one per
/// `hyperq_emulation_requests_total{kind}` label. An enum (rather than the
/// historical string literals) so the conformance exhaustiveness audit can
/// prove every kind has a lint rule and a cost tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EmulationKind {
    /// E5: `HELP SESSION` / `HELP TABLE`, answered from the DTM catalog.
    Help,
    /// `EXPLAIN`, answered with the translation plan.
    Explain,
    /// E2: macro definition/execution via the DTM catalog.
    Macro,
    /// E3: stored-procedure definition/CALL via the DTM catalog.
    Procedure,
    /// E6 substrate: view definitions kept mid-tier and inlined at bind.
    View,
    /// E4: `MERGE` decomposed into `UPDATE` + guarded `INSERT`.
    Merge,
    /// E1: recursion via WorkTable/TempTable iteration.
    Recursive,
    /// Session settings kept (or journaled) mid-tier.
    SetSession,
    /// Transaction bracketing tracked in session state.
    Transaction,
    /// E6: DML against a DTM-cataloged view, rewritten onto base tables.
    ViewDml,
    /// E7: global-temporary-table definition recorded in the DTM catalog.
    GttDefine,
    /// E7: lazy per-session materialization of a GTT instance.
    GttMaterialize,
    /// E9: mid-tier injection of defaults the target cannot express.
    DefaultInjection,
    /// E8: SET-table semantics via dedup + anti-join on insert.
    SetTableDedup,
    /// Best-effort teardown of emulation temp tables after a failure.
    Cleanup,
    /// A row bound (`TOP n` / `LIMIT n`) on a target that spells neither:
    /// the bound is peeled, the query executes unbounded, and the mid
    /// tier truncates the result set.
    LimitFetch,
}

impl EmulationKind {
    /// Every kind, in a stable order (reports iterate this).
    pub const ALL: [EmulationKind; 16] = [
        EmulationKind::Help,
        EmulationKind::Explain,
        EmulationKind::Macro,
        EmulationKind::Procedure,
        EmulationKind::View,
        EmulationKind::Merge,
        EmulationKind::Recursive,
        EmulationKind::SetSession,
        EmulationKind::Transaction,
        EmulationKind::ViewDml,
        EmulationKind::GttDefine,
        EmulationKind::GttMaterialize,
        EmulationKind::DefaultInjection,
        EmulationKind::SetTableDedup,
        EmulationKind::Cleanup,
        EmulationKind::LimitFetch,
    ];

    /// The metric/provenance label (the historical string literal).
    pub fn as_str(&self) -> &'static str {
        match self {
            EmulationKind::Help => "help",
            EmulationKind::Explain => "explain",
            EmulationKind::Macro => "macro",
            EmulationKind::Procedure => "procedure",
            EmulationKind::View => "view",
            EmulationKind::Merge => "merge",
            EmulationKind::Recursive => "recursive",
            EmulationKind::SetSession => "set_session",
            EmulationKind::Transaction => "transaction",
            EmulationKind::ViewDml => "view_dml",
            EmulationKind::GttDefine => "gtt_define",
            EmulationKind::GttMaterialize => "gtt_materialize",
            EmulationKind::DefaultInjection => "default_injection",
            EmulationKind::SetTableDedup => "set_table_dedup",
            EmulationKind::Cleanup => "cleanup",
            EmulationKind::LimitFetch => "limit_fetch",
        }
    }

    /// How expensive this emulation is at runtime, for assessment reports.
    pub fn cost_tier(&self) -> CostTier {
        match self {
            // Answered entirely mid-tier, or one bookkeeping entry.
            // LimitFetch is one unbounded request with a mid-tier
            // truncation — no extra round trips, but the target computes
            // (and ships) rows the client never sees.
            EmulationKind::Help
            | EmulationKind::Explain
            | EmulationKind::SetSession
            | EmulationKind::Transaction
            | EmulationKind::Cleanup
            | EmulationKind::LimitFetch => CostTier::Low,
            // A bounded number of extra requests or rewritten plans.
            EmulationKind::Macro
            | EmulationKind::Procedure
            | EmulationKind::View
            | EmulationKind::ViewDml
            | EmulationKind::Merge
            | EmulationKind::GttDefine
            | EmulationKind::DefaultInjection
            | EmulationKind::SetTableDedup => CostTier::Medium,
            // Unbounded request sequences (iteration, per-session DDL).
            EmulationKind::Recursive | EmulationKind::GttMaterialize => CostTier::High,
        }
    }
}

// ---------------------------------------------------------------------------
// Constant evaluation (macro defaults, non-constant column defaults)
// ---------------------------------------------------------------------------

/// Evaluate a *constant* bound expression in the mid tier. Handles
/// literals, negation, and the niladic date functions — enough for macro
/// parameter defaults and the non-constant column defaults of E9
/// (`DEFAULT CURRENT_DATE`).
pub fn const_eval(e: &hyperq_xtra::expr::ScalarExpr) -> Result<Datum> {
    use hyperq_xtra::expr::ScalarExpr as E;
    match e {
        E::Literal(d, _) => Ok(d.clone()),
        E::Neg(inner) => const_eval(inner)?.neg().map_err(HyperQError::Value),
        E::Func { func: ScalarFunc::CurrentDate, .. } => Ok(Datum::Date(current_date_days())),
        E::Func { func: ScalarFunc::CurrentTimestamp, .. } => {
            Ok(Datum::Timestamp(current_timestamp_micros()))
        }
        E::Cast { expr, ty } => const_eval(expr)?.cast_to(ty).map_err(HyperQError::Value),
        E::Arith { op, left, right } => {
            let (l, r) = (const_eval(left)?, const_eval(right)?);
            use hyperq_xtra::expr::ArithOp::*;
            match op {
                Add => l.add(&r),
                Sub => l.sub(&r),
                Mul => l.mul(&r),
                Div => l.div(&r),
                Mod => l.rem(&r),
                Pow => l.pow(&r),
            }
            .map_err(HyperQError::Value)
        }
        other => Err(HyperQError::Emulation(format!(
            "expression is not a mid-tier constant: {other}"
        ))),
    }
}

/// Days since epoch for "now" (wall clock).
pub fn current_date_days() -> i32 {
    (current_timestamp_micros() / 86_400_000_000) as i32
}

/// Microseconds since epoch for "now".
pub fn current_timestamp_micros() -> i64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as i64)
}

// ---------------------------------------------------------------------------
// Macro / procedure parameter binding (E2, E3)
// ---------------------------------------------------------------------------

/// Resolve macro-execution arguments (positional and `name = value`) plus
/// declared defaults into a parameter environment for the binder.
pub fn bind_routine_args(
    routine: &RoutineDef,
    args: &[(Option<String>, past::Expr)],
) -> Result<HashMap<String, Datum>> {
    let mut env: HashMap<String, Datum> = HashMap::new();
    let mut positional = 0usize;
    for (name, value) in args {
        let datum = ast_const(value)?;
        match name {
            Some(n) => {
                let upper = n.to_ascii_uppercase();
                if !routine
                    .params
                    .iter()
                    .any(|p| p.name.eq_ignore_ascii_case(&upper))
                {
                    return Err(HyperQError::Emulation(format!(
                        "macro {} has no parameter {upper}",
                        routine.name
                    )));
                }
                env.insert(upper, datum);
            }
            None => {
                let p = routine.params.get(positional).ok_or_else(|| {
                    HyperQError::Emulation(format!(
                        "too many positional arguments to {}",
                        routine.name
                    ))
                })?;
                env.insert(p.name.to_ascii_uppercase(), datum);
                positional += 1;
            }
        }
    }
    // Fill defaults, then verify completeness.
    for p in &routine.params {
        let key = p.name.to_ascii_uppercase();
        if let std::collections::hash_map::Entry::Vacant(slot) = env.entry(key.clone()) {
            match &p.default {
                Some(d) => {
                    slot.insert(ast_const(d)?);
                }
                None => {
                    return Err(HyperQError::Emulation(format!(
                        "missing argument for parameter {key} of {}",
                        routine.name
                    )))
                }
            }
        }
    }
    Ok(env)
}

/// Evaluate a *constant AST expression* (literals, unary minus, date
/// literals) without a binder.
pub fn ast_const(e: &past::Expr) -> Result<Datum> {
    match e {
        past::Expr::Literal(lit) => Ok(match lit {
            past::Literal::Number(n) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    if let Ok(d) = Decimal::parse(n) {
                        Datum::Dec(d)
                    } else {
                        Datum::Double(n.parse().map_err(|_| {
                            HyperQError::Emulation(format!("bad number {n}"))
                        })?)
                    }
                } else {
                    Datum::Int(n.parse().map_err(|_| {
                        HyperQError::Emulation(format!("bad integer {n}"))
                    })?)
                }
            }
            past::Literal::String(s) => Datum::str(s),
            past::Literal::Date(s) => {
                Datum::Date(hyperq_xtra::datum::parse_date(s).map_err(HyperQError::Value)?)
            }
            past::Literal::Timestamp(s) => Datum::Timestamp(
                hyperq_xtra::datum::parse_timestamp(s).map_err(HyperQError::Value)?,
            ),
            past::Literal::Interval { value, unit } => {
                let v: i32 = value.parse().map_err(|_| {
                    HyperQError::Emulation(format!("bad interval {value}"))
                })?;
                Datum::Interval(match unit {
                    past::IntervalUnit::Year => hyperq_xtra::datum::Interval::months(v * 12),
                    past::IntervalUnit::Month => hyperq_xtra::datum::Interval::months(v),
                    past::IntervalUnit::Day => hyperq_xtra::datum::Interval::days(v),
                })
            }
            past::Literal::Boolean(b) => Datum::Bool(*b),
            past::Literal::Null => Datum::Null,
        }),
        past::Expr::UnaryMinus(inner) => ast_const(inner)?.neg().map_err(HyperQError::Value),
        other => Err(HyperQError::Emulation(format!(
            "macro arguments must be constants, got {other:?}"
        ))),
    }
}

/// Substitute bound parameter values into a statement body (macro
/// expansion): every `:name` reference becomes its literal value.
pub fn substitute_params(stmt: &past::Statement, env: &HashMap<String, Datum>) -> past::Statement {
    rewrite_statement_exprs(stmt.clone(), &mut |e| match e {
        past::Expr::Parameter(Some(name)) => {
            match env.get(&name.to_ascii_uppercase()) {
                Some(d) => datum_to_ast(d),
                None => past::Expr::Parameter(Some(name)),
            }
        }
        other => other,
    })
}

fn datum_to_ast(d: &Datum) -> past::Expr {
    match d {
        Datum::Null => past::Expr::Literal(past::Literal::Null),
        Datum::Bool(b) => past::Expr::Literal(past::Literal::Boolean(*b)),
        Datum::Int(v) => past::Expr::Literal(past::Literal::Number(v.to_string())),
        Datum::Double(v) => past::Expr::Literal(past::Literal::Number(v.to_string())),
        Datum::Dec(dec) => past::Expr::Literal(past::Literal::Number(dec.to_string())),
        Datum::Date(days) => past::Expr::Literal(past::Literal::Date(
            hyperq_xtra::datum::format_date(*days),
        )),
        Datum::Timestamp(t) => past::Expr::Literal(past::Literal::Timestamp(
            hyperq_xtra::datum::format_timestamp(*t),
        )),
        Datum::Str(s) => past::Expr::Literal(past::Literal::String(s.to_string())),
        Datum::Interval(iv) => {
            if iv.days != 0 {
                past::Expr::Literal(past::Literal::Interval {
                    value: iv.days.to_string(),
                    unit: past::IntervalUnit::Day,
                })
            } else {
                past::Expr::Literal(past::Literal::Interval {
                    value: iv.months.to_string(),
                    unit: past::IntervalUnit::Month,
                })
            }
        }
    }
}

/// Apply an expression rewriter to every expression position of a
/// statement, recursing into nested queries.
pub fn rewrite_statement_exprs(
    stmt: past::Statement,
    f: &mut dyn FnMut(past::Expr) -> past::Expr,
) -> past::Statement {
    use past::Statement as S;
    match stmt {
        S::Query(q) => S::Query(Box::new(rewrite_query(*q, f))),
        S::Insert { table, columns, source } => S::Insert {
            table,
            columns,
            source: Box::new(rewrite_query(*source, f)),
        },
        S::Update { table, alias, assignments, where_clause } => S::Update {
            table,
            alias,
            assignments: assignments
                .into_iter()
                .map(|a| past::AssignmentAst {
                    column: a.column,
                    value: rewrite_expr_deep(a.value, f),
                })
                .collect(),
            where_clause: where_clause.map(|w| rewrite_expr_deep(w, f)),
        },
        S::Delete { table, alias, where_clause } => S::Delete {
            table,
            alias,
            where_clause: where_clause.map(|w| rewrite_expr_deep(w, f)),
        },
        S::Merge(m) => {
            let m = *m;
            S::Merge(Box::new(past::MergeStmt {
                target: m.target,
                target_alias: m.target_alias,
                source: rewrite_table_ref(m.source, f),
                on: rewrite_expr_deep(m.on, f),
                when_matched_update: m.when_matched_update.map(|assignments| {
                    assignments
                        .into_iter()
                        .map(|a| past::AssignmentAst {
                            column: a.column,
                            value: rewrite_expr_deep(a.value, f),
                        })
                        .collect()
                }),
                when_not_matched_insert: m.when_not_matched_insert.map(|(cols, vals)| {
                    (
                        cols,
                        vals.into_iter().map(|v| rewrite_expr_deep(v, f)).collect(),
                    )
                }),
            }))
        }
        other => other,
    }
}

fn rewrite_query(q: past::Query, f: &mut dyn FnMut(past::Expr) -> past::Expr) -> past::Query {
    past::Query {
        recursive: q.recursive,
        ctes: q
            .ctes
            .into_iter()
            .map(|c| past::Cte { name: c.name, columns: c.columns, query: rewrite_query(c.query, f) })
            .collect(),
        body: rewrite_body(q.body, f),
        order_by: q
            .order_by
            .into_iter()
            .map(|k| past::OrderByItem { expr: rewrite_expr_deep(k.expr, f), ..k })
            .collect(),
    }
}

fn rewrite_body(
    body: past::QueryBody,
    f: &mut dyn FnMut(past::Expr) -> past::Expr,
) -> past::QueryBody {
    match body {
        past::QueryBody::Select(b) => {
            let mut b = *b;
            b.items = b
                .items
                .into_iter()
                .map(|i| match i {
                    past::SelectItem::Expr { expr, alias } => past::SelectItem::Expr {
                        expr: rewrite_expr_deep(expr, f),
                        alias,
                    },
                    other => other,
                })
                .collect();
            b.from = b.from.into_iter().map(|t| rewrite_table_ref(t, f)).collect();
            b.where_clause = b.where_clause.map(|w| rewrite_expr_deep(w, f));
            b.having = b.having.map(|h| rewrite_expr_deep(h, f));
            b.qualify = b.qualify.map(|q| rewrite_expr_deep(q, f));
            b.group_by = b
                .group_by
                .into_iter()
                .map(|g| match g {
                    past::GroupByItem::Expr(e) => {
                        past::GroupByItem::Expr(rewrite_expr_deep(e, f))
                    }
                    past::GroupByItem::Rollup(v) => past::GroupByItem::Rollup(
                        v.into_iter().map(|e| rewrite_expr_deep(e, f)).collect(),
                    ),
                    past::GroupByItem::Cube(v) => past::GroupByItem::Cube(
                        v.into_iter().map(|e| rewrite_expr_deep(e, f)).collect(),
                    ),
                    past::GroupByItem::GroupingSets(sets) => past::GroupByItem::GroupingSets(
                        sets.into_iter()
                            .map(|s| s.into_iter().map(|e| rewrite_expr_deep(e, f)).collect())
                            .collect(),
                    ),
                })
                .collect();
            b.order_by = b
                .order_by
                .into_iter()
                .map(|k| past::OrderByItem { expr: rewrite_expr_deep(k.expr, f), ..k })
                .collect();
            b.value_rows = b
                .value_rows
                .into_iter()
                .map(|row| row.into_iter().map(|e| rewrite_expr_deep(e, f)).collect())
                .collect();
            past::QueryBody::Select(Box::new(b))
        }
        past::QueryBody::SetOp { kind, all, left, right } => past::QueryBody::SetOp {
            kind,
            all,
            left: Box::new(rewrite_body(*left, f)),
            right: Box::new(rewrite_body(*right, f)),
        },
    }
}

fn rewrite_table_ref(
    t: past::TableRef,
    f: &mut dyn FnMut(past::Expr) -> past::Expr,
) -> past::TableRef {
    match t {
        past::TableRef::Derived { query, alias } => past::TableRef::Derived {
            query: Box::new(rewrite_query(*query, f)),
            alias,
        },
        past::TableRef::Join { left, right, kind, constraint } => past::TableRef::Join {
            left: Box::new(rewrite_table_ref(*left, f)),
            right: Box::new(rewrite_table_ref(*right, f)),
            kind,
            constraint: match constraint {
                past::JoinConstraint::On(e) => {
                    past::JoinConstraint::On(rewrite_expr_deep(e, f))
                }
                other => other,
            },
        },
        other => other,
    }
}

/// `Expr::rewrite` does not descend into subqueries; this wrapper does,
/// which macro parameter substitution needs (parameters can appear at any
/// nesting depth). Subqueries anywhere in the tree are rewritten first
/// (via a pre-pass that replaces them in place), then the plain
/// [`past::Expr::rewrite`] handles every scalar position.
pub fn rewrite_expr_deep(
    e: past::Expr,
    f: &mut dyn FnMut(past::Expr) -> past::Expr,
) -> past::Expr {
    // First rewrite all nested subqueries bottom-up wherever they occur…
    let mut with_subqueries = |e: past::Expr| -> past::Expr {
        match e {
            past::Expr::Subquery(q) => past::Expr::Subquery(Box::new(rewrite_query(*q, f))),
            past::Expr::Exists { subquery, negated } => past::Expr::Exists {
                subquery: Box::new(rewrite_query(*subquery, f)),
                negated,
            },
            past::Expr::InSubquery { expr, subquery, negated } => past::Expr::InSubquery {
                expr,
                subquery: Box::new(rewrite_query(*subquery, f)),
                negated,
            },
            past::Expr::QuantifiedCmp { left, op, quantifier, subquery } => {
                past::Expr::QuantifiedCmp {
                    left,
                    op,
                    quantifier,
                    subquery: Box::new(rewrite_query(*subquery, f)),
                }
            }
            other => other,
        }
    };
    let e = e.rewrite(&mut with_subqueries);
    // …then apply the caller's rewriter to every scalar position.
    e.rewrite(f)
}

// ---------------------------------------------------------------------------
// MERGE decomposition (E4)
// ---------------------------------------------------------------------------

/// Decompose `MERGE` into an `UPDATE` followed by a guarded `INSERT …
/// SELECT` (Table 2: "Execute as UPDATE followed by guarded INSERT").
///
/// * `UPDATE t SET c = (SELECT v FROM src WHERE on) … WHERE EXISTS (SELECT
///   1 FROM src WHERE on)`
/// * `INSERT INTO t (cols) SELECT vals FROM src WHERE NOT EXISTS (SELECT 1
///   FROM t AS __TGT WHERE on[t → __TGT])`
pub fn decompose_merge(m: &past::MergeStmt) -> Result<Vec<past::Statement>> {
    let target_qualifier = m
        .target_alias
        .clone()
        .unwrap_or_else(|| m.target.base())
        .to_ascii_uppercase();
    let mut stmts: Vec<past::Statement> = Vec::new();

    if let Some(assignments) = &m.when_matched_update {
        let exists_query = past::Query {
            recursive: false,
            ctes: Vec::new(),
            body: past::QueryBody::Select(Box::new(past::SelectBlock {
                items: vec![past::SelectItem::Expr {
                    expr: past::Expr::Literal(past::Literal::Number("1".into())),
                    alias: None,
                }],
                from: vec![m.source.clone()],
                where_clause: Some(m.on.clone()),
                ..past::SelectBlock::default()
            })),
            order_by: Vec::new(),
        };
        let rewritten: Vec<past::AssignmentAst> = assignments
            .iter()
            .map(|a| past::AssignmentAst {
                column: a.column.clone(),
                value: past::Expr::Subquery(Box::new(past::Query {
                    recursive: false,
                    ctes: Vec::new(),
                    body: past::QueryBody::Select(Box::new(past::SelectBlock {
                        items: vec![past::SelectItem::Expr {
                            expr: a.value.clone(),
                            alias: None,
                        }],
                        from: vec![m.source.clone()],
                        where_clause: Some(m.on.clone()),
                        ..past::SelectBlock::default()
                    })),
                    order_by: Vec::new(),
                })),
            })
            .collect();
        stmts.push(past::Statement::Update {
            table: m.target.clone(),
            alias: m.target_alias.clone().or_else(|| Some(target_qualifier.clone())),
            assignments: rewritten,
            where_clause: Some(past::Expr::Exists {
                subquery: Box::new(exists_query),
                negated: false,
            }),
        });
    }

    if let Some((columns, values)) = &m.when_not_matched_insert {
        // Rename the target's qualifier to __TGT inside the ON condition so
        // the anti-join references the probed target row, not the insert
        // source.
        let mut rename = |e: past::Expr| -> past::Expr {
            match e {
                past::Expr::Ident(mut name) if name.0.len() >= 2 => {
                    let qpos = name.0.len() - 2;
                    if name.0[qpos].eq_ignore_ascii_case(&target_qualifier) {
                        name.0[qpos] = "__TGT".to_string();
                    }
                    past::Expr::Ident(name)
                }
                other => other,
            }
        };
        let on_renamed = rewrite_expr_deep(m.on.clone(), &mut rename);
        let anti = past::Expr::Exists {
            subquery: Box::new(past::Query {
                recursive: false,
                ctes: Vec::new(),
                body: past::QueryBody::Select(Box::new(past::SelectBlock {
                    items: vec![past::SelectItem::Expr {
                        expr: past::Expr::Literal(past::Literal::Number("1".into())),
                        alias: None,
                    }],
                    from: vec![past::TableRef::Table {
                        name: m.target.clone(),
                        alias: Some(past::TableAlias {
                            name: "__TGT".to_string(),
                            columns: Vec::new(),
                        }),
                    }],
                    where_clause: Some(on_renamed),
                    ..past::SelectBlock::default()
                })),
                order_by: Vec::new(),
            }),
            negated: true,
        };
        let select = past::Query {
            recursive: false,
            ctes: Vec::new(),
            body: past::QueryBody::Select(Box::new(past::SelectBlock {
                items: values
                    .iter()
                    .map(|v| past::SelectItem::Expr { expr: v.clone(), alias: None })
                    .collect(),
                from: vec![m.source.clone()],
                where_clause: Some(anti),
                ..past::SelectBlock::default()
            })),
            order_by: Vec::new(),
        };
        stmts.push(past::Statement::Insert {
            table: m.target.clone(),
            columns: columns.clone(),
            source: Box::new(select),
        });
    }
    Ok(stmts)
}

// ---------------------------------------------------------------------------
// DML on views (E6)
// ---------------------------------------------------------------------------

/// Rewrite DML against a view into DML against its base table (Table 2:
/// "Express DML operation on the base table of the view").
///
/// Supported view shape — the updatable-view subset: one base table, plain
/// column select items (with optional aliases), optional WHERE. The view's
/// predicate is conjoined to the statement's.
pub fn rewrite_dml_on_view(
    stmt: &past::Statement,
    view_query: &past::Query,
    view_columns: &[String],
) -> Result<past::Statement> {
    let block = match &view_query.body {
        past::QueryBody::Select(b)
            if b.group_by.is_empty()
                && !b.distinct
                && b.having.is_none()
                && b.qualify.is_none()
                && b.from.len() == 1 =>
        {
            b
        }
        _ => {
            return Err(HyperQError::Emulation(
                "DML is only supported on simple single-table views".into(),
            ))
        }
    };
    let (base_table, base_alias) = match &block.from[0] {
        past::TableRef::Table { name, alias } => {
            (name.clone(), alias.as_ref().map(|a| a.name.clone()))
        }
        _ => {
            return Err(HyperQError::Emulation(
                "DML is only supported on views over base tables".into(),
            ))
        }
    };
    // Map exposed column name → base expression (must be a plain column).
    let mut mapping: Vec<(String, past::ObjectName)> = Vec::new();
    for (i, item) in block.items.iter().enumerate() {
        match item {
            past::SelectItem::Expr { expr: past::Expr::Ident(base), alias } => {
                let exposed = view_columns
                    .get(i)
                    .cloned()
                    .or_else(|| alias.as_ref().map(|a| a.to_ascii_uppercase()))
                    .unwrap_or_else(|| base.base());
                mapping.push((exposed, base.clone()));
            }
            past::SelectItem::Wildcard => {
                // `SELECT *`: exposed names equal base names; no remapping.
            }
            _ => {
                return Err(HyperQError::Emulation(
                    "DML through computed view columns is not supported".into(),
                ))
            }
        }
    }
    let remap_ident = |name: &str| -> past::ObjectName {
        mapping
            .iter()
            .find(|(exposed, _)| exposed.eq_ignore_ascii_case(name)).map_or_else(|| past::ObjectName::single(name), |(_, base)| base.clone())
    };
    let mut remap_expr = |e: past::Expr| -> past::Expr {
        match e {
            past::Expr::Ident(n) if n.0.len() == 1 => {
                past::Expr::Ident(remap_ident(&n.0[0]))
            }
            other => other,
        }
    };
    let conjoin = |user: Option<past::Expr>| -> Option<past::Expr> {
        match (user, block.where_clause.clone()) {
            (Some(u), Some(v)) => Some(past::Expr::BinaryOp {
                op: past::BinOp::And,
                left: Box::new(u),
                right: Box::new(v),
            }),
            (Some(u), None) => Some(u),
            (None, v) => v,
        }
    };
    Ok(match stmt {
        past::Statement::Update { assignments, where_clause, alias, .. } => {
            past::Statement::Update {
                table: base_table,
                alias: alias.clone().or(base_alias),
                assignments: assignments
                    .iter()
                    .map(|a| past::AssignmentAst {
                        column: remap_ident(&a.column).base(),
                        value: rewrite_expr_deep(a.value.clone(), &mut remap_expr),
                    })
                    .collect(),
                where_clause: conjoin(
                    where_clause
                        .clone()
                        .map(|w| rewrite_expr_deep(w, &mut remap_expr)),
                ),
            }
        }
        past::Statement::Delete { where_clause, alias, .. } => past::Statement::Delete {
            table: base_table,
            alias: alias.clone().or(base_alias),
            where_clause: conjoin(
                where_clause
                    .clone()
                    .map(|w| rewrite_expr_deep(w, &mut remap_expr)),
            ),
        },
        past::Statement::Insert { columns, source, .. } => past::Statement::Insert {
            table: base_table,
            columns: columns.iter().map(|c| remap_ident(c).base()).collect(),
            source: source.clone(),
        },
        other => {
            return Err(HyperQError::Emulation(format!(
                "not a DML statement on a view: {other:?}"
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// HELP commands (E5)
// ---------------------------------------------------------------------------

/// Answer `HELP SESSION` entirely from mid-tier state.
pub fn help_session(session: &SessionState) -> ExecResult {
    let schema = Schema::new(vec![
        Field::new(None, "SETTING", SqlType::Varchar(None), false),
        Field::new(None, "VALUE", SqlType::Varchar(None), false),
    ]);
    let mut rows: Vec<Row> = vec![
        vec![Datum::str("USER"), Datum::str(&session.user)],
        vec![
            Datum::str("SESSION ID"),
            Datum::str(session.session_id.to_string()),
        ],
    ];
    for (k, v) in &session.settings {
        rows.push(vec![Datum::str(k), Datum::str(v)]);
    }
    ExecResult::rows(schema, rows)
}

/// Answer `HELP TABLE t` from catalog metadata.
pub fn help_table(def: &hyperq_xtra::catalog::TableDef) -> ExecResult {
    let schema = Schema::new(vec![
        Field::new(None, "COLUMN_NAME", SqlType::Varchar(None), false),
        Field::new(None, "TYPE", SqlType::Varchar(None), false),
        Field::new(None, "NULLABLE", SqlType::Varchar(None), false),
    ]);
    let rows: Vec<Row> = def
        .columns
        .iter()
        .map(|c| {
            vec![
                Datum::str(&c.name),
                Datum::str(c.ty.to_string()),
                Datum::str(if c.nullable { "Y" } else { "N" }),
            ]
        })
        .collect();
    ExecResult::rows(schema, rows)
}

// ---------------------------------------------------------------------------
// Recursive query decomposition (E1)
// ---------------------------------------------------------------------------

/// The pieces of a recursive query, split for the WorkTable/TempTable
/// emulation (paper §6, Figure 7).
pub struct RecursiveParts {
    /// CTE name (e.g. `REPORTS`).
    pub name: String,
    /// Declared column names.
    pub columns: Vec<String>,
    /// The seed (non-recursive UNION ALL branch).
    pub seed: past::Query,
    /// The recursive branch, still referencing the CTE name.
    pub recursive: past::Query,
    /// The main query, still referencing the CTE name.
    pub main: past::Query,
}

/// Split a `WITH RECURSIVE` query into seed / recursive-step / main parts.
/// Supports the canonical single-CTE `seed UNION ALL step` shape of the
/// paper's Example 4.
pub fn split_recursive(q: &past::Query) -> Result<RecursiveParts> {
    if q.ctes.len() != 1 {
        return Err(HyperQError::Emulation(
            "recursive emulation supports exactly one recursive common table expression".into(),
        ));
    }
    let cte = &q.ctes[0];
    let past::QueryBody::SetOp {
        kind: hyperq_xtra::rel::SetOpKind::Union,
        all: true,
        left,
        right,
    } = &cte.query.body
    else {
        return Err(HyperQError::Emulation(
            "recursive CTE body must be `seed UNION ALL recursive-step`".into(),
        ));
    };
    let wrap = |body: &past::QueryBody| past::Query {
        recursive: false,
        ctes: Vec::new(),
        body: body.clone(),
        order_by: Vec::new(),
    };
    Ok(RecursiveParts {
        name: cte.name.to_ascii_uppercase(),
        columns: cte.columns.iter().map(|c| c.to_ascii_uppercase()).collect(),
        seed: wrap(left),
        recursive: wrap(right),
        main: past::Query {
            recursive: false,
            ctes: Vec::new(),
            body: q.body.clone(),
            order_by: q.order_by.clone(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_parser::{parse_one, Dialect};

    fn td(sql: &str) -> past::Statement {
        parse_one(sql, Dialect::Teradata).unwrap().stmt
    }

    #[test]
    fn merge_decomposes_into_update_and_insert() {
        let m = match td(
            "MERGE INTO TGT T USING SRC S ON T.ID = S.ID \
             WHEN MATCHED THEN UPDATE SET V = S.V \
             WHEN NOT MATCHED THEN INSERT (ID, V) VALUES (S.ID, S.V)",
        ) {
            past::Statement::Merge(m) => m,
            other => panic!("{other:?}"),
        };
        let stmts = decompose_merge(&m).unwrap();
        assert_eq!(stmts.len(), 2);
        match &stmts[0] {
            past::Statement::Update { where_clause: Some(past::Expr::Exists { .. }), assignments, .. } => {
                assert!(matches!(assignments[0].value, past::Expr::Subquery(_)));
            }
            other => panic!("{other:?}"),
        }
        match &stmts[1] {
            past::Statement::Insert { columns, source, .. } => {
                assert_eq!(columns, &vec!["ID".to_string(), "V".to_string()]);
                // Anti-join must reference the renamed target.
                let dbg = format!("{source:?}");
                assert!(dbg.contains("__TGT"), "{dbg}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merge_update_only() {
        let m = match td("MERGE INTO T USING S ON T.A = S.A WHEN MATCHED THEN UPDATE SET B = 1") {
            past::Statement::Merge(m) => m,
            other => panic!("{other:?}"),
        };
        let stmts = decompose_merge(&m).unwrap();
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn split_recursive_matches_paper_example4() {
        let q = match td(
            "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
               SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
               UNION ALL \
               SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
               WHERE REPORTS.EMPNO = EMP.MGRNO ) \
             SELECT EMPNO FROM REPORTS ORDER BY EMPNO",
        ) {
            past::Statement::Query(q) => q,
            other => panic!("{other:?}"),
        };
        let parts = split_recursive(&q).unwrap();
        assert_eq!(parts.name, "REPORTS");
        assert_eq!(parts.columns, vec!["EMPNO".to_string(), "MGRNO".to_string()]);
        assert!(format!("{:?}", parts.recursive).contains("REPORTS"));
        // The Teradata parser attaches ORDER BY to the block; it survives
        // into the main part either way.
        assert!(format!("{:?}", parts.main).contains("OrderByItem"));
    }

    #[test]
    fn split_recursive_rejects_non_union_shape() {
        let q = match td("WITH RECURSIVE R (A) AS (SELECT 1) SELECT * FROM R") {
            past::Statement::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(split_recursive(&q).is_err());
    }

    #[test]
    fn routine_args_with_defaults_and_named() {
        let routine = RoutineDef {
            name: "M".into(),
            features: Default::default(),
            params: vec![
                past::MacroParam {
                    name: "A".into(),
                    ty: SqlType::Integer,
                    default: None,
                },
                past::MacroParam {
                    name: "B".into(),
                    ty: SqlType::Integer,
                    default: Some(past::Expr::Literal(past::Literal::Number("7".into()))),
                },
            ],
            body: Vec::new(),
        };
        let env = bind_routine_args(
            &routine,
            &[(None, past::Expr::Literal(past::Literal::Number("1".into())))],
        )
        .unwrap();
        assert_eq!(env["A"], Datum::Int(1));
        assert_eq!(env["B"], Datum::Int(7));
        // Named overrides default.
        let env2 = bind_routine_args(
            &routine,
            &[
                (None, past::Expr::Literal(past::Literal::Number("1".into()))),
                (
                    Some("B".into()),
                    past::Expr::Literal(past::Literal::Number("9".into())),
                ),
            ],
        )
        .unwrap();
        assert_eq!(env2["B"], Datum::Int(9));
        // Missing required parameter.
        assert!(bind_routine_args(&routine, &[]).is_err());
    }

    #[test]
    fn parameter_substitution_reaches_subqueries() {
        let stmt = td("SELECT * FROM T WHERE A = :P AND EXISTS (SELECT 1 FROM S WHERE B = :P)");
        let mut env = HashMap::new();
        env.insert("P".to_string(), Datum::Int(42));
        let out = substitute_params(&stmt, &env);
        let dbg = format!("{out:?}");
        assert!(!dbg.contains("Parameter"), "{dbg}");
        assert!(dbg.contains("42"), "{dbg}");
    }

    #[test]
    fn help_session_reports_user_and_settings() {
        let s = SessionState::new(11, "ETL_USER");
        let r = help_session(&s);
        assert!(r.rows.iter().any(|row| row[1] == Datum::str("ETL_USER")));
        assert!(r.rows.iter().any(|row| row[0] == Datum::str("DATEFORM")));
    }
}
