//! Unified error type for the Hyper-Q pipeline.

use std::fmt;

use crate::backend::BackendError;
use hyperq_governor::CancelError;
use hyperq_parser::ParseError;
use hyperq_xtra::ValueError;

/// Any error that can surface while processing an application request.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperQError {
    /// Frontend syntax error.
    Parse(ParseError),
    /// Name resolution / typing error.
    Bind(String),
    /// Transformation error (e.g. unsupported construct with no rewrite).
    Transform(String),
    /// The target database rejected or failed a request.
    Backend(BackendError),
    /// Emulation-layer failure (e.g. recursion limit exceeded).
    Emulation(String),
    /// Value-level error during mid-tier evaluation.
    Value(ValueError),
    /// Static-analysis failure: a plan broke a structural invariant, a
    /// rewrite rule was caught changing plan semantics, or the serializer
    /// round-trip diverged (strict analysis mode only).
    Validation(String),
    /// The statement was cancelled by the lifecycle governor: client
    /// abort, deadline expiry, budget kill or shutdown. This is the one
    /// well-defined error a cancelled statement surfaces — whichever
    /// layer noticed first, `observe_statement` canonicalizes to it.
    Cancelled(CancelError),
}

impl fmt::Display for HyperQError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperQError::Parse(e) => write!(f, "{e}"),
            HyperQError::Bind(m) => write!(f, "binder error: {m}"),
            HyperQError::Transform(m) => write!(f, "transform error: {m}"),
            HyperQError::Backend(e) => write!(f, "{e}"),
            HyperQError::Emulation(m) => write!(f, "emulation error: {m}"),
            HyperQError::Value(e) => write!(f, "{e}"),
            HyperQError::Validation(m) => write!(f, "validation error: {m}"),
            HyperQError::Cancelled(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HyperQError {}

impl From<ParseError> for HyperQError {
    fn from(e: ParseError) -> Self {
        HyperQError::Parse(e)
    }
}

impl From<BackendError> for HyperQError {
    fn from(e: BackendError) -> Self {
        HyperQError::Backend(e)
    }
}

impl From<ValueError> for HyperQError {
    fn from(e: ValueError) -> Self {
        HyperQError::Value(e)
    }
}

impl From<CancelError> for HyperQError {
    fn from(e: CancelError) -> Self {
        HyperQError::Cancelled(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, HyperQError>;
