//! The backend abstraction — the paper's "ODBC Server" component (§4.5).
//!
//! "An abstraction of ODBC APIs that allows Hyper-Q to communicate with
//! different target database systems using their corresponding ODBC
//! drivers." Here the driver FFI is replaced by a trait; the bundled
//! implementation is `hyperq-engine`'s in-process warehouse, and tests use
//! scripted fakes.
//!
//! Errors carry a [`BackendErrorKind`] taxonomy so the layers above —
//! notably [`crate::resilience::ResilientBackend`] — can tell a transient
//! hiccup worth retrying from a semantic rejection that will fail
//! identically forever.

use std::sync::Arc;

use hyperq_obs::{Counter, Histogram, ObsContext};
use hyperq_xtra::catalog::TableDef;
use hyperq_xtra::schema::Schema;
use hyperq_xtra::Row;

/// Classification of a target-database failure, driving retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendErrorKind {
    /// Momentary failure (deadlock victim, resource blip); retry is safe
    /// once the statement itself is replay-safe.
    Transient,
    /// A per-attempt or per-request deadline expired.
    Timeout,
    /// The link to the target died; the request outcome may be unknown, so
    /// only replay-safe statements may retry.
    ConnectionLost,
    /// The target refused the request before doing work (admission control,
    /// overload shedding, an open circuit breaker) — retryable after
    /// backoff.
    Rejected,
    /// A semantic error (syntax, missing object, constraint violation) that
    /// will fail identically on every retry.
    Fatal,
}

impl BackendErrorKind {
    /// Whether a retry can possibly change the outcome. The statement-level
    /// replay-safety check ([`RequestContext::allows_retry`]) is a separate
    /// gate.
    pub fn is_retryable(self) -> bool {
        !matches!(self, BackendErrorKind::Fatal)
    }

    /// Stable lowercase name, used as a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendErrorKind::Transient => "transient",
            BackendErrorKind::Timeout => "timeout",
            BackendErrorKind::ConnectionLost => "connection_lost",
            BackendErrorKind::Rejected => "rejected",
            BackendErrorKind::Fatal => "fatal",
        }
    }

    /// All kinds, in display order (used to pre-resolve labeled metric
    /// handles).
    pub const ALL: [BackendErrorKind; 5] = [
        BackendErrorKind::Transient,
        BackendErrorKind::Timeout,
        BackendErrorKind::ConnectionLost,
        BackendErrorKind::Rejected,
        BackendErrorKind::Fatal,
    ];
}

impl std::fmt::Display for BackendErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from the target database: a taxonomy kind plus the driver-level
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendError {
    pub kind: BackendErrorKind,
    pub message: String,
}

impl BackendError {
    pub fn new(kind: BackendErrorKind, message: impl Into<String>) -> BackendError {
        BackendError { kind, message: message.into() }
    }

    pub fn transient(message: impl Into<String>) -> BackendError {
        BackendError::new(BackendErrorKind::Transient, message)
    }

    pub fn timeout(message: impl Into<String>) -> BackendError {
        BackendError::new(BackendErrorKind::Timeout, message)
    }

    pub fn connection_lost(message: impl Into<String>) -> BackendError {
        BackendError::new(BackendErrorKind::ConnectionLost, message)
    }

    pub fn rejected(message: impl Into<String>) -> BackendError {
        BackendError::new(BackendErrorKind::Rejected, message)
    }

    pub fn fatal(message: impl Into<String>) -> BackendError {
        BackendError::new(BackendErrorKind::Fatal, message)
    }

    /// Classify a string-shaped driver error by message content — the
    /// fallback for ODBC drivers that return flat text. Unrecognized
    /// messages default to `Fatal`: never retry what we don't understand.
    pub fn classify(message: impl Into<String>) -> BackendError {
        let message = message.into();
        let kind = classify_message(&message);
        BackendError { kind, message }
    }
}

fn classify_message(message: &str) -> BackendErrorKind {
    let m = message.to_ascii_lowercase();
    let any = |needles: &[&str]| needles.iter().any(|n| m.contains(n));
    if any(&["timeout", "timed out", "deadline exceeded"]) {
        BackendErrorKind::Timeout
    } else if any(&[
        "connection reset",
        "connection lost",
        "connection closed",
        "connection refused",
        "broken pipe",
        "network",
    ]) {
        BackendErrorKind::ConnectionLost
    } else if any(&[
        "too many",
        "admission",
        "overload",
        "throttl",
        "rejected",
        "at capacity",
        "server busy",
    ]) {
        BackendErrorKind::Rejected
    } else if any(&[
        "transient",
        "temporar",
        "try again",
        "retry",
        "deadlock",
        "serialization failure",
        "unavailable",
    ]) {
        BackendErrorKind::Transient
    } else {
        BackendErrorKind::Fatal
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backend error ({}): {}", self.kind, self.message)
    }
}

impl std::error::Error for BackendError {}

/// Per-request execution context the pipeline passes down to the backend
/// stack so wrappers can make replay-safety decisions the SQL text alone
/// cannot justify: whether the statement is idempotent, and whether the
/// session currently has a transaction open (a retried statement inside a
/// transaction could be applied twice if the first attempt actually
/// committed on the target before the error surfaced).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestContext {
    /// Re-executing the statement cannot change the outcome (read-only
    /// queries; not DML/DDL).
    pub idempotent: bool,
    /// The session has an open transaction.
    pub in_transaction: bool,
}

impl RequestContext {
    /// Context for a replay-safe read outside any transaction.
    pub fn read_only() -> RequestContext {
        RequestContext { idempotent: true, in_transaction: false }
    }

    /// Context for a non-idempotent statement (DML/DDL): never blind-retried.
    pub fn write() -> RequestContext {
        RequestContext { idempotent: false, in_transaction: false }
    }

    /// Conservative keyword classification for callers entering through the
    /// plain [`Backend::execute`] path: only obvious reads are idempotent.
    pub fn from_sql(sql: &str) -> RequestContext {
        let first = sql.split_whitespace().next().unwrap_or("").to_ascii_uppercase();
        RequestContext {
            idempotent: matches!(first.as_str(), "SELECT" | "SEL" | "WITH" | "HELP" | "SHOW"),
            in_transaction: false,
        }
    }

    /// The replay-safety gate: blind retry is permitted only for idempotent
    /// statements outside an open transaction.
    pub fn allows_retry(&self) -> bool {
        self.idempotent && !self.in_transaction
    }
}

impl Default for RequestContext {
    /// Conservative default: assume non-idempotent.
    fn default() -> RequestContext {
        RequestContext::write()
    }
}

/// Result of executing one request on the target.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Result schema; empty for DML/DDL.
    pub schema: Schema,
    /// Result rows; empty for DML/DDL.
    pub rows: Vec<Row>,
    /// Rows affected (DML) or returned (queries).
    pub row_count: u64,
}

impl ExecResult {
    /// An empty DDL/utility acknowledgement.
    pub fn ack() -> ExecResult {
        ExecResult { schema: Schema::empty(), rows: Vec::new(), row_count: 0 }
    }

    /// A DML acknowledgement with an affected-row count.
    pub fn affected(n: u64) -> ExecResult {
        ExecResult { schema: Schema::empty(), rows: Vec::new(), row_count: n }
    }

    pub fn rows(schema: Schema, rows: Vec<Row>) -> ExecResult {
        let row_count = rows.len() as u64;
        ExecResult { schema, rows, row_count }
    }
}

/// A target database connection.
///
/// `execute` submits one SQL-B statement. `table_meta` is the catalog
/// lookup the binder performs against the target (the ODBC catalog-function
/// equivalent).
pub trait Backend: Send + Sync {
    /// Target system name (for diagnostics).
    fn name(&self) -> &str;

    /// Execute one statement of target-dialect SQL.
    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError>;

    /// Execute with an explicit replay-safety context. Plain backends ignore
    /// the context; policy wrappers (retry, replication) use it to decide
    /// what they may replay. Wrappers MUST forward it to their inner
    /// backend.
    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        let _ = ctx;
        self.execute(sql)
    }

    /// Look up a table's definition in the target catalog (normalized
    /// upper-case name).
    fn table_meta(&self, name: &str) -> Option<TableDef>;

    /// Re-establish the backend session after a lost connection — the ODBC
    /// reconnect. A fresh session has *none* of the old session's scoped
    /// state (settings, temp tables); re-creating it is the caller's job
    /// (see [`crate::recover::RecoveringBackend`]). Backends without
    /// per-session connection state succeed trivially; policy wrappers MUST
    /// forward the call to their inner backend.
    fn reset_session(&self) -> Result<(), BackendError> {
        Ok(())
    }
}

/// A transparent [`Backend`] wrapper that reports per-call metrics into an
/// observability context: round-trips, errors (total and by taxonomy kind),
/// rows returned/affected, a call-latency histogram, and catalog-lookup
/// counts — all labeled with the wrapped backend's name.
pub struct InstrumentedBackend {
    inner: Arc<dyn Backend>,
    calls: Arc<Counter>,
    errors: Arc<Counter>,
    errors_by_kind: [Arc<Counter>; BackendErrorKind::ALL.len()],
    rows: Arc<Counter>,
    catalog_lookups: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl InstrumentedBackend {
    /// Wrap `inner`, resolving metric handles once. The wrapper is
    /// transparent — callers still see the inner backend's `name()`.
    pub fn wrap(inner: Arc<dyn Backend>, obs: &ObsContext) -> Arc<dyn Backend> {
        let labels = &[("backend", inner.name())][..];
        let m = &obs.metrics;
        Arc::new(InstrumentedBackend {
            calls: m.counter("hyperq_backend_requests_total", labels),
            errors: m.counter("hyperq_backend_errors_total", labels),
            errors_by_kind: BackendErrorKind::ALL.map(|k| {
                m.counter(
                    "hyperq_backend_errors_by_kind_total",
                    &[("backend", inner.name()), ("kind", k.as_str())],
                )
            }),
            rows: m.counter("hyperq_backend_rows_total", labels),
            catalog_lookups: m.counter("hyperq_backend_catalog_lookups_total", labels),
            latency: m.histogram("hyperq_backend_request_duration_seconds", labels),
            inner,
        })
    }

    fn observe(
        &self,
        result: Result<ExecResult, BackendError>,
    ) -> Result<ExecResult, BackendError> {
        match &result {
            Ok(r) => self.rows.add(r.row_count),
            Err(e) => {
                self.errors.inc();
                let idx = BackendErrorKind::ALL
                    .iter()
                    .position(|k| *k == e.kind)
                    .unwrap_or(BackendErrorKind::ALL.len() - 1);
                self.errors_by_kind[idx].inc();
            }
        }
        result
    }
}

impl Backend for InstrumentedBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        self.calls.inc();
        let t0 = std::time::Instant::now();
        let result = self.inner.execute(sql);
        self.latency.record(t0.elapsed());
        self.observe(result)
    }

    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        self.calls.inc();
        let t0 = std::time::Instant::now();
        let result = self.inner.execute_ctx(sql, ctx);
        self.latency.record(t0.elapsed());
        self.observe(result)
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        self.catalog_lookups.inc();
        self.inner.table_meta(name)
    }

    fn reset_session(&self) -> Result<(), BackendError> {
        self.inner.reset_session()
    }
}

/// Test-support backends (kept in the library so integration tests and
/// downstream users can fault-inject without a real target).
pub mod testing {
    use super::*;
    use parking_lot::Mutex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// A scripted backend: records every SQL string it is asked to run and
    /// returns canned results (or injected faults).
    /// Canned response function.
    pub type Responder = Box<dyn Fn(&str) -> Result<ExecResult, BackendError> + Send + Sync>;

    pub struct ScriptedBackend {
        pub log: Mutex<Vec<String>>,
        pub tables: Vec<TableDef>,
        pub responder: Responder,
    }

    impl ScriptedBackend {
        pub fn acking(tables: Vec<TableDef>) -> Self {
            ScriptedBackend {
                log: Mutex::new(Vec::new()),
                tables,
                responder: Box::new(|_| Ok(ExecResult::ack())),
            }
        }

        pub fn sql_log(&self) -> Vec<String> {
            self.log.lock().clone()
        }
    }

    impl Backend for ScriptedBackend {
        fn name(&self) -> &str {
            "scripted"
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            self.log.lock().push(sql.to_string());
            (self.responder)(sql)
        }

        fn table_meta(&self, name: &str) -> Option<TableDef> {
            self.tables
                .iter()
                .find(|t| {
                    t.name.eq_ignore_ascii_case(name)
                        || t.base_name().eq_ignore_ascii_case(name)
                })
                .cloned()
        }

        fn reset_session(&self) -> Result<(), BackendError> {
            // The marker lets tests assert replay ordering relative to the
            // reconnect itself.
            self.log.lock().push(RESET_MARKER.to_string());
            Ok(())
        }
    }

    /// Log entry [`ScriptedBackend`] records for a `reset_session` call.
    pub const RESET_MARKER: &str = "/* session reset */";

    /// One fault-injection schedule. Schedules only decide *whether* a call
    /// fails; calls that pass are delegated to the wrapped backend.
    pub enum FaultMode {
        /// Never inject a failure.
        None,
        /// Fail the next `remaining` calls with `kind`, then pass.
        FailNext { remaining: u64, kind: BackendErrorKind },
        /// Fail every call with `kind`.
        AlwaysFail { kind: BackendErrorKind },
        /// Fail each call independently with probability `rate`, drawn from
        /// a seeded (deterministic) generator.
        Flaky { rate: f64, rng: StdRng, kind: BackendErrorKind },
        /// Fail every `period`-th in-scope call with `kind` (calls `period`,
        /// `2*period`, …) — a deterministic connection-kill cadence for soak
        /// schedules. `seen` counts in-scope calls so far.
        KillEvery { period: u64, seen: u64, kind: BackendErrorKind },
        /// Fail the next `remaining` in-scope calls whose SQL contains
        /// `needle` (case-insensitive) — kills a specific step of a
        /// multi-statement emulation sequence.
        KillOnSqlMatch { needle: String, remaining: u64, kind: BackendErrorKind },
        /// Fail exactly the in-scope calls whose 1-based sequence numbers
        /// are in `calls` — an explicit per-replica kill schedule, so a
        /// multi-replica soak can target individual replicas with
        /// deterministic, uncorrelated fault timelines.
        KillList { calls: std::collections::BTreeSet<u64>, seen: u64, kind: BackendErrorKind },
    }

    /// Which requests a fault schedule may hit, by replay-safety context.
    /// Out-of-scope calls pass through without consuming the schedule.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub enum FaultScope {
        /// Every call is in scope.
        #[default]
        All,
        /// Only replay-safe calls (`idempotent ∧ ¬in_transaction`).
        IdempotentOnly,
        /// Only calls made inside an open transaction.
        InTransactionOnly,
    }

    impl FaultScope {
        fn matches(self, ctx: RequestContext) -> bool {
            match self {
                FaultScope::All => true,
                FaultScope::IdempotentOnly => ctx.allows_retry(),
                FaultScope::InTransactionOnly => ctx.in_transaction,
            }
        }
    }

    /// Scriptable fault schedule: a failure mode plus optional per-call
    /// latency injection.
    pub struct FaultPlan {
        pub mode: FaultMode,
        /// Injected before every call (models a slow target).
        pub latency: Duration,
        /// Seeded per-call latency jitter: each call additionally sleeps a
        /// uniform duration in `[0, max]` drawn from a deterministic
        /// generator (models per-replica response-time skew).
        pub latency_jitter: Option<(StdRng, Duration)>,
        /// Which calls the mode may fault (default: all).
        pub scope: FaultScope,
    }

    impl FaultPlan {
        pub fn none() -> FaultPlan {
            FaultPlan::with_mode(FaultMode::None)
        }

        fn with_mode(mode: FaultMode) -> FaultPlan {
            FaultPlan {
                mode,
                latency: Duration::ZERO,
                latency_jitter: None,
                scope: FaultScope::All,
            }
        }

        /// Fail the first `n` calls with `kind`, then succeed.
        pub fn fail_n_then_succeed(n: u64, kind: BackendErrorKind) -> FaultPlan {
            FaultPlan::with_mode(FaultMode::FailNext { remaining: n, kind })
        }

        pub fn always_fail(kind: BackendErrorKind) -> FaultPlan {
            FaultPlan::with_mode(FaultMode::AlwaysFail { kind })
        }

        /// Fail each call with probability `rate`; deterministic for a seed.
        pub fn flaky(rate: f64, seed: u64, kind: BackendErrorKind) -> FaultPlan {
            FaultPlan::with_mode(FaultMode::Flaky {
                rate,
                rng: StdRng::seed_from_u64(seed),
                kind,
            })
        }

        /// Kill the connection on every `period`-th in-scope call
        /// (deterministic cadence; `period` 0 means never).
        pub fn kill_every(period: u64) -> FaultPlan {
            FaultPlan::with_mode(FaultMode::KillEvery {
                period,
                seen: 0,
                kind: BackendErrorKind::ConnectionLost,
            })
        }

        /// Kill the connection on the next `n` calls whose SQL contains
        /// `needle` (case-insensitive).
        pub fn kill_on_sql(needle: impl Into<String>, n: u64) -> FaultPlan {
            FaultPlan::with_mode(FaultMode::KillOnSqlMatch {
                needle: needle.into().to_ascii_uppercase(),
                remaining: n,
                kind: BackendErrorKind::ConnectionLost,
            })
        }

        /// Kill the connection on exactly the given 1-based in-scope call
        /// numbers (duplicates collapse; order is irrelevant).
        pub fn kill_at(calls: impl IntoIterator<Item = u64>) -> FaultPlan {
            FaultPlan::with_mode(FaultMode::KillList {
                calls: calls.into_iter().collect(),
                seen: 0,
                kind: BackendErrorKind::ConnectionLost,
            })
        }

        /// A seeded kill schedule: each of the first `horizon` in-scope
        /// calls is killed independently with probability `rate`, with the
        /// whole schedule drawn up front from a deterministic generator.
        /// Distinct seeds give distinct replicas uncorrelated fault
        /// timelines that replay identically run over run.
        pub fn seeded_kills(seed: u64, rate: f64, horizon: u64) -> FaultPlan {
            let mut rng = StdRng::seed_from_u64(seed);
            let calls = (1..=horizon).filter(|_| rng.gen_bool(rate)).collect();
            FaultPlan::with_mode(FaultMode::KillList {
                calls,
                seen: 0,
                kind: BackendErrorKind::ConnectionLost,
            })
        }

        /// Add per-call latency injection to this plan.
        pub fn with_latency(mut self, latency: Duration) -> FaultPlan {
            self.latency = latency;
            self
        }

        /// Add seeded uniform latency jitter in `[0, max]` per call.
        pub fn with_seeded_latency(mut self, seed: u64, max: Duration) -> FaultPlan {
            self.latency_jitter = Some((StdRng::seed_from_u64(seed), max));
            self
        }

        /// Restrict the mode to a subset of calls by request context.
        pub fn with_scope(mut self, scope: FaultScope) -> FaultPlan {
            self.scope = scope;
            self
        }
    }

    /// A [`Backend`] wrapper that injects faults and latency according to a
    /// [`FaultPlan`], so every layer above the ODBC-server abstraction can
    /// be exercised against a misbehaving target without a real one.
    ///
    /// Counts the calls that actually reached it — the ground truth for
    /// retry and fast-fail assertions.
    pub struct FaultInjectingBackend {
        inner: Arc<dyn Backend>,
        plan: Mutex<FaultPlan>,
        attempts: AtomicU64,
        injected: AtomicU64,
        resets: AtomicU64,
        failing_resets: AtomicU64,
    }

    impl FaultInjectingBackend {
        pub fn wrap(inner: Arc<dyn Backend>, plan: FaultPlan) -> Arc<FaultInjectingBackend> {
            Arc::new(FaultInjectingBackend {
                inner,
                plan: Mutex::new(plan),
                attempts: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                resets: AtomicU64::new(0),
                failing_resets: AtomicU64::new(0),
            })
        }

        /// Calls that reached this backend (including injected failures).
        pub fn attempts(&self) -> u64 {
            self.attempts.load(Ordering::Relaxed)
        }

        /// Failures injected so far.
        pub fn injected_faults(&self) -> u64 {
            self.injected.load(Ordering::Relaxed)
        }

        /// `reset_session` calls that reached this backend.
        pub fn resets(&self) -> u64 {
            self.resets.load(Ordering::Relaxed)
        }

        /// Make the next `n` `reset_session` calls fail with
        /// `ConnectionLost` (reconnect storms).
        pub fn fail_next_resets(&self, n: u64) {
            self.failing_resets.store(n, Ordering::Relaxed);
        }

        /// Replace the active schedule (e.g. heal the target mid-test).
        pub fn set_plan(&self, plan: FaultPlan) {
            *self.plan.lock() = plan;
        }

        fn next_fault(&self, sql: &str, ctx: RequestContext) -> Option<BackendErrorKind> {
            let mut plan = self.plan.lock();
            if !plan.latency.is_zero() {
                std::thread::sleep(plan.latency);
            }
            if let Some((rng, max)) = plan.latency_jitter.as_mut() {
                if !max.is_zero() {
                    let nanos = rng.gen_range(0..=u64::try_from(max.as_nanos()).unwrap_or(u64::MAX));
                    std::thread::sleep(Duration::from_nanos(nanos));
                }
            }
            if !plan.scope.matches(ctx) {
                return None;
            }
            match &mut plan.mode {
                FaultMode::None => None,
                FaultMode::FailNext { remaining, kind } => {
                    if *remaining > 0 {
                        *remaining -= 1;
                        Some(*kind)
                    } else {
                        None
                    }
                }
                FaultMode::AlwaysFail { kind } => Some(*kind),
                FaultMode::Flaky { rate, rng, kind } => rng.gen_bool(*rate).then_some(*kind),
                FaultMode::KillEvery { period, seen, kind } => {
                    if *period == 0 {
                        return None;
                    }
                    *seen += 1;
                    (*seen % *period == 0).then_some(*kind)
                }
                FaultMode::KillOnSqlMatch { needle, remaining, kind } => {
                    if *remaining > 0 && sql.to_ascii_uppercase().contains(needle.as_str()) {
                        *remaining -= 1;
                        Some(*kind)
                    } else {
                        None
                    }
                }
                FaultMode::KillList { calls, seen, kind } => {
                    *seen += 1;
                    calls.contains(seen).then_some(*kind)
                }
            }
        }
    }

    impl Backend for FaultInjectingBackend {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            self.execute_ctx(sql, RequestContext::from_sql(sql))
        }

        fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            if let Some(kind) = self.next_fault(sql, ctx) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(BackendError::new(
                    kind,
                    format!("injected {kind} fault from {}", self.inner.name()),
                ));
            }
            self.inner.execute_ctx(sql, ctx)
        }

        fn table_meta(&self, name: &str) -> Option<TableDef> {
            self.inner.table_meta(name)
        }

        fn reset_session(&self) -> Result<(), BackendError> {
            self.resets.fetch_add(1, Ordering::Relaxed);
            let failing = self.failing_resets.load(Ordering::Relaxed);
            if failing > 0 {
                self.failing_resets.store(failing - 1, Ordering::Relaxed);
                return Err(BackendError::connection_lost("injected reconnect failure"));
            }
            self.inner.reset_session()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_maps_common_messages() {
        let cases = [
            ("query timed out after 30s", BackendErrorKind::Timeout),
            ("connection reset by peer", BackendErrorKind::ConnectionLost),
            ("too many concurrent requests", BackendErrorKind::Rejected),
            ("admission control queue full", BackendErrorKind::Rejected),
            ("deadlock detected", BackendErrorKind::Transient),
            ("resource temporarily unavailable", BackendErrorKind::Transient),
            ("syntax error at or near FROM", BackendErrorKind::Fatal),
        ];
        for (msg, want) in cases {
            assert_eq!(BackendError::classify(msg).kind, want, "{msg}");
        }
    }

    #[test]
    fn unknown_messages_default_to_fatal() {
        assert_eq!(BackendError::classify("disk quota exceeded").kind, BackendErrorKind::Fatal);
        assert!(!BackendError::classify("whatever").kind.is_retryable());
    }

    #[test]
    fn request_context_replay_safety() {
        assert!(RequestContext::read_only().allows_retry());
        assert!(!RequestContext::write().allows_retry());
        assert!(!RequestContext { idempotent: true, in_transaction: true }.allows_retry());
        assert!(RequestContext::from_sql("  SEL * FROM T").idempotent);
        assert!(RequestContext::from_sql("WITH X AS (SELECT 1) SELECT * FROM X").idempotent);
        assert!(!RequestContext::from_sql("INSERT INTO T VALUES (1)").idempotent);
        assert!(!RequestContext::from_sql("").idempotent);
    }

    #[test]
    fn fault_plan_fail_n_then_succeed() {
        use testing::*;
        let inner = Arc::new(ScriptedBackend::acking(vec![]));
        let fb = FaultInjectingBackend::wrap(
            inner as Arc<dyn Backend>,
            FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
        );
        assert_eq!(fb.execute("SEL 1").unwrap_err().kind, BackendErrorKind::Transient);
        assert_eq!(fb.execute("SEL 1").unwrap_err().kind, BackendErrorKind::Transient);
        assert!(fb.execute("SEL 1").is_ok());
        assert_eq!(fb.attempts(), 3);
        assert_eq!(fb.injected_faults(), 2);
    }

    #[test]
    fn flaky_plan_is_deterministic_for_a_seed() {
        use testing::*;
        let outcomes = |seed: u64| -> Vec<bool> {
            let inner = Arc::new(ScriptedBackend::acking(vec![]));
            let fb = FaultInjectingBackend::wrap(
                inner as Arc<dyn Backend>,
                FaultPlan::flaky(0.5, seed, BackendErrorKind::Transient),
            );
            (0..32).map(|_| fb.execute("SEL 1").is_ok()).collect()
        };
        assert_eq!(outcomes(7), outcomes(7), "same seed, same schedule");
        assert_ne!(outcomes(7), outcomes(8), "different seeds should diverge");
    }
}
