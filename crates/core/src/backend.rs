//! The backend abstraction — the paper's "ODBC Server" component (§4.5).
//!
//! "An abstraction of ODBC APIs that allows Hyper-Q to communicate with
//! different target database systems using their corresponding ODBC
//! drivers." Here the driver FFI is replaced by a trait; the bundled
//! implementation is `hyperq-engine`'s in-process warehouse, and tests use
//! scripted fakes.

use std::sync::Arc;

use hyperq_obs::{Counter, Histogram, ObsContext};
use hyperq_xtra::catalog::TableDef;
use hyperq_xtra::schema::Schema;
use hyperq_xtra::Row;

/// Error from the target database.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendError(pub String);

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backend error: {}", self.0)
    }
}

impl std::error::Error for BackendError {}

/// Result of executing one request on the target.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Result schema; empty for DML/DDL.
    pub schema: Schema,
    /// Result rows; empty for DML/DDL.
    pub rows: Vec<Row>,
    /// Rows affected (DML) or returned (queries).
    pub row_count: u64,
}

impl ExecResult {
    /// An empty DDL/utility acknowledgement.
    pub fn ack() -> ExecResult {
        ExecResult { schema: Schema::empty(), rows: Vec::new(), row_count: 0 }
    }

    /// A DML acknowledgement with an affected-row count.
    pub fn affected(n: u64) -> ExecResult {
        ExecResult { schema: Schema::empty(), rows: Vec::new(), row_count: n }
    }

    pub fn rows(schema: Schema, rows: Vec<Row>) -> ExecResult {
        let row_count = rows.len() as u64;
        ExecResult { schema, rows, row_count }
    }
}

/// A target database connection.
///
/// `execute` submits one SQL-B statement. `table_meta` is the catalog
/// lookup the binder performs against the target (the ODBC catalog-function
/// equivalent).
pub trait Backend: Send + Sync {
    /// Target system name (for diagnostics).
    fn name(&self) -> &str;

    /// Execute one statement of target-dialect SQL.
    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError>;

    /// Look up a table's definition in the target catalog (normalized
    /// upper-case name).
    fn table_meta(&self, name: &str) -> Option<TableDef>;
}

/// A transparent [`Backend`] wrapper that reports per-call metrics into an
/// observability context: round-trips, errors, rows returned/affected, a
/// call-latency histogram, and catalog-lookup counts — all labeled with the
/// wrapped backend's name.
pub struct InstrumentedBackend {
    inner: Arc<dyn Backend>,
    calls: Arc<Counter>,
    errors: Arc<Counter>,
    rows: Arc<Counter>,
    catalog_lookups: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl InstrumentedBackend {
    /// Wrap `inner`, resolving metric handles once. The wrapper is
    /// transparent — callers still see the inner backend's `name()`.
    pub fn wrap(inner: Arc<dyn Backend>, obs: &ObsContext) -> Arc<dyn Backend> {
        let labels = &[("backend", inner.name())][..];
        let m = &obs.metrics;
        Arc::new(InstrumentedBackend {
            calls: m.counter("hyperq_backend_requests_total", labels),
            errors: m.counter("hyperq_backend_errors_total", labels),
            rows: m.counter("hyperq_backend_rows_total", labels),
            catalog_lookups: m.counter("hyperq_backend_catalog_lookups_total", labels),
            latency: m.histogram("hyperq_backend_request_duration_seconds", labels),
            inner,
        })
    }
}

impl Backend for InstrumentedBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        self.calls.inc();
        let t0 = std::time::Instant::now();
        let result = self.inner.execute(sql);
        self.latency.record(t0.elapsed());
        match &result {
            Ok(r) => self.rows.add(r.row_count),
            Err(_) => self.errors.inc(),
        }
        result
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        self.catalog_lookups.inc();
        self.inner.table_meta(name)
    }
}

/// Test-support backends (kept in the library so integration tests and
/// downstream users can fault-inject without a real target).
pub mod testing {
    use super::*;
    use parking_lot::Mutex;

    /// A scripted backend: records every SQL string it is asked to run and
    /// returns canned results (or injected faults).
    /// Canned response function.
    pub type Responder = Box<dyn Fn(&str) -> Result<ExecResult, BackendError> + Send + Sync>;

    pub struct ScriptedBackend {
        pub log: Mutex<Vec<String>>,
        pub tables: Vec<TableDef>,
        pub responder: Responder,
    }

    impl ScriptedBackend {
        pub fn acking(tables: Vec<TableDef>) -> Self {
            ScriptedBackend {
                log: Mutex::new(Vec::new()),
                tables,
                responder: Box::new(|_| Ok(ExecResult::ack())),
            }
        }

        pub fn sql_log(&self) -> Vec<String> {
            self.log.lock().clone()
        }
    }

    impl Backend for ScriptedBackend {
        fn name(&self) -> &str {
            "scripted"
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            self.log.lock().push(sql.to_string());
            (self.responder)(sql)
        }

        fn table_meta(&self, name: &str) -> Option<TableDef> {
            self.tables
                .iter()
                .find(|t| {
                    t.name.eq_ignore_ascii_case(name)
                        || t.base_name().eq_ignore_ascii_case(name)
                })
                .cloned()
        }
    }
}
