//! Workload-study instrumentation (§7.1).
//!
//! Aggregates the per-statement [`FeatureSet`]s the pipeline reports into
//! the two statistics of Figure 8:
//!
//! * **8a** — for each rewrite class, the percentage of its 9 tracked
//!   features that appear at least once in the workload;
//! * **8b** — the percentage of *distinct* queries affected by each class
//!   ("within each class a query is counted at most once, even if it has
//!   more than one of the tracked features of that class, but a query may
//!   belong to two different rewriting categories").

use std::collections::HashMap;

use hyperq_xtra::feature::{Feature, FeatureClass, FeatureSet};

/// Accumulates feature observations over a workload.
#[derive(Debug, Default, Clone)]
pub struct WorkloadTracker {
    /// Total statements observed (including repeats).
    pub total_queries: u64,
    /// Distinct query texts → the features observed for that query.
    distinct: HashMap<String, FeatureSet>,
    /// Union of all features seen.
    seen: FeatureSet,
}

/// One class row of Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    pub class: FeatureClass,
    /// 8a: share of the class's 9 tracked features observed at least once.
    pub feature_coverage_pct: f64,
    /// 8b: share of distinct queries containing at least one feature of
    /// this class.
    pub queries_affected_pct: f64,
    /// The features of this class that were observed.
    pub features_seen: Vec<Feature>,
}

impl WorkloadTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed statement. `query_text` identifies the distinct
    /// query (normalized by the caller if desired).
    pub fn observe(&mut self, query_text: &str, features: &FeatureSet) {
        self.total_queries += 1;
        self.seen.union(features);
        self.distinct
            .entry(query_text.to_string())
            .or_default()
            .union(features);
    }

    pub fn distinct_queries(&self) -> u64 {
        self.distinct.len() as u64
    }

    /// Compute the Figure 8 statistics.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        let distinct_total = self.distinct.len().max(1) as f64;
        FeatureClass::ALL
            .iter()
            .map(|&class| {
                let class_features: Vec<Feature> = Feature::ALL
                    .iter()
                    .copied()
                    .filter(|f| f.class() == class)
                    .collect();
                let seen: Vec<Feature> = class_features
                    .iter()
                    .copied()
                    .filter(|f| self.seen.contains(*f))
                    .collect();
                let affected = self
                    .distinct
                    .values()
                    .filter(|fs| fs.has_class(class))
                    .count();
                ClassStats {
                    class,
                    feature_coverage_pct: 100.0 * seen.len() as f64
                        / class_features.len() as f64,
                    queries_affected_pct: 100.0 * affected as f64 / distinct_total,
                    features_seen: seen,
                }
            })
            .collect()
    }

    /// Per-feature distinct-query counts (drill-down beyond the paper's
    /// charts).
    pub fn feature_counts(&self) -> Vec<(Feature, u64)> {
        Feature::ALL
            .iter()
            .map(|&f| {
                (
                    f,
                    self.distinct.values().filter(|fs| fs.contains(f)).count() as u64,
                )
            })
            .collect()
    }
}

/// Render the paper's Table 2 (feature → category → rewrite → component)
/// from the feature registry.
pub fn table2() -> Vec<(Feature, FeatureClass, &'static str, &'static str)> {
    Feature::ALL
        .iter()
        .map(|&f| (f, f.class(), f.rewrite_synopsis(), f.component().name()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(features: &[Feature]) -> FeatureSet {
        let mut s = FeatureSet::new();
        for f in features {
            s.insert(*f);
        }
        s
    }

    #[test]
    fn distinct_counting_dedupes_repeats() {
        let mut t = WorkloadTracker::new();
        for _ in 0..10 {
            t.observe("SELECT 1", &fs(&[Feature::Qualify]));
        }
        t.observe("SELECT 2", &fs(&[]));
        assert_eq!(t.total_queries, 11);
        assert_eq!(t.distinct_queries(), 2);
    }

    #[test]
    fn class_stats_match_hand_computation() {
        let mut t = WorkloadTracker::new();
        // 4 distinct queries: 2 with transformation features, 1 with an
        // emulation feature, 1 clean.
        t.observe("q1", &fs(&[Feature::Qualify, Feature::ImplicitJoin]));
        t.observe("q2", &fs(&[Feature::OrdinalGroupBy]));
        t.observe("q3", &fs(&[Feature::MacroStatement]));
        t.observe("q4", &fs(&[]));
        let stats = t.class_stats();
        let transform = stats
            .iter()
            .find(|s| s.class == FeatureClass::Transformation)
            .unwrap();
        // 3 of 9 transformation features seen.
        assert!((transform.feature_coverage_pct - 33.333).abs() < 0.01);
        // 2 of 4 distinct queries affected.
        assert!((transform.queries_affected_pct - 50.0).abs() < 1e-9);
        let emu = stats
            .iter()
            .find(|s| s.class == FeatureClass::Emulation)
            .unwrap();
        assert!((emu.queries_affected_pct - 25.0).abs() < 1e-9);
        let trans = stats
            .iter()
            .find(|s| s.class == FeatureClass::Translation)
            .unwrap();
        assert_eq!(trans.queries_affected_pct, 0.0);
    }

    #[test]
    fn query_counted_once_per_class() {
        // A query with three transformation features counts once for 8b.
        let mut t = WorkloadTracker::new();
        t.observe(
            "q",
            &fs(&[
                Feature::Qualify,
                Feature::ImplicitJoin,
                Feature::VectorSubquery,
            ]),
        );
        let stats = t.class_stats();
        let transform = stats
            .iter()
            .find(|s| s.class == FeatureClass::Transformation)
            .unwrap();
        assert_eq!(transform.queries_affected_pct, 100.0);
    }

    #[test]
    fn table2_has_all_27_rows() {
        let rows = table2();
        assert_eq!(rows.len(), 27);
        assert!(rows.iter().all(|(_, _, synopsis, comp)| {
            !synopsis.is_empty() && !comp.is_empty()
        }));
    }
}
