//! Per-connection session state and the DTM shadow catalog.
//!
//! Several emulated features require "state information maintained in the
//! application layer" (paper §2.1, Emulation): macro and procedure
//! definitions, view definitions, global-temporary-table definitions, and
//! the session settings that `HELP SESSION` reports. These live in the
//! **DTM catalog** (Table 2's name for the mid-tier metadata store), which
//! the binder sees layered *over* the target's own catalog through
//! [`ShadowCatalog`].

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use hyperq_parser::ast as past;
use hyperq_xtra::catalog::{MetadataProvider, TableDef, TableKind, ViewDef};

use crate::backend::Backend;
use crate::recover::SessionJournal;

/// A stored macro or procedure definition.
#[derive(Debug, Clone)]
pub struct RoutineDef {
    pub name: String,
    pub params: Vec<past::MacroParam>,
    pub body: Vec<past::Statement>,
    /// Tracked features observed when the body was parsed, re-reported on
    /// every execution (Figure 8 instrumentation).
    pub features: hyperq_xtra::feature::FeatureSet,
}

/// Per-connection state.
pub struct SessionState {
    pub session_id: u64,
    pub user: String,
    /// Settings surfaced by `HELP SESSION` (E5).
    pub settings: Vec<(String, String)>,
    /// DTM catalog: macros (E2).
    pub macros: HashMap<String, RoutineDef>,
    /// DTM catalog: stored procedures (E3).
    pub procedures: HashMap<String, RoutineDef>,
    /// DTM catalog: views, kept in the mid tier and inlined at bind time —
    /// the substrate for DML-on-view rewriting (E6).
    pub views: HashMap<String, ViewDef>,
    /// DTM catalog: global temporary table definitions (E7); the key is the
    /// logical name, the value the *target-side* per-session definition.
    pub global_temp_defs: HashMap<String, TableDef>,
    /// DTM catalog: sidecar table properties the target cannot store — SET
    /// semantics (E8), non-constant defaults and NOT CASESPECIFIC columns
    /// (E9). Keyed by canonical table name; the value is the table as the
    /// *application* defined it.
    pub dtm_tables: HashMap<String, TableDef>,
    /// Global temp tables already materialized on the target this session.
    pub materialized_gtts: HashSet<String>,
    /// Counter for session-scoped generated object names.
    pub temp_counter: u64,
    pub in_transaction: bool,
    /// Replay journal of target-side session state (settings pushed to the
    /// target, GTT materializations, orphaned emulation temps) — shared
    /// with the [`crate::recover::RecoveringBackend`] that replays it after
    /// a lost connection.
    pub journal: SessionJournal,
}

impl SessionState {
    pub fn new(session_id: u64, user: &str) -> Self {
        SessionState {
            session_id,
            user: user.to_string(),
            settings: vec![
                ("TRANSACTION SEMANTICS".to_string(), "TERADATA".to_string()),
                ("CHARACTER SET".to_string(), "UTF8".to_string()),
                ("COLLATION".to_string(), "ASCII".to_string()),
                ("DATEFORM".to_string(), "INTEGERDATE".to_string()),
                ("DEFAULT DATABASE".to_string(), "DBC".to_string()),
            ],
            macros: HashMap::new(),
            procedures: HashMap::new(),
            views: HashMap::new(),
            global_temp_defs: HashMap::new(),
            dtm_tables: HashMap::new(),
            materialized_gtts: HashSet::new(),
            temp_counter: 0,
            in_transaction: false,
            journal: SessionJournal::new(),
        }
    }

    /// Generate a session-unique object name.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        self.temp_counter += 1;
        format!("{prefix}_S{}_{}", self.session_id, self.temp_counter)
    }

    /// The session's *settings epoch*: a hash over the effective session
    /// settings that changes whenever a `SET` changes an effective value.
    /// Part of the translation-cache key, so sessions with different
    /// settings never share a cached translation while sessions with
    /// identical settings do.
    pub fn settings_epoch(&self) -> u64 {
        let mut buf = String::new();
        for (k, v) in &self.settings {
            buf.push_str(k);
            buf.push('\u{1f}');
            buf.push_str(v);
            buf.push('\u{1e}');
        }
        hyperq_parser::fingerprint::fnv1a(buf.as_bytes())
    }

    /// Order-independent hash over the session-local DTM catalog objects
    /// the binder can see (views, global-temporary definitions, sidecar
    /// table properties). Part of the translation-cache key: session-local
    /// DDL moves the session to a fresh key space instead of invalidating
    /// other sessions' entries.
    pub fn catalog_epoch(&self) -> u64 {
        use hyperq_parser::fingerprint::fnv1a;
        let mut h = 0u64;
        for (k, v) in &self.views {
            h ^= fnv1a(format!("V\u{1f}{k}\u{1f}{:?}\u{1f}{}", v.columns, v.body_sql).as_bytes());
        }
        for (k, v) in &self.global_temp_defs {
            h ^= fnv1a(format!("G\u{1f}{k}\u{1f}{v:?}").as_bytes());
        }
        for (k, v) in &self.dtm_tables {
            h ^= fnv1a(format!("T\u{1f}{k}\u{1f}{v:?}").as_bytes());
        }
        h
    }

    /// The session's effective default database for unqualified table
    /// names, or `None` for the factory default (`DBC`, which maps to the
    /// target's own unqualified namespace). `SET SESSION DATABASE = '…'`
    /// stores the quoted value; later entries win over earlier ones.
    pub fn default_database(&self) -> Option<&str> {
        self.settings
            .iter()
            .rev()
            .find(|(k, _)| {
                k.eq_ignore_ascii_case("DATABASE") || k.eq_ignore_ascii_case("DEFAULT DATABASE")
            })
            .map(|(_, v)| v.trim().trim_matches('\''))
            .filter(|v| !v.is_empty() && !v.eq_ignore_ascii_case("DBC"))
    }

    /// The per-session target-side name of a global temporary table.
    pub fn gtt_target_name(&self, logical: &str) -> String {
        format!("GTT_{}_S{}", logical.replace('.', "_"), self.session_id)
    }
}

/// The binder-facing catalog: DTM objects layered over the target's.
///
/// Records every global-temporary lookup so the crosscompiler can lazily
/// materialize the per-session instance before executing the statement.
pub struct ShadowCatalog<'a> {
    pub backend: &'a dyn Backend,
    pub session: &'a SessionState,
    /// Extra overlay tables (used by recursion emulation to map the
    /// recursive CTE name onto the WorkTable/TempTable).
    pub overlay: HashMap<String, TableDef>,
    /// Logical names of GTTs this statement touched.
    pub gtt_touched: RefCell<HashSet<String>>,
    /// Base names (uppercase, unqualified) of every table this statement
    /// resolved — the invalidation scope of its cached translation.
    pub tables_touched: RefCell<HashSet<String>>,
}

impl<'a> ShadowCatalog<'a> {
    pub fn new(backend: &'a dyn Backend, session: &'a SessionState) -> Self {
        ShadowCatalog {
            backend,
            session,
            overlay: HashMap::new(),
            gtt_touched: RefCell::new(HashSet::new()),
            tables_touched: RefCell::new(HashSet::new()),
        }
    }

    pub fn with_overlay(mut self, name: &str, def: TableDef) -> Self {
        self.overlay.insert(name.to_ascii_uppercase(), def);
        self
    }

    fn record_table(&self, resolved: &str) {
        let base = resolved.rsplit('.').next().unwrap_or(resolved);
        self.tables_touched.borrow_mut().insert(base.to_string());
    }
}

impl<'a> MetadataProvider for ShadowCatalog<'a> {
    fn table(&self, name: &str) -> Option<TableDef> {
        let upper = name.to_ascii_uppercase();
        if let Some(def) = self.overlay.get(&upper) {
            return Some(def.clone());
        }
        // Sidecar-augmented definitions take precedence: the target's
        // catalog has lost SET semantics, defaults and case-insensitivity.
        if let Some(def) = self.session.dtm_tables.get(&upper) {
            // The table must still exist on the target.
            if self.backend.table_meta(&upper).is_some() {
                self.record_table(&upper);
                return Some(def.clone());
            }
        }
        // Global temporary definitions: resolve to the per-session target
        // instance (created lazily).
        if let Some(def) = self.session.global_temp_defs.get(&upper) {
            self.gtt_touched.borrow_mut().insert(upper.clone());
            let mut instance = def.clone();
            instance.name = self.session.gtt_target_name(&upper);
            instance.kind = TableKind::Temporary;
            return Some(instance);
        }
        // Unqualified names resolve against the session's default
        // database first (Teradata `SET SESSION DATABASE` semantics),
        // falling back to the target's bare namespace.
        if !upper.contains('.') {
            if let Some(db) = self.session.default_database() {
                let qualified = format!("{}.{upper}", db.to_ascii_uppercase());
                if let Some(mut def) = self.backend.table_meta(&qualified) {
                    self.record_table(&qualified);
                    def.name = qualified;
                    return Some(def);
                }
            }
        }
        if let Some(def) = self.backend.table_meta(&upper) {
            self.record_table(&upper);
            return Some(def);
        }
        None
    }

    fn view(&self, name: &str) -> Option<ViewDef> {
        let upper = name.to_ascii_uppercase();
        self.session
            .views
            .get(&upper)
            .or_else(|| {
                // Also allow lookup by base name.
                let base = upper.rsplit('.').next().unwrap_or(&upper);
                self.session.views.get(base)
            })
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::testing::ScriptedBackend;
    use hyperq_xtra::catalog::ColumnDef;
    use hyperq_xtra::types::SqlType;

    #[test]
    fn gtt_lookup_maps_to_session_instance_and_records_touch() {
        let backend = ScriptedBackend::acking(vec![]);
        let mut session = SessionState::new(7, "APP");
        session.global_temp_defs.insert(
            "STAGE".to_string(),
            TableDef {
                name: "STAGE".to_string(),
                columns: vec![ColumnDef::new("A", SqlType::Integer, true)],
                set_semantics: false,
                kind: TableKind::GlobalTemporary,
            },
        );
        let cat = ShadowCatalog::new(&backend, &session);
        let def = cat.table("stage").expect("resolves");
        assert_eq!(def.name, "GTT_STAGE_S7");
        assert_eq!(def.kind, TableKind::Temporary);
        assert!(cat.gtt_touched.borrow().contains("STAGE"));
    }

    #[test]
    fn overlay_takes_precedence() {
        let backend = ScriptedBackend::acking(vec![TableDef::new("R", vec![])]);
        let session = SessionState::new(1, "APP");
        let cat = ShadowCatalog::new(&backend, &session).with_overlay(
            "R",
            TableDef::new("TT_1", vec![ColumnDef::new("X", SqlType::Integer, true)]),
        );
        assert_eq!(cat.table("R").unwrap().name, "TT_1");
    }

    #[test]
    fn fresh_names_are_unique() {
        let mut s = SessionState::new(3, "U");
        let a = s.fresh_name("WT");
        let b = s.fresh_name("WT");
        assert_ne!(a, b);
        assert!(a.starts_with("WT_S3_"));
    }
}
