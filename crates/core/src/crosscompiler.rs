//! The cross compiler: the façade that drives parse → bind → transform →
//! serialize → execute, routes emulated features through the mid tier, and
//! instruments per-stage timing (the Figure 9 measurements).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq_parser::ast as past;
use hyperq_parser::fingerprint::{fingerprint, fnv1a, redact_literals};
use hyperq_parser::{parse_statements, Dialect, ParsedStatement};
use hyperq_xtra::catalog::{ColumnDef, MetadataProvider, TableDef, TableKind, ViewDef};
use hyperq_xtra::datum::Datum;
use hyperq_xtra::expr::ScalarExpr;
use hyperq_xtra::feature::{Feature, FeatureSet};
use hyperq_xtra::rel::{Plan, RelExpr, SetOpKind};

use hyperq_obs::provenance::{self, CacheOutcome, FinishedStatement};
use hyperq_obs::{Counter, Histogram, ObsContext, TraceId};

use crate::analyze::{AnalyzeMode, Analyzer};
use crate::backend::{Backend, ExecResult, InstrumentedBackend, RequestContext};
use crate::binder::Binder;
use crate::builder::{HyperQBuilder, Request, Response};
use crate::cache::{CacheFill, CacheKey, TranslationCache};
use crate::capability::TargetCapabilities;
use crate::targets::TargetProfile;
use crate::conformance::{Conformance, ConformanceMode};
use crate::emulate::{self, EmulationKind};
use crate::error::{HyperQError, Result};
use crate::recover::{RecoverConfig, RecoveringBackend};
use crate::serialize::{LimitSpelling, Serializer};
use crate::session::{RoutineDef, SessionState, ShadowCatalog};
use crate::tracker::WorkloadTracker;
use crate::transform::Transformer;

/// Per-statement stage timings (the paper's Figure 9 instrumentation),
/// now defined in `hyperq-obs` so every layer can report timings without
/// depending on this crate.
pub use hyperq_obs::StageTimings;

/// Backwards-compatible alias for the pre-observability name.
pub type Timings = StageTimings;

/// The outcome of one application statement.
#[derive(Debug, Clone)]
pub struct StatementResult {
    pub result: ExecResult,
    /// All tracked features observed across parse, bind and transform.
    pub features: FeatureSet,
    pub timings: Timings,
    /// Every SQL request sent to the target for this statement (emulated
    /// features send several).
    pub sql_sent: Vec<String>,
    /// Trace id of the statement's span tree (set by `run` and its
    /// wrappers; `None` for internal sub-statements).
    pub trace_id: Option<TraceId>,
}

/// Backwards-compatible alias for the pre-`Response` name.
pub type StatementOutcome = StatementResult;

static SESSION_COUNTER: AtomicU64 = AtomicU64::new(1);

/// Hard bound on emulated recursion depth.
const MAX_RECURSION_STEPS: usize = 10_000;

/// Pre-resolved handles for the per-stage latency histograms and statement
/// counters, looked up once per session so the hot path touches atomics
/// only.
struct StageHandles {
    parse: Arc<Histogram>,
    bind: Arc<Histogram>,
    transform: Arc<Histogram>,
    serialize: Arc<Histogram>,
    execute: Arc<Histogram>,
    statement: Arc<Histogram>,
    statements_ok: Arc<Counter>,
    statements_err: Arc<Counter>,
    /// Workload-study gauges (Figure 8), per session: statements observed
    /// and distinct query texts seen.
    workload_total: Arc<hyperq_obs::Gauge>,
    workload_distinct: Arc<hyperq_obs::Gauge>,
}

/// The stage-latency histogram family shared by the whole pipeline
/// (`convert` is recorded by the wire layer under the same name).
pub const STAGE_DURATION_METRIC: &str = "hyperq_stage_duration_seconds";

impl StageHandles {
    fn new(obs: &ObsContext, session_id: u64) -> Self {
        let stage = |s| obs.metrics.histogram(STAGE_DURATION_METRIC, &[("stage", s)]);
        let sid = session_id.to_string();
        StageHandles {
            parse: stage("parse"),
            bind: stage("bind"),
            transform: stage("transform"),
            serialize: stage("serialize"),
            execute: stage("execute"),
            statement: stage("statement"),
            statements_ok: obs
                .metrics
                .counter("hyperq_statements_total", &[("outcome", "ok")]),
            statements_err: obs
                .metrics
                .counter("hyperq_statements_total", &[("outcome", "error")]),
            workload_total: obs
                .metrics
                .gauge("hyperq_workload_queries", &[("session", &sid)]),
            workload_distinct: obs
                .metrics
                .gauge("hyperq_workload_distinct_queries", &[("session", &sid)]),
        }
    }
}

/// One virtualized connection: Teradata-dialect SQL in, target execution
/// out.
pub struct HyperQ {
    backend: Arc<dyn Backend>,
    /// The session's target: capability signature + dialect flavor +
    /// registry name (the value of every `target` metric label). A
    /// [`Request`] may override it for one request via `ctx.target`.
    profile: TargetProfile,
    transformer: Transformer,
    pub session: SessionState,
    /// The single-row DML batching transformation (§4.3). On by default;
    /// the ablation benchmark turns it off.
    pub dml_batching: bool,
    obs: Arc<ObsContext>,
    stages: StageHandles,
    /// Workload-study statistics (Figure 8), fed automatically by
    /// `run_script` / `run_with_params`.
    tracker: WorkloadTracker,
    /// Static-analysis driver: plan validation at stage boundaries,
    /// per-rule transformation audits, serializer round-trip checks.
    analyzer: Analyzer,
    /// Capability-conformance linter: token walk over serialized SQL
    /// against the target's capability signature, plus advisory
    /// anti-pattern lints over source statements.
    conformance: Conformance,
    /// The compiled-translation cache (possibly shared with other
    /// sessions); `None` disables caching entirely.
    cache: Option<Arc<TranslationCache>>,
    /// Scratch: the cacheable artifacts of the most recent
    /// `run_pipeline_with` run, consumed by `maybe_populate`.
    cache_seed: Option<CacheSeed>,
    /// FNV-1a signature of the target profile (registry name, capability
    /// signature and flavor), precomputed for the cache-key context hash.
    caps_sig: u64,
    /// The replica set behind this session's backend stack, when built via
    /// `HyperQBuilder::replicas` (exposed for health snapshots).
    replication: Option<Arc<crate::replicate::ReplicatedBackend>>,
    /// Keeps the background health prober alive for the session's
    /// lifetime; dropping the session stops and joins it.
    _replica_prober: Option<crate::repair::ProberHandle>,
}

/// What a successful standard-path pipeline run leaves behind for the
/// translation cache.
struct CacheSeed {
    sql: String,
    is_query: bool,
    tables: Vec<String>,
    /// A mid-tier emulation injected a value that changes between
    /// executions (e.g. a `DEFAULT CURRENT_DATE` column): never cache.
    volatile: bool,
}

/// Everything [`HyperQBuilder`] resolved for a session.
pub(crate) struct BuildSpec {
    pub backend: Arc<dyn Backend>,
    pub profile: TargetProfile,
    pub obs: Arc<ObsContext>,
    pub analyze: AnalyzeMode,
    pub conformance: ConformanceMode,
    pub cache: Option<Arc<TranslationCache>>,
    pub recover: RecoverConfig,
    pub dml_batching: bool,
    /// When the builder assembled a replica set, the replicated backend
    /// itself (already part of `backend`'s stack) plus its health prober,
    /// so the session can expose replica state and owns the prober thread.
    pub replication: Option<Arc<crate::replicate::ReplicatedBackend>>,
    pub prober: Option<crate::repair::ProberHandle>,
}

impl HyperQ {
    pub(crate) fn from_spec(spec: BuildSpec) -> Self {
        let id = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
        let stages = StageHandles::new(&spec.obs, id);
        let analyzer = Analyzer::new(spec.analyze, &spec.obs);
        let conformance = Conformance::new(spec.conformance, &spec.obs);
        let session = SessionState::new(id, "APP");
        // Backend stack, outermost first: instrumentation sees all traffic
        // (including replay), recovery turns ConnectionLost into reconnect +
        // journal replay, and whatever policy layers the caller wrapped
        // (resilience, replication) sit below.
        let recovering = RecoveringBackend::wrap(
            spec.backend,
            session.journal.clone(),
            spec.recover,
            Arc::clone(&spec.obs),
        );
        let caps_sig = profile_sig(&spec.profile);
        // Slow-query-log entries store literal-redacted SQL unless raw
        // capture was opted into; the redactor reuses the fingerprinter's
        // literal spans so it stays in lockstep with the lexer.
        if !spec.obs.slowlog.has_redactor() {
            spec.obs.slowlog.install_redactor(redact_literals);
        }
        HyperQ {
            backend: InstrumentedBackend::wrap(recovering, &spec.obs),
            profile: spec.profile,
            transformer: Transformer::standard().instrumented(&spec.obs.metrics),
            session,
            dml_batching: spec.dml_batching,
            obs: spec.obs,
            stages,
            tracker: WorkloadTracker::new(),
            analyzer,
            conformance,
            cache: spec.cache,
            cache_seed: None,
            caps_sig,
            replication: spec.replication,
            _replica_prober: spec.prober,
        }
    }

    #[deprecated(note = "use HyperQBuilder::for_target(backend, profile).build()")]
    pub fn new(backend: Arc<dyn Backend>, caps: TargetCapabilities) -> Self {
        HyperQBuilder::for_target(backend, TargetProfile::from_caps(caps)).build()
    }

    /// A session reporting into the given observability context instead of
    /// the process-wide one (isolated metrics/traces for tests).
    #[deprecated(note = "use HyperQBuilder::for_target(backend, profile).obs(obs).build()")]
    pub fn with_obs(
        backend: Arc<dyn Backend>,
        caps: TargetCapabilities,
        obs: Arc<ObsContext>,
    ) -> Self {
        HyperQBuilder::for_target(backend, TargetProfile::from_caps(caps)).obs(obs).build()
    }

    /// Set the static-analysis mode: `Strict` fails statements on any
    /// invariant violation, rule-audit failure, or serializer round-trip
    /// divergence (tests, CI); `LogOnly` (the default) only counts them;
    /// `Off` skips the validation walks.
    #[deprecated(note = "use HyperQBuilder::for_target(backend, profile).analyze(mode).build()")]
    pub fn with_analysis(mut self, mode: AnalyzeMode) -> Self {
        self.analyzer = Analyzer::new(mode, &self.obs);
        self
    }

    /// The active static-analysis mode.
    pub fn analysis_mode(&self) -> AnalyzeMode {
        self.analyzer.mode()
    }

    /// The active capability-conformance lint mode.
    pub fn conformance_mode(&self) -> ConformanceMode {
        self.conformance.mode()
    }

    pub fn capabilities(&self) -> &TargetCapabilities {
        &self.profile.caps
    }

    /// The session's target profile (capabilities + dialect flavor).
    pub fn profile(&self) -> &TargetProfile {
        &self.profile
    }

    /// The session's target registry name (`"simwh"`, `"cloud-a"`, …) —
    /// the value carried on `target` metric labels and provenance records.
    pub fn target(&self) -> &str {
        &self.profile.name
    }

    /// The translation cache this session consults, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<TranslationCache>> {
        self.cache.as_ref()
    }

    /// The replica set behind this session, when one was configured via
    /// [`HyperQBuilder::replicas`](crate::builder::HyperQBuilder::replicas).
    pub fn replication(&self) -> Option<&Arc<crate::replicate::ReplicatedBackend>> {
        self.replication.as_ref()
    }

    /// The observability context this session reports into.
    pub fn obs(&self) -> &Arc<ObsContext> {
        &self.obs
    }

    /// Workload-study statistics accumulated over every statement this
    /// session has run.
    pub fn tracker(&self) -> &WorkloadTracker {
        &self.tracker
    }

    /// Execute one canonical [`Request`] — the single entry point behind
    /// `run_one`, `run_script` and `run_with_params`.
    ///
    /// Single-statement requests without parameters first consult the
    /// translation cache: on a hit the entire parse → bind → transform →
    /// serialize pipeline is skipped and the cached SQL-B (with the
    /// statement's literals re-spliced) goes straight to the backend.
    pub fn run(&mut self, req: Request) -> Result<Response> {
        // Per-request target override: swap the session's profile (and the
        // cache-key signature derived from it) for the request's scope and
        // restore it on every exit path. Translations for the override
        // target key the cache under its own signature, so cross-target
        // pollution is impossible.
        let saved = match req.ctx.target.as_deref() {
            Some(name) if name != self.profile.name => {
                let p = crate::targets::lookup(name).ok_or_else(|| {
                    HyperQError::Transform(format!("unknown target profile '{name}'"))
                })?;
                let sig = profile_sig(&p);
                Some((
                    std::mem::replace(&mut self.profile, p),
                    std::mem::replace(&mut self.caps_sig, sig),
                ))
            }
            _ => None,
        };
        let out = self.run_on_active_profile(req);
        if let Some((profile, sig)) = saved {
            self.profile = profile;
            self.caps_sig = sig;
        }
        out
    }

    fn run_on_active_profile(&mut self, req: Request) -> Result<Response> {
        // Library callers can bound a request by deadline/memory without a
        // gateway: install a standalone governor for the request's scope.
        // When the gateway already installed one (or neither bound is
        // set), this is a no-op and the existing governor stands.
        let _scope = if (req.ctx.timeout.is_some() || req.ctx.memory_budget != 0)
            && hyperq_governor::current().is_none()
        {
            Some(hyperq_governor::install(hyperq_governor::QueryGovernor::standalone(
                req.ctx.timeout,
                req.ctx.memory_budget,
            )))
        } else {
            None
        };
        if !req.params.is_empty() {
            let statement = self.run_parameterized(&req.sql, &req.params)?;
            return Ok(Response { statements: vec![statement] });
        }
        if !req.ctx.bypass_cache {
            if let Some(result) = self.try_cache_fast_path(&req.sql) {
                return result.map(|s| Response { statements: vec![s] });
            }
        }
        let statements = self.run_script_slow(&req.sql, !req.ctx.bypass_cache)?;
        Ok(Response { statements })
    }

    /// Run a script of one or more Teradata-dialect statements.
    pub fn run_script(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        Ok(self.run(Request::script(sql))?.statements)
    }

    /// The full pipeline path: parse the script, route every statement.
    fn run_script_slow(&mut self, sql: &str, cache_ok: bool) -> Result<Vec<StatementResult>> {
        let t0 = Instant::now();
        let mut stmts = parse_statements(sql, Dialect::Teradata)?;
        if self.dml_batching {
            stmts = batch_single_row_inserts(stmts);
        }
        let parse_time = t0.elapsed();
        let mut outcomes = Vec::with_capacity(stmts.len());
        let obs = Arc::clone(&self.obs);
        for (i, ps) in stmts.into_iter().enumerate() {
            let text = ps.text.clone();
            let root = obs.traces.enter("statement");
            let trace = root.trace_id();
            obs.provenance.begin();
            if i == 0 {
                // Script parsing happened before any statement trace
                // existed; charge it to the first statement, mirroring the
                // timings accounting below.
                obs.traces.record_manual(trace, Some(root.id()), "parse", parse_time);
                self.stages.parse.record(parse_time);
                provenance::note_stage("parse", parse_time);
            }
            let processed = self.process(ps, cache_ok);
            // Script parse time happened outside the root span but is
            // charged to the first statement's stages, so fold it into that
            // statement's end-to-end time too.
            let total =
                root.finish() + if i == 0 { parse_time } else { Duration::ZERO };
            let mut outcome = self.observe_statement(processed, trace, &text, total)?;
            if i == 0 {
                outcome.timings.translation += parse_time;
            }
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Try to answer a request from the translation cache without parsing.
    /// `None` falls through to the slow path; `Some` is the statement's
    /// final result (the hit executed, successfully or not).
    fn try_cache_fast_path(&mut self, sql: &str) -> Option<Result<StatementResult>> {
        let cache = Arc::clone(self.cache.as_ref()?);
        if !fast_path_candidate(sql) {
            return None;
        }
        let t0 = Instant::now();
        let fp = fingerprint(sql).ok()?;
        if fp.statements != 1 {
            return None;
        }
        if fp.volatile {
            // The slow path opens the record; park the reason for it.
            provenance::pend_cache_bypass("volatile");
            cache.note_bypass();
            return None;
        }
        let key = CacheKey { fingerprint: fp.hash, ctx: self.translation_ctx() };
        let hit = cache.lookup(&key, &fp.literals, self.session.in_transaction)?;
        if self.analyzer.mode() == AnalyzeMode::Strict
            && hit.is_query
            && hit.hit_seq % cache.revalidate_every() == 0
        {
            // Sampled revalidation: a full re-translation must reproduce
            // the cached SQL byte-for-byte, or the entry dies and the
            // statement takes the slow path.
            if provenance::suspended(|| self.revalidate_hit(sql, &hit.sql)) == Some(true) {
                cache.note_revalidation(true);
            } else {
                cache.note_revalidation(false);
                cache.invalidate_key(&key);
                return None;
            }
        }
        let lookup_time = t0.elapsed();
        let obs = Arc::clone(&self.obs);
        let root = obs.traces.enter("statement");
        let trace = root.trace_id();
        obs.provenance.begin();
        provenance::note_cache(CacheOutcome::Hit);
        provenance::note_stage("cache", lookup_time);
        obs.traces.record_manual(trace, Some(root.id()), "cache", lookup_time);
        let exec_span = obs.traces.enter("execute");
        let exec = self.backend.execute_ctx(&hit.sql, self.request_ctx(hit.is_query));
        let exec_time = exec_span.finish();
        self.stages.execute.record(exec_time);
        provenance::note_stage("execute", exec_time);
        let processed = match exec {
            Ok(result) => Ok(StatementResult {
                result,
                features: hit.features.clone(),
                timings: Timings { translation: lookup_time, execution: exec_time },
                sql_sent: vec![hit.sql],
                trace_id: None,
            }),
            Err(e) => Err(HyperQError::from(e)),
        };
        // The lookup ran before the root span opened; it is part of the
        // statement's end-to-end time all the same.
        let total = root.finish() + lookup_time;
        let text = statement_text(sql).to_string();
        Some(self.observe_statement(processed, trace, &text, total))
    }

    /// Re-translate a cache hit through the full pipeline and compare.
    /// `Some(true)` = byte-identical; anything else is a mismatch.
    fn revalidate_hit(&mut self, sql: &str, cached: &str) -> Option<bool> {
        let stmts = parse_statements(sql, Dialect::Teradata).ok()?;
        let ps = stmts.into_iter().next()?;
        let (fresh, _features) = self.translate_statement(&ps.stmt).ok()?;
        Some(fresh == cached)
    }

    /// The cache-key context hash: everything besides the statement text
    /// the translation output depends on.
    fn translation_ctx(&self) -> u64 {
        let mut bytes = Vec::with_capacity(34);
        bytes.extend_from_slice(&self.caps_sig.to_le_bytes());
        bytes.push(match self.analyzer.mode() {
            AnalyzeMode::Off => 0,
            AnalyzeMode::LogOnly => 1,
            AnalyzeMode::Strict => 2,
        });
        bytes.push(match self.conformance.mode() {
            ConformanceMode::Off => 0,
            ConformanceMode::LogOnly => 1,
            ConformanceMode::Strict => 2,
        });
        bytes.push(self.dml_batching as u8);
        bytes.extend_from_slice(&self.session.settings_epoch().to_le_bytes());
        bytes.extend_from_slice(&self.session.catalog_epoch().to_le_bytes());
        fnv1a(&bytes)
    }

    /// Offer the most recent standard-path translation to the cache.
    fn maybe_populate(&mut self, text: &str, features: &FeatureSet) {
        let Some(seed) = self.cache_seed.take() else { return };
        let Some(cache) = self.cache.clone() else { return };
        if text.is_empty() {
            // Internal sub-statements (routine bodies) carry no source
            // text; they are driven by their caller, never cached.
            return;
        }
        if seed.volatile {
            provenance::note_cache(CacheOutcome::Bypass("volatile_default"));
            cache.note_bypass();
            return;
        }
        let Ok(fp) = fingerprint(text) else {
            provenance::note_cache(CacheOutcome::Bypass("unfingerprintable"));
            return;
        };
        if fp.statements != 1 || fp.volatile {
            provenance::note_cache(CacheOutcome::Bypass(if fp.statements != 1 {
                "multi_statement"
            } else {
                "volatile"
            }));
            cache.note_bypass();
            return;
        }
        provenance::note_cache(CacheOutcome::Miss);
        let key = CacheKey { fingerprint: fp.hash, ctx: self.translation_ctx() };
        let fill = CacheFill {
            sql: seed.sql,
            features: features.clone(),
            is_query: seed.is_query,
            tables: seed.tables,
        };
        cache.populate(key, text, &fp.literals, fill, |src| self.probe_translate(src));
    }

    /// The probe translation used to verify splice templates: the full
    /// bind → emulate → transform → serialize pipeline over `src`, with no
    /// metrics, no analyzer, no execution — probes must not pollute
    /// observability or touch the backend.
    fn probe_translate(&self, src: &str) -> Option<String> {
        let stmts = parse_statements(src, Dialect::Teradata).ok()?;
        if stmts.len() != 1 {
            return None;
        }
        let stmt = stmts.into_iter().next()?.stmt;
        let backend = Arc::clone(&self.backend);
        let catalog = ShadowCatalog::new(&*backend, &self.session);
        let mut binder = Binder::new(&catalog);
        let plan = binder.bind_statement(&stmt).ok()?;
        let mut scratch = FeatureSet::new();
        let mut volatile = false;
        let plan = self
            .apply_insert_emulations_inner(plan, &mut scratch, true, &mut volatile)
            .ok()?;
        if volatile {
            return None;
        }
        let plan = Transformer::standard().run_all(plan, &self.profile.caps, &mut scratch).ok()?;
        let (plan, _fetch_limit) = self.peel_fetch_limit(plan);
        Serializer::for_profile(&self.profile).serialize_plan(&plan).ok()
    }

    /// Common statement epilogue: statement histogram and outcome counters,
    /// workload tracking, slow-query capture, trace-id stamping.
    fn observe_statement(
        &mut self,
        processed: Result<StatementOutcome>,
        trace: TraceId,
        text: &str,
        total: Duration,
    ) -> Result<StatementOutcome> {
        // Reconcile DTM state with what a mid-statement recovery did on the
        // target: GTT instances whose replay failed must re-materialize on
        // next touch, and a transaction that died with its connection is no
        // longer open.
        for gtt in self.session.journal.drain_invalidated_gtts() {
            self.session.materialized_gtts.remove(&gtt);
        }
        if self.session.journal.take_txn_aborted() {
            self.session.in_transaction = false;
        }
        self.stages.statement.record(total);
        match processed {
            Ok(mut outcome) => {
                self.stages.statements_ok.inc();
                self.tracker.observe(text, &outcome.features);
                self.stages.workload_total.set(self.tracker.total_queries as i64);
                self.stages.workload_distinct.set(self.tracker.distinct_queries() as i64);
                for feature in outcome.features.iter() {
                    self.obs
                        .metrics
                        .counter(
                            "hyperq_feature_statements_total",
                            &[("feature", &format!("{feature}"))],
                        )
                        .inc();
                }
                self.obs.slowlog.observe(&self.obs.traces, trace, text, total);
                self.finish_provenance(trace, text, total, Some(&outcome), None);
                outcome.trace_id = Some(trace);
                Ok(outcome)
            }
            Err(e) => {
                // Canonicalize cancellation: whichever layer noticed first
                // (parser, transformer, backend, engine, converter)
                // surfaced *some* error — when the statement's governor
                // token is cancelled, the one well-defined error every
                // caller sees is `HyperQError::Cancelled`.
                let e = match hyperq_governor::cancel_error() {
                    Some(c) => {
                        hyperq_obs::provenance::note_cancelled(c.reason.as_str());
                        hyperq_governor::note_stage(hyperq_governor::Stage::Cancelled);
                        HyperQError::Cancelled(c)
                    }
                    None => e,
                };
                self.stages.statements_err.inc();
                self.obs.slowlog.observe(&self.obs.traces, trace, text, total);
                let msg = e.to_string();
                self.finish_provenance(trace, text, total, None, Some(&msg));
                Err(e)
            }
        }
    }

    /// Seal the statement's provenance record (opened by `begin` at the
    /// statement head; a no-op when capture is disabled). The fingerprint
    /// and literal-redacted text are computed here, once, off the
    /// translation hot path.
    fn finish_provenance(
        &self,
        trace: TraceId,
        text: &str,
        total: Duration,
        outcome: Option<&StatementResult>,
        error: Option<&str>,
    ) {
        let prov = &self.obs.provenance;
        if !prov.is_enabled() {
            return;
        }
        let hash = fingerprint(text).map_or(0, |f| f.hash);
        // Surface the fingerprint on the in-flight query table too (the
        // governor's `/queries` snapshot keys on it).
        if let Some(gov) = hyperq_governor::current() {
            gov.set_fingerprint(hash);
        }
        let sql = if prov.capture_raw() { text.to_string() } else { redact_literals(text) };
        let features: Vec<&'static str> = outcome
            .map(|o| o.features.iter().map(|f| f.code()).collect())
            .unwrap_or_default();
        let rows = outcome.map_or(0, |o| o.result.row_count);
        prov.finish(FinishedStatement {
            trace,
            fingerprint: hash,
            kind: statement_kind(text),
            target: &self.profile.name,
            sql: &sql,
            total,
            features,
            analyze_mode: self.analyzer.mode().as_str(),
            rows,
            error,
        });
    }

    /// Run exactly one statement.
    pub fn run_one(&mut self, sql: &str) -> Result<StatementResult> {
        self.run(Request::script(sql))?.into_last()
    }

    /// Run one statement with positional (`?`) parameter values — the
    /// parameterized-query request kind of the ODBC-server abstraction
    /// (§4.5).
    pub fn run_with_params(
        &mut self,
        sql: &str,
        values: &[Datum],
    ) -> Result<StatementResult> {
        self.run(Request::with_params(sql, values.to_vec()))?.into_last()
    }

    /// The parameterized-request path: exactly one statement, positional
    /// values bound in the binder. Parameterized requests bypass the cache
    /// — their literals arrive out-of-band, so the fingerprint would not
    /// capture them.
    fn run_parameterized(&mut self, sql: &str, values: &[Datum]) -> Result<StatementResult> {
        let t0 = Instant::now();
        let mut stmts = parse_statements(sql, Dialect::Teradata)?;
        let parse_time = t0.elapsed();
        if stmts.len() != 1 {
            return Err(HyperQError::Emulation(
                "parameterized execution takes exactly one statement".into(),
            ));
        }
        let ps = stmts.remove(0);
        let mut features = ps.features.clone();
        let obs = Arc::clone(&self.obs);
        let root = obs.traces.enter("statement");
        let trace = root.trace_id();
        obs.provenance.begin();
        provenance::note_cache(CacheOutcome::Bypass("parameterized"));
        provenance::note_stage("parse", parse_time);
        obs.traces.record_manual(trace, Some(root.id()), "parse", parse_time);
        self.stages.parse.record(parse_time);
        let processed = self
            .run_pipeline_with(&ps.stmt, HashMap::new(), values.to_vec(), &mut features)
            .map(|o| StatementOutcome { features, ..o });
        // As above: parsing preceded the root span but belongs to this
        // statement's end-to-end time.
        let total = root.finish() + parse_time;
        let mut outcome = self.observe_statement(processed, trace, &ps.text, total)?;
        outcome.timings.translation += parse_time;
        Ok(outcome)
    }

    /// Translate without executing: the SQL that *would* be sent. Used by
    /// benchmarks to isolate translation cost and by tests to inspect the
    /// generated SQL.
    pub fn translate(&mut self, sql: &str) -> Result<Vec<String>> {
        let stmts = parse_statements(sql, Dialect::Teradata)?;
        let mut out = Vec::new();
        for ps in stmts {
            let (plan_sql, _features) = self.translate_statement(&ps.stmt)?;
            out.push(plan_sql);
        }
        Ok(out)
    }

    fn translate_statement(&mut self, stmt: &past::Statement) -> Result<(String, FeatureSet)> {
        let mut features = FeatureSet::new();
        let backend = Arc::clone(&self.backend);
        let catalog = ShadowCatalog::new(&*backend, &self.session);
        let mut binder = Binder::new(&catalog);
        let plan = binder.bind_statement(stmt)?;
        features.union(&binder.features);
        self.analyzer.check_plan(&plan, "bind")?;
        let plan = self
            .analyzer
            .transform(&self.transformer, plan, &self.profile.caps, &mut features)?;
        // Translation-only path: peel quietly (no emulation counter — the
        // statement is not being executed) so `translate()` shows the SQL
        // the LimitFetch emulation would actually send.
        let (plan, _fetch_limit) = self.peel_fetch_limit(plan);
        self.analyzer.check_plan(&plan, "serializer")?;
        let sql = Serializer::for_profile(&self.profile).serialize_plan(&plan)?;
        self.analyzer.audit_roundtrip(&sql, &plan, &catalog)?;
        self.conformance.check_serialized(&sql, &self.profile.caps, &self.profile.name)?;
        Ok((sql, features))
    }

    // -----------------------------------------------------------------------
    // Statement routing
    // -----------------------------------------------------------------------

    /// Count one emulated-feature request (the per-emulation fan-out of
    /// `hyperq_emulation_requests_total`). Cold paths only, so the registry
    /// lookup per call is fine.
    fn emu(&self, kind: EmulationKind) {
        provenance::note_emulation(kind.as_str());
        self.obs
            .metrics
            .counter("hyperq_emulation_requests_total", &[("kind", kind.as_str())])
            .inc();
    }

    fn process(&mut self, ps: ParsedStatement, cache_ok: bool) -> Result<StatementResult> {
        let mut features = ps.features.clone();
        // Advisory anti-pattern lints over the client's source text (empty
        // for internal sub-statements, which are driven by their caller).
        self.conformance
            .check_source(&ps.text, &ps.features, self.session.in_transaction, &self.profile.name);
        match &ps.stmt {
            // --- E5: informational commands, answered mid-tier -------------
            past::Statement::Help(target) => {
                self.emu(EmulationKind::Help);
                let result = match target {
                    past::HelpTarget::Session => emulate::help_session(&self.session),
                    past::HelpTarget::Table(name) => {
                        let backend = Arc::clone(&self.backend);
                        let catalog = ShadowCatalog::new(&*backend, &self.session);
                        let def = catalog.table(&name.canonical()).ok_or_else(|| {
                            HyperQError::Emulation(format!("table {name} not found"))
                        })?;
                        emulate::help_table(&def)
                    }
                };
                Ok(StatementOutcome {
                    result,
                    features,
                    timings: Timings::default(),
                    sql_sent: Vec::new(),
                    trace_id: None,
                })
            }

            // --- EXPLAIN: answered by the mid tier ---------------------------
            past::Statement::Explain(inner) => {
                self.emu(EmulationKind::Explain);
                let report = self.explain(inner, &mut features)?;
                let schema = hyperq_xtra::schema::Schema::new(vec![
                    hyperq_xtra::schema::Field::new(
                        None,
                        "EXPLANATION",
                        hyperq_xtra::types::SqlType::Varchar(None),
                        false,
                    ),
                ]);
                let rows: Vec<hyperq_xtra::Row> = report
                    .lines()
                    .map(|l| vec![hyperq_xtra::datum::Datum::str(l)])
                    .collect();
                Ok(StatementOutcome {
                    result: ExecResult::rows(schema, rows),
                    features,
                    timings: Timings::default(),
                    sql_sent: Vec::new(),
                    trace_id: None,
                })
            }

            // --- E2/E3: routine definitions ---------------------------------
            past::Statement::CreateMacro { name, params, body } => {
                self.emu(EmulationKind::Macro);
                self.session.macros.insert(
                    name.canonical(),
                    RoutineDef {
                        name: name.canonical(),
                        params: params.clone(),
                        body: body.clone(),
                        features: ps.features.clone(),
                    },
                );
                Ok(ack(features))
            }
            past::Statement::DropMacro { name } => {
                self.emu(EmulationKind::Macro);
                self.session.macros.remove(&name.canonical());
                Ok(ack(features))
            }
            past::Statement::CreateProcedure { name, params, body } => {
                self.emu(EmulationKind::Procedure);
                self.session.procedures.insert(
                    name.canonical(),
                    RoutineDef {
                        name: name.canonical(),
                        params: params.clone(),
                        body: body.clone(),
                        features: ps.features.clone(),
                    },
                );
                Ok(ack(features))
            }
            past::Statement::ExecuteMacro { name, args } => {
                self.emu(EmulationKind::Macro);
                let routine = self
                    .session
                    .macros
                    .get(&name.canonical())
                    .cloned()
                    .ok_or_else(|| {
                        HyperQError::Emulation(format!("macro {name} is not defined"))
                    })?;
                self.run_routine(&routine, args, features)
            }
            past::Statement::Call { name, args } => {
                self.emu(EmulationKind::Procedure);
                let routine = self
                    .session
                    .procedures
                    .get(&name.canonical())
                    .cloned()
                    .ok_or_else(|| {
                        HyperQError::Emulation(format!("procedure {name} is not defined"))
                    })?;
                let wrapped: Vec<(Option<String>, past::Expr)> =
                    args.iter().map(|a| (None, a.clone())).collect();
                self.run_routine(&routine, &wrapped, features)
            }

            // --- E6 substrate: views live in the DTM catalog -----------------
            past::Statement::CreateView { name, columns, or_replace, .. } => {
                self.emu(EmulationKind::View);
                let key = name.canonical();
                if !or_replace && self.session.views.contains_key(&key) {
                    return Err(HyperQError::Emulation(format!(
                        "view {key} already exists"
                    )));
                }
                self.session.views.insert(
                    key.clone(),
                    ViewDef {
                        name: key,
                        columns: columns.iter().map(|c| c.to_ascii_uppercase()).collect(),
                        // The full statement text; the binder re-parses it
                        // and extracts the query.
                        body_sql: ps.text.clone(),
                    },
                );
                Ok(ack(features))
            }
            past::Statement::DropView { name, if_exists } => {
                self.emu(EmulationKind::View);
                let existed = self.session.views.remove(&name.canonical()).is_some();
                if !existed && !if_exists {
                    return Err(HyperQError::Emulation(format!("view {name} not found")));
                }
                Ok(ack(features))
            }

            // --- E4: MERGE → UPDATE + guarded INSERT -------------------------
            past::Statement::Merge(m) => {
                self.emu(EmulationKind::Merge);
                features.insert(Feature::MergeStatement);
                let steps = emulate::decompose_merge(m)?;
                let mut timings = Timings::default();
                let mut sql_sent = Vec::new();
                let mut affected = 0u64;
                for step in &steps {
                    let o = self.run_pipeline(step, HashMap::new(), &mut features)?;
                    affected += o.result.row_count;
                    timings.merge(o.timings);
                    sql_sent.extend(o.sql_sent);
                }
                Ok(StatementOutcome {
                    result: ExecResult::affected(affected),
                    features,
                    timings,
                    sql_sent,
                    trace_id: None,
                })
            }

            // --- E1: recursive queries ---------------------------------------
            past::Statement::Query(q) if q.recursive => {
                self.emu(EmulationKind::Recursive);
                features.insert(Feature::RecursiveQuery);
                self.emulate_recursive(q, features)
            }

            // --- session settings (reflected by HELP SESSION) ----------------
            past::Statement::SetSession { name, value } => {
                self.emu(EmulationKind::SetSession);
                let rendered = match emulate::ast_const(value) {
                    Ok(d) => d.to_sql_string(),
                    Err(_) => format!("{value:?}"),
                };
                let key = name.to_ascii_uppercase();
                if let Some(slot) = self
                    .session
                    .settings
                    .iter_mut()
                    .find(|(k, _)| k.eq_ignore_ascii_case(&key))
                {
                    slot.1 = rendered.clone();
                } else {
                    self.session.settings.push((key.clone(), rendered.clone()));
                }
                // Targets with session-scoped settings get the SET pushed
                // through — and journaled, so a reconnect replays the final
                // value. Mid-tier-only targets keep it in the DTM catalog.
                if self.profile.caps.session_settings {
                    let sql = format!("SET {key} = {rendered}");
                    self.backend
                        .execute_ctx(&sql, self.request_ctx(true))
                        .map_err(HyperQError::Backend)?;
                    self.session.journal.record_setting(&key, &sql);
                    let mut outcome = ack(features);
                    outcome.sql_sent.push(sql);
                    return Ok(outcome);
                }
                Ok(ack(features))
            }

            // --- transactions ------------------------------------------------
            past::Statement::BeginTransaction => {
                self.emu(EmulationKind::Transaction);
                self.session.in_transaction = true;
                Ok(ack(features))
            }
            past::Statement::Commit | past::Statement::Rollback => {
                self.emu(EmulationKind::Transaction);
                self.session.in_transaction = false;
                Ok(ack(features))
            }

            // --- E6: DML against a DTM-cataloged view -------------------------
            past::Statement::Update { table, .. }
            | past::Statement::Delete { table, .. }
            | past::Statement::Insert { table, .. }
                if self.session.views.contains_key(&table.canonical()) =>
            {
                self.emu(EmulationKind::ViewDml);
                features.insert(Feature::DmlOnView);
                let view = self.session.views[&table.canonical()].clone();
                let parsed = parse_statements(&view.body_sql, Dialect::Teradata)
                    .map_err(HyperQError::Parse)?;
                let view_query = match parsed.into_iter().next().map(|p| p.stmt) {
                    Some(past::Statement::CreateView { query, .. }) => *query,
                    Some(past::Statement::Query(q)) => *q,
                    _ => {
                        return Err(HyperQError::Emulation(format!(
                            "stored view {} body is not a query",
                            view.name
                        )))
                    }
                };
                let rewritten =
                    emulate::rewrite_dml_on_view(&ps.stmt, &view_query, &view.columns)?;
                let o = self.run_pipeline(&rewritten, HashMap::new(), &mut features)?;
                Ok(StatementOutcome { features, ..o })
            }

            // --- standard path ----------------------------------------------
            stmt => {
                let o = self.run_pipeline(stmt, HashMap::new(), &mut features)?;
                if cache_ok {
                    self.maybe_populate(&ps.text, &features);
                }
                Ok(StatementResult { features, ..o })
            }
        }
    }

    /// Produce an EXPLAIN report: tracked features, the final XTRA plan
    /// tree, and the SQL that would be sent to the target. Nothing reaches
    /// the backend.
    fn explain(
        &mut self,
        stmt: &past::Statement,
        features: &mut FeatureSet,
    ) -> Result<String> {
        use std::fmt::Write as _;
        // Emulated statements: explain the decomposition.
        match stmt {
            past::Statement::Merge(m) => {
                features.insert(Feature::MergeStatement);
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "MERGE is emulated as {} request(s) against {}:",
                    emulate::decompose_merge(m)?.len(),
                    self.profile.caps.name
                );
                for step in emulate::decompose_merge(m)? {
                    let _ = writeln!(out, "--- step ---");
                    out.push_str(&self.explain(&step, features)?);
                }
                return Ok(out);
            }
            past::Statement::Query(q) if q.recursive => {
                features.insert(Feature::RecursiveQuery);
                let parts = emulate::split_recursive(q)?;
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "recursive query emulated via WorkTable/TempTable on {} \
                     (requests repeat until the step produces no rows):",
                    self.profile.caps.name
                );
                let _ = writeln!(out, "--- seed (initializes WorkTable and TempTable) ---");
                out.push_str(&self.explain(
                    &past::Statement::Query(Box::new(parts.seed)),
                    features,
                )?);
                let _ = writeln!(out, "--- recursive step (joins against TempTable '{}') ---", parts.name);
                return Ok(out);
            }
            past::Statement::Help(_)
            | past::Statement::CreateMacro { .. }
            | past::Statement::ExecuteMacro { .. }
            | past::Statement::CreateProcedure { .. }
            | past::Statement::Call { .. }
            | past::Statement::CreateView { .. } => {
                return Ok(
                    "handled entirely by the Hyper-Q mid tier (DTM catalog / session state); \
                     no single target statement to show\n"
                        .to_string(),
                );
            }
            _ => {}
        }
        let backend = Arc::clone(&self.backend);
        let plan = {
            let catalog = ShadowCatalog::new(&*backend, &self.session);
            let mut binder = Binder::new(&catalog);
            let plan = binder.bind_statement(stmt)?;
            features.union(&binder.features);
            plan
        };
        let plan = self.transformer.run_all(plan, &self.profile.caps, features)?;
        let (plan, fetch_limit) = self.peel_fetch_limit(plan);
        let sql = Serializer::for_profile(&self.profile).serialize_plan(&plan)?;
        let mut out = String::new();
        let _ = writeln!(out, "Hyper-Q translation for target {}", self.profile.caps.name);
        if let Some(n) = fetch_limit {
            let _ = writeln!(
                out,
                "mid-tier fetch limit: {n} row(s) (LimitFetch emulation; the \
                 target spells neither LIMIT nor TOP)"
            );
        }
        if !features.is_empty() {
            let _ = writeln!(out, "tracked features:");
            for f in features.iter() {
                let _ = writeln!(out, "  {f}");
            }
        }
        if let Plan::Query(rel) = &plan {
            let _ = writeln!(out, "XTRA plan:");
            for line in hyperq_xtra::display::render_rel(rel).lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        let _ = writeln!(out, "target SQL:");
        let _ = writeln!(out, "  {sql}");
        Ok(out)
    }

    fn run_routine(
        &mut self,
        routine: &RoutineDef,
        args: &[(Option<String>, past::Expr)],
        mut features: FeatureSet,
    ) -> Result<StatementOutcome> {
        features.union(&routine.features);
        let env = emulate::bind_routine_args(routine, args)?;
        let mut timings = Timings::default();
        let mut sql_sent = Vec::new();
        let mut last = ExecResult::ack();
        for stmt in &routine.body {
            let substituted = emulate::substitute_params(stmt, &env);
            // Bodies may themselves contain emulated statements (MERGE,
            // HELP, recursive queries, even nested macro executions), so
            // each step goes through the full router. Definitions that need
            // the original statement text cannot come from a routine body.
            if matches!(substituted, past::Statement::CreateView { .. }) {
                return Err(HyperQError::Emulation(
                    "CREATE VIEW inside a macro/procedure body is not supported".into(),
                ));
            }
            let o = self.process(
                ParsedStatement {
                    stmt: substituted,
                    features: FeatureSet::new(),
                    text: String::new(),
                    span: hyperq_parser::StmtSpan::default(),
                },
                false,
            )?;
            features.union(&o.features);
            timings.merge(o.timings);
            sql_sent.extend(o.sql_sent);
            // Macros return the (last) result set; DML steps contribute
            // their counts.
            if !o.result.schema.is_empty() || last.schema.is_empty() {
                last = o.result;
            }
        }
        Ok(StatementOutcome { result: last, features, timings, sql_sent, trace_id: None })
    }

    /// The standard bind → transform → serialize → execute path, plus the
    /// plan-level emulations that piggyback on it (E7 lazily materialized
    /// global temp tables, E8 SET-table dedup, E9 default injection).
    fn run_pipeline(
        &mut self,
        stmt: &past::Statement,
        params: HashMap<String, Datum>,
        features: &mut FeatureSet,
    ) -> Result<StatementOutcome> {
        self.run_pipeline_with(stmt, params, Vec::new(), features)
    }

    fn run_pipeline_with(
        &mut self,
        stmt: &past::Statement,
        params: HashMap<String, Datum>,
        positional: Vec<Datum>,
        features: &mut FeatureSet,
    ) -> Result<StatementOutcome> {
        self.cache_seed = None;
        hyperq_governor::note_stage(hyperq_governor::Stage::Translating);
        hyperq_governor::checkpoint()?;
        let parameterized = !params.is_empty() || !positional.is_empty();
        let backend = Arc::clone(&self.backend);
        let bind_span = self.obs.traces.enter("bind");
        let (plan, gtts, tables) = {
            let catalog = ShadowCatalog::new(&*backend, &self.session);
            let mut binder = Binder::new(&catalog)
                .with_params(params)
                .with_positional(positional);
            let plan = binder.bind_statement(stmt)?;
            features.union(&binder.features);
            (
                plan,
                catalog.gtt_touched.into_inner(),
                catalog.tables_touched.into_inner(),
            )
        };
        let bind_time = bind_span.finish();
        self.stages.bind.record(bind_time);
        provenance::note_stage("bind", bind_time);
        self.analyzer.check_plan(&plan, "bind")?;
        let mut timings = Timings { translation: bind_time, execution: Duration::ZERO };

        // Record sidecar properties (E8/E9) the target cannot hold.
        match &plan {
            Plan::CreateTable { def, .. } if def.kind != TableKind::GlobalTemporary => {
                let interesting = def.set_semantics
                    || def.columns.iter().any(|c| c.default.is_some() || c.case_insensitive);
                if interesting {
                    self.session.dtm_tables.insert(def.name.clone(), def.clone());
                }
            }
            Plan::DropTable { name, .. } => {
                self.session.dtm_tables.remove(name);
            }
            _ => {}
        }

        // Backend-visible DDL changes what other statements translate to:
        // drop every cached translation that resolved the table. (Session
        // -local catalog changes — views, GTT definitions, sidecars — are
        // part of the cache key instead and need no invalidation.)
        if let Some(cache) = &self.cache {
            match &plan {
                Plan::CreateTable { def, .. } => cache.invalidate_table(&def.name),
                Plan::DropTable { name, .. } => cache.invalidate_table(name),
                _ => {}
            }
        }

        // E7: definition of a global temporary table → DTM catalog only.
        if let Plan::CreateTable { def, source: None } = &plan {
            if def.kind == TableKind::GlobalTemporary {
                self.emu(EmulationKind::GttDefine);
                features.insert(Feature::GlobalTempTable);
                self.session
                    .global_temp_defs
                    .insert(def.name.clone(), def.clone());
                return Ok(StatementOutcome {
                    result: ExecResult::ack(),
                    features: features.clone(),
                    timings,
                    sql_sent: Vec::new(),
                    trace_id: None,
                });
            }
        }

        let transform_span = self.obs.traces.enter("transform");
        let mut volatile_default = false;
        let plan =
            self.apply_insert_emulations_inner(plan, features, false, &mut volatile_default)?;
        let plan = self
            .analyzer
            .transform(&self.transformer, plan, &self.profile.caps, features)?;
        let transform_time = transform_span.finish();
        self.stages.transform.record(transform_time);
        provenance::note_stage("transform", transform_time);
        timings.translation += transform_time;

        // LimitFetch: a target with neither LIMIT nor TOP executes the
        // query unbounded and the mid tier truncates the result below.
        let (plan, fetch_limit) = self.peel_fetch_limit(plan);
        if fetch_limit.is_some() {
            self.emu(EmulationKind::LimitFetch);
        }

        self.analyzer.check_plan(&plan, "serializer")?;
        let serialize_span = self.obs.traces.enter("serialize");
        let sql = Serializer::for_profile(&self.profile).serialize_plan(&plan)?;
        let serialize_time = serialize_span.finish();
        self.stages.serialize.record(serialize_time);
        provenance::note_stage("serialize", serialize_time);
        timings.translation += serialize_time;
        self.conformance.check_serialized(&sql, &self.profile.caps, &self.profile.name)?;

        // Strict mode: the serializer round-trip audit. Restricted to plain
        // queries with no GTT involvement — GTT instance names resolve
        // against per-session backend temp tables that may not exist yet.
        if matches!(plan, Plan::Query(_)) && gtts.is_empty() {
            let catalog = ShadowCatalog::new(&*backend, &self.session);
            self.analyzer.audit_roundtrip(&sql, &plan, &catalog)?;
        }
        let mut sql_sent = Vec::new();
        hyperq_governor::note_stage(hyperq_governor::Stage::Executing);

        // E7: statements touching a global temporary table are emulated
        // through the per-session instance; record the tracked feature and
        // lazily materialize.
        let gtt_involved = !gtts.is_empty();
        if gtt_involved {
            features.insert(Feature::GlobalTempTable);
        }
        for logical in gtts {
            if self.session.materialized_gtts.contains(&logical) {
                continue;
            }
            self.emu(EmulationKind::GttMaterialize);
            let def = self
                .session
                .global_temp_defs
                .get(&logical)
                .cloned()
                .ok_or_else(|| {
                    HyperQError::Emulation(format!("missing GTT definition {logical}"))
                })?;
            let mut instance = def;
            let instance_name = self.session.gtt_target_name(&logical);
            instance.name = instance_name.clone();
            instance.kind = TableKind::Temporary;
            let ser_span = self.obs.traces.enter("serialize");
            let ddl = Serializer::for_profile(&self.profile)
                .serialize_plan(&Plan::CreateTable { def: instance, source: None })?;
            let d = ser_span.finish();
            self.stages.serialize.record(d);
            provenance::note_stage("serialize", d);
            timings.translation += d;
            self.conformance.check_serialized(&ddl, &self.profile.caps, &self.profile.name)?;
            let exec_span = self.obs.traces.enter("execute");
            self.backend.execute_ctx(&ddl, self.request_ctx(false))?;
            let d = exec_span.finish();
            self.stages.execute.record(d);
            provenance::note_stage("execute", d);
            timings.execution += d;
            // Journal the materialization so a reconnect re-creates the
            // per-session instance (guarded by its continued existence).
            self.session.journal.record_gtt(&logical, &instance_name, &ddl);
            sql_sent.push(ddl);
            self.session.materialized_gtts.insert(logical);
        }

        let is_query = matches!(plan, Plan::Query(_));
        let exec_span = self.obs.traces.enter("execute");
        let mut result = self.backend.execute_ctx(&sql, self.request_ctx(is_query))?;
        let exec_time = exec_span.finish();
        self.stages.execute.record(exec_time);
        provenance::note_stage("execute", exec_time);
        timings.execution += exec_time;
        if let Some(n) = fetch_limit {
            // The LimitFetch truncation: the client sees exactly the rows
            // a native LIMIT/TOP would have returned (the ORDER BY, if
            // any, was serialized, so the prefix is well-defined).
            result.rows.truncate(n as usize);
            result.row_count = result.rows.len() as u64;
        }

        // Leave the translation behind for the cache. Only the standard
        // single-request shapes qualify: GTT-touching statements run a
        // multi-request materialization protocol, DDL mutates catalogs,
        // parameterized requests carry literals out-of-band.
        let cacheable_kind = matches!(
            plan,
            Plan::Query(_) | Plan::Insert { .. } | Plan::Update { .. } | Plan::Delete { .. }
        );
        // LimitFetch translations never seed the cache: a hit would replay
        // the unbounded SQL with nobody left to truncate the result.
        if cacheable_kind && !gtt_involved && !parameterized && fetch_limit.is_none() {
            self.cache_seed = Some(CacheSeed {
                sql: sql.clone(),
                is_query,
                tables: tables.into_iter().collect(),
                volatile: volatile_default,
            });
        }
        sql_sent.push(sql);
        Ok(StatementResult {
            result,
            features: features.clone(),
            timings,
            sql_sent,
            trace_id: None,
        })
    }

    /// E8 (SET-table dedup) and E9 (default injection) on INSERT plans.
    /// `quiet` suppresses the emulation counters (probe translations);
    /// `volatile` is set when an injected default is not a constant — its
    /// value changes between executions, so the translation must never be
    /// cached.
    fn apply_insert_emulations_inner(
        &self,
        plan: Plan,
        features: &mut FeatureSet,
        quiet: bool,
        volatile: &mut bool,
    ) -> Result<Plan> {
        let (table, mut columns, mut source) = match plan {
            Plan::Insert { table, columns, source } => (table, columns, source),
            other => return Ok(other),
        };
        let def = self
            .session
            .dtm_tables
            .get(&table)
            .cloned()
            .or_else(|| self.backend.table_meta(&table))
            .or_else(|| {
                self.session
                    .global_temp_defs
                    .values()
                    .find(|d| self.session.gtt_target_name(&d.name) == table)
                    .cloned()
            })
            .ok_or_else(|| HyperQError::Bind(format!("table {table} not found")))?;

        // E9: inject mid-tier defaults for omitted columns whose default the
        // target cannot express (e.g. DEFAULT CURRENT_DATE).
        let missing: Vec<&ColumnDef> = def
            .columns
            .iter()
            .filter(|c| {
                c.default.is_some() && !columns.iter().any(|x| x.eq_ignore_ascii_case(&c.name))
            })
            .collect();
        if !missing.is_empty() {
            if !quiet {
                self.emu(EmulationKind::DefaultInjection);
            }
            let schema = source.schema();
            let mut exprs: Vec<(ScalarExpr, String)> = schema
                .fields
                .iter()
                .map(|f| {
                    (
                        ScalarExpr::Column {
                            qualifier: f.qualifier.clone(),
                            name: f.name.clone(),
                            ty: f.ty.clone(),
                        },
                        f.name.clone(),
                    )
                })
                .collect();
            for c in &missing {
                let default = c.default.as_ref().expect("filtered on is_some");
                if !matches!(default, ScalarExpr::Literal(..)) {
                    features.insert(Feature::ColumnProperties);
                    *volatile = true;
                }
                let value = emulate::const_eval(default)?;
                let ty = value.sql_type();
                exprs.push((ScalarExpr::Literal(value, ty), c.name.clone()));
                columns.push(c.name.clone());
            }
            source = RelExpr::Project { input: Box::new(source), exprs };
        }

        // E8: SET-table semantics — dedupe the source and anti-join against
        // existing rows. (Comparison is over the inserted columns; with
        // constant defaults this matches full-row SET semantics.)
        if def.set_semantics {
            if !quiet {
                self.emu(EmulationKind::SetTableDedup);
            }
            features.insert(Feature::SetTableSemantics);
            let get = RelExpr::Get {
                table: def.name.clone(),
                alias: Some(def.base_name().to_string()),
                schema: def.schema(None),
            };
            let existing = RelExpr::Project {
                input: Box::new(get),
                exprs: columns
                    .iter()
                    .map(|c| {
                        let col = def
                            .columns
                            .iter()
                            .find(|d| d.name.eq_ignore_ascii_case(c))
                            .expect("insert columns validated by binder");
                        (
                            ScalarExpr::Column {
                                qualifier: Some(def.base_name().to_string()),
                                name: col.name.clone(),
                                ty: col.ty.clone(),
                            },
                            col.name.clone(),
                        )
                    })
                    .collect(),
            };
            source = RelExpr::SetOp {
                kind: SetOpKind::Except,
                all: false,
                left: Box::new(RelExpr::Distinct { input: Box::new(source) }),
                right: Box::new(existing),
            };
        }

        Ok(Plan::Insert { table, columns, source })
    }

    // -----------------------------------------------------------------------
    // E1: recursion via WorkTable/TempTable (§6)
    // -----------------------------------------------------------------------

    fn emulate_recursive(
        &mut self,
        q: &past::Query,
        mut features: FeatureSet,
    ) -> Result<StatementOutcome> {
        let mut timings = Timings::default();
        let mut sql_sent = Vec::new();
        // Temp tables created so far; on a mid-sequence failure they are
        // best-effort dropped so a retried statement starts clean instead
        // of colliding with leftovers on the target.
        let mut live: Vec<String> = Vec::new();
        match self.emulate_recursive_inner(q, &mut features, &mut timings, &mut sql_sent, &mut live)
        {
            Ok(result) => Ok(StatementOutcome { result, features, timings, sql_sent, trace_id: None }),
            Err(e) => {
                self.cleanup_temp_tables(&live, &mut timings, &mut sql_sent);
                Err(e)
            }
        }
    }

    /// Best-effort `DROP TABLE IF EXISTS` for temp tables left behind by a
    /// failed emulation sequence. Errors are swallowed: cleanup must never
    /// mask the original failure.
    fn cleanup_temp_tables(
        &mut self,
        live: &[String],
        timings: &mut Timings,
        sql_sent: &mut Vec<String>,
    ) {
        // Cleanup must succeed even when the statement was just cancelled:
        // the governor checkpoints inside the backend stack would refuse
        // the DROPs, leaking emulation temp tables. Shield the governor for
        // the duration (mirroring provenance::suspended for probes).
        hyperq_governor::shielded(|| {
            for name in live.iter().rev() {
                self.emu(EmulationKind::Cleanup);
                let dropped = self.exec_plan(
                    Plan::DropTable { name: name.clone(), if_exists: true },
                    timings,
                    sql_sent,
                );
                if dropped.is_err() {
                    // The DROP itself failed (e.g. the connection died): journal
                    // the orphan so the next reconnect retires the name instead
                    // of resurrecting it.
                    if let Ok(drop_sql) = Serializer::for_profile(&self.profile)
                        .serialize_plan(&Plan::DropTable { name: name.clone(), if_exists: true })
                    {
                        self.session.journal.record_orphan(name, drop_sql);
                    }
                }
            }
        });
    }

    fn emulate_recursive_inner(
        &mut self,
        q: &past::Query,
        features: &mut FeatureSet,
        timings: &mut Timings,
        sql_sent: &mut Vec<String>,
        live: &mut Vec<String>,
    ) -> Result<ExecResult> {
        let parts = emulate::split_recursive(q)?;

        // Bind the seed to learn the CTE schema.
        let t0 = Instant::now();
        let backend = Arc::clone(&self.backend);
        let seed_rel = {
            let catalog = ShadowCatalog::new(&*backend, &self.session);
            let mut binder = Binder::new(&catalog);
            let rel = binder.bind_query(&parts.seed)?;
            features.union(&binder.features);
            rel
        };
        let seed_schema = seed_rel.schema();
        let columns: Vec<String> = if parts.columns.is_empty() {
            seed_schema.fields.iter().map(|f| f.name.clone()).collect()
        } else {
            parts.columns.clone()
        };
        if columns.len() != seed_schema.len() {
            return Err(HyperQError::Emulation(format!(
                "recursive CTE {} declares {} columns but its seed produces {}",
                parts.name,
                columns.len(),
                seed_schema.len()
            )));
        }
        let col_defs: Vec<ColumnDef> = columns
            .iter()
            .zip(seed_schema.fields.iter())
            .map(|(name, f)| ColumnDef::new(name, f.ty.clone(), true))
            .collect();
        timings.translation += t0.elapsed();

        let work_table = self.session.fresh_name("WT");
        let mut temp_table = self.session.fresh_name("TT");
        let table_def = |name: &str| TableDef {
            name: name.to_string(),
            columns: col_defs.clone(),
            set_semantics: false,
            kind: TableKind::Temporary,
        };

        // Step 1: initialize WorkTable and TempTable with the seed. Names
        // go on the live list *before* execution: a failed CTAS may leave
        // a partial table behind, and cleanup drops with IF EXISTS.
        live.push(work_table.clone());
        self.exec_plan(
            Plan::CreateTable { def: table_def(&work_table), source: Some(seed_rel) },
            timings,
            sql_sent,
        )?;
        live.push(temp_table.clone());
        self.exec_plan(
            Plan::CreateTable {
                def: table_def(&temp_table),
                source: Some(RelExpr::Get {
                    table: work_table.clone(),
                    alias: Some(work_table.clone()),
                    schema: table_def(&work_table).schema(None),
                }),
            },
            timings,
            sql_sent,
        )?;

        // Steps 2..: run the recursive expression joined against TempTable
        // until it produces no new rows (paper §6, steps 2–4).
        let mut converged = false;
        for _ in 0..MAX_RECURSION_STEPS {
            // Cooperative cancellation between recursion steps; the caller
            // runs cleanup_temp_tables (shielded) on the error path, so a
            // cancelled recursion leaves no WT/TT tables behind.
            hyperq_governor::checkpoint()?;
            let next_table = self.session.fresh_name("TT");
            let t = Instant::now();
            let step_rel = {
                let catalog = ShadowCatalog::new(&*backend, &self.session)
                    .with_overlay(&parts.name, table_def(&temp_table));
                let mut binder = Binder::new(&catalog);
                let rel = binder.bind_query(&parts.recursive)?;
                features.union(&binder.features);
                rel
            };
            timings.translation += t.elapsed();
            live.push(next_table.clone());
            let produced = self.exec_plan(
                Plan::CreateTable { def: table_def(&next_table), source: Some(step_rel) },
                timings,
                sql_sent,
            )?;
            if produced.row_count == 0 {
                self.exec_plan(
                    Plan::DropTable { name: next_table.clone(), if_exists: false },
                    timings,
                    sql_sent,
                )?;
                live.retain(|n| n != &next_table);
                converged = true;
                break;
            }
            self.exec_plan(
                Plan::Insert {
                    table: work_table.clone(),
                    columns: columns.clone(),
                    source: RelExpr::Get {
                        table: next_table.clone(),
                        alias: Some(next_table.clone()),
                        schema: table_def(&next_table).schema(None),
                    },
                },
                timings,
                sql_sent,
            )?;
            self.exec_plan(
                Plan::DropTable { name: temp_table.clone(), if_exists: false },
                timings,
                sql_sent,
            )?;
            live.retain(|n| n != &temp_table);
            temp_table = next_table;
        }
        if !converged {
            return Err(HyperQError::Emulation(format!(
                "recursive query did not converge within {MAX_RECURSION_STEPS} steps"
            )));
        }

        // Step 5: main query with the CTE name bound to the WorkTable.
        let t = Instant::now();
        let main_plan = {
            let catalog = ShadowCatalog::new(&*backend, &self.session)
                .with_overlay(&parts.name, table_def(&work_table));
            let mut binder = Binder::new(&catalog);
            let plan = Plan::Query(binder.bind_query(&parts.main)?);
            features.union(&binder.features);
            plan
        };
        timings.translation += t.elapsed();
        let result = self.exec_plan_full(main_plan, timings, sql_sent)?;

        // Step 6: drop the temporary tables.
        self.exec_plan(
            Plan::DropTable { name: temp_table.clone(), if_exists: false },
            timings,
            sql_sent,
        )?;
        live.retain(|n| n != &temp_table);
        self.exec_plan(
            Plan::DropTable { name: work_table.clone(), if_exists: false },
            timings,
            sql_sent,
        )?;
        live.retain(|n| n != &work_table);

        Ok(result)
    }

    /// Replay-safety context for a backend request: only pure queries are
    /// idempotent, and nothing inside an open transaction may be blindly
    /// retried (a replay could double-apply effects the target already
    /// holds in its transaction state).
    fn request_ctx(&self, idempotent: bool) -> RequestContext {
        RequestContext { idempotent, in_transaction: self.session.in_transaction }
    }

    /// Peel a top-level row bound off a query plan when the target spells
    /// neither `LIMIT` nor `TOP` (the `LimitFetch` emulation): the query
    /// executes unbounded and the mid tier truncates the result set to
    /// `n` rows. Only the plain shape (no OFFSET, no WITH TIES) peels —
    /// anything else still fails in the serializer.
    fn peel_fetch_limit(&self, plan: Plan) -> (Plan, Option<u64>) {
        if self.profile.flavor.limit != LimitSpelling::None {
            return (plan, None);
        }
        match plan {
            Plan::Query(RelExpr::Limit { input, limit: Some(n), with_ties: false, offset: 0 }) => {
                (Plan::Query(*input), Some(n))
            }
            // Hidden ORDER BY sort columns wrap a rename/strip projection
            // above the bound; the projection is row-preserving, so
            // truncating after it equals truncating before it.
            Plan::Query(RelExpr::Project { input, exprs }) => match *input {
                RelExpr::Limit { input, limit: Some(n), with_ties: false, offset: 0 } => {
                    (Plan::Query(RelExpr::Project { input, exprs }), Some(n))
                }
                other => {
                    (Plan::Query(RelExpr::Project { input: Box::new(other), exprs }), None)
                }
            },
            other => (other, None),
        }
    }

    /// Transform, serialize and execute one already-bound plan, charging
    /// the stage timers.
    fn exec_plan(
        &mut self,
        plan: Plan,
        timings: &mut Timings,
        sql_sent: &mut Vec<String>,
    ) -> Result<ExecResult> {
        self.exec_plan_full(plan, timings, sql_sent)
    }

    fn exec_plan_full(
        &mut self,
        plan: Plan,
        timings: &mut Timings,
        sql_sent: &mut Vec<String>,
    ) -> Result<ExecResult> {
        let span = self.obs.traces.enter("transform");
        let mut scratch = FeatureSet::new();
        let plan = self
            .analyzer
            .transform(&self.transformer, plan, &self.profile.caps, &mut scratch)?;
        let d = span.finish();
        self.stages.transform.record(d);
        provenance::note_stage("transform", d);
        timings.translation += d;
        // Recursion's main query can carry a row bound too: same
        // LimitFetch peel-and-truncate as the standard path.
        let (plan, fetch_limit) = self.peel_fetch_limit(plan);
        if fetch_limit.is_some() {
            self.emu(EmulationKind::LimitFetch);
        }
        // No round-trip audit here: emulation plans reference freshly
        // created per-session temp tables the shadow catalog cannot rebind.
        self.analyzer.check_plan(&plan, "serializer")?;
        let span = self.obs.traces.enter("serialize");
        let sql = Serializer::for_profile(&self.profile).serialize_plan(&plan)?;
        let d = span.finish();
        self.stages.serialize.record(d);
        provenance::note_stage("serialize", d);
        timings.translation += d;
        self.conformance.check_serialized(&sql, &self.profile.caps, &self.profile.name)?;
        let span = self.obs.traces.enter("execute");
        let mut result =
            self.backend.execute_ctx(&sql, self.request_ctx(matches!(plan, Plan::Query(_))))?;
        let d = span.finish();
        self.stages.execute.record(d);
        provenance::note_stage("execute", d);
        timings.execution += d;
        if let Some(n) = fetch_limit {
            result.rows.truncate(n as usize);
            result.row_count = result.rows.len() as u64;
        }
        sql_sent.push(sql);
        Ok(result)
    }
}

/// The profile's contribution to the cache-key context hash: registry
/// name, capability signature, and dialect flavor. Two profiles sharing a
/// capability signature (or even a name) still key distinctly if any
/// component differs, so cross-target cache pollution is structurally
/// impossible.
fn profile_sig(profile: &TargetProfile) -> u64 {
    fnv1a(format!("{}|{:?}|{:?}", profile.name, profile.caps, profile.flavor).as_bytes())
}

fn ack(features: FeatureSet) -> StatementResult {
    StatementResult {
        result: ExecResult::ack(),
        features,
        timings: Timings::default(),
        sql_sent: Vec::new(),
        trace_id: None,
    }
}

/// Cheap pre-parse filter for the cache fast path: only leading keywords
/// of statements the standard pipeline handles are worth a fingerprint +
/// lookup. Everything else (DDL, SET, HELP, macros, …) goes straight to
/// the router.
fn fast_path_candidate(sql: &str) -> bool {
    let trimmed = sql.trim_start();
    let word: String = trimmed
        .chars()
        .take_while(char::is_ascii_alphabetic)
        .take(8)
        .collect();
    matches!(
        word.to_ascii_uppercase().as_str(),
        "SELECT" | "SEL" | "INSERT" | "INS" | "UPDATE" | "UPD" | "DELETE" | "DEL" | "WITH"
    )
}

/// Coarse statement kind from the leading keyword, recorded in provenance
/// records (Teradata shorthands normalized onto the long forms).
fn statement_kind(sql: &str) -> &'static str {
    let word: String = sql
        .trim_start()
        .chars()
        .take_while(char::is_ascii_alphabetic)
        .take(12)
        .collect();
    match word.to_ascii_uppercase().as_str() {
        "SELECT" | "SEL" | "WITH" => "select",
        "INSERT" | "INS" => "insert",
        "UPDATE" | "UPD" => "update",
        "DELETE" | "DEL" => "delete",
        "MERGE" => "merge",
        "CREATE" | "REPLACE" => "create",
        "DROP" => "drop",
        "ALTER" => "alter",
        "EXEC" | "EXECUTE" => "execute",
        "CALL" => "call",
        "HELP" => "help",
        "EXPLAIN" => "explain",
        "SET" => "set",
        "BT" | "BEGIN" | "ET" | "COMMIT" | "END" | "ROLLBACK" | "ABORT" => "transaction",
        _ => "other",
    }
}

/// The canonical statement text of a single-statement script: trimmed,
/// trailing semicolons stripped — matching what the parser records as
/// `ParsedStatement::text`, so cache-hit and slow-path statements report
/// identical texts to the tracker and slow-query log.
fn statement_text(sql: &str) -> &str {
    let mut s = sql.trim();
    while let Some(stripped) = s.strip_suffix(';') {
        s = stripped.trim_end();
    }
    s
}

/// The Transformer's DML-batching example (§4.3): "if the target database
/// incurs a large overhead in executing single-row DML requests, a
/// transformation that groups a large number of contiguous single-row DML
/// statements into one large statement could be applied." Consecutive
/// single-row `INSERT … VALUES` against the same table and column list are
/// merged into one multi-row insert.
pub fn batch_single_row_inserts(stmts: Vec<ParsedStatement>) -> Vec<ParsedStatement> {
    let mut out: Vec<ParsedStatement> = Vec::with_capacity(stmts.len());
    for ps in stmts {
        let mergeable = insert_values_parts(&ps).is_some();
        if mergeable {
            if let Some(prev) = out.last_mut() {
                let can_merge = match (insert_values_parts(prev), insert_values_parts(&ps)) {
                    (Some((pt, pc, _)), Some((ct, cc, _))) => pt == ct && pc == cc,
                    _ => false,
                };
                if can_merge {
                    let new_rows = match &ps.stmt {
                        past::Statement::Insert { source, .. } => match &source.body {
                            past::QueryBody::Select(b) => b.value_rows.clone(),
                            _ => unreachable!("checked by insert_values_parts"),
                        },
                        _ => unreachable!("checked by insert_values_parts"),
                    };
                    if let past::Statement::Insert { source, .. } = &mut prev.stmt {
                        if let past::QueryBody::Select(b) = &mut source.body {
                            b.value_rows.extend(new_rows);
                        }
                    }
                    prev.features.union(&ps.features);
                    // Keep the merged statement's text honest: it now
                    // spans several source statements (which also makes
                    // its fingerprint multi-statement, bypassing the
                    // translation cache).
                    prev.text.push_str("; ");
                    prev.text.push_str(&ps.text);
                    // The merged statement now covers both source ranges.
                    prev.span.end = prev.span.end.max(ps.span.end);
                    continue;
                }
            }
        }
        out.push(ps);
    }
    out
}

/// If the statement is a single-table `INSERT … VALUES`, its (table,
/// columns, row-count).
fn insert_values_parts(ps: &ParsedStatement) -> Option<(String, Vec<String>, usize)> {
    match &ps.stmt {
        past::Statement::Insert { table, columns, source } => match &source.body {
            past::QueryBody::Select(b) if !b.value_rows.is_empty() && source.ctes.is_empty() => {
                Some((table.canonical(), columns.clone(), b.value_rows.len()))
            }
            _ => None,
        },
        _ => None,
    }
}
