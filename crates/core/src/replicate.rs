//! Scale-out across replicas (paper §B.3 — listed as in-progress work).
//!
//! "A common solution … is to maintain multiple replicas of the data
//! warehouse and load balance queries across them. The ADV solution on top
//! can then automatically route the queries to the different replicas,
//! without sacrificing consistency, and without requiring changes to the
//! application logic."
//!
//! [`ReplicatedBackend`] implements exactly that behind the ordinary
//! [`Backend`] interface, and — unlike the earlier stub — it *self-heals*:
//!
//! * **Routing.** Reads round-robin across healthy replicas; writes (DML,
//!   DDL) broadcast to every healthy replica. Statement classification is
//!   parser-backed: `WITH x AS (…) DELETE FROM t` is a write, not a read.
//! * **Error-class-aware fencing.** Each replica sits behind its own
//!   [`ResilientBackend`], so transient read blips and timeouts are
//!   retried per replica before the replication layer ever sees them.
//!   Writes keep the caller's (non-idempotent) [`RequestContext`] and are
//!   never blind-retried — a retry after an ambiguous failure could apply
//!   the write twice on one replica, a fork the row-count divergence check
//!   cannot see. A replica is fenced only when it demonstrably missed an
//!   applied write, when its connection is lost, or when its write result
//!   diverges from the majority. Plain statement errors (bad SQL is bad
//!   SQL on every replica) never fence.
//! * **Write-repair journal.** Writes applied while a replica is fenced
//!   are journaled per replica and drained by [`probe_and_repair`]
//!   (`crate::repair`) under an idempotent [`RequestContext`]; the replica
//!   is re-admitted only after a clean drain. The journal is bounded: on
//!   overflow the replica flips to the explicit
//!   [`ReplicaHealth::NeedsResync`] state and stays out of rotation until
//!   an operator rebuilds it.
//! * **Transaction-pinned routing.** In-transaction statements pin the
//!   session to one replica so every read inside the transaction observes
//!   a single replica's state. Losing the pinned replica mid-transaction
//!   surfaces as a connection-class error, which the recovery layer turns
//!   into exactly one 2631 transaction abort.
//! * **Divergence detection.** Broadcast writes compare affected-row
//!   counts across replicas; a minority result flips that replica to
//!   `NeedsResync` and counts `hyperq_replica_divergence_total` — journal
//!   replay cannot reconcile a write that *applied* differently.
//!
//! [`probe_and_repair`]: ReplicatedBackend::probe_and_repair

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::backend::{Backend, BackendError, BackendErrorKind, ExecResult, RequestContext};
use crate::resilience::{ResilienceConfig, ResilientBackend};
use hyperq_obs::{provenance, Counter, Gauge, ObsContext};
use hyperq_parser::ast::Statement;
use hyperq_parser::{parse_one, Dialect};
use hyperq_xtra::catalog::TableDef;

/// Statement classification for routing: `true` routes to one replica,
/// `false` broadcasts. Parser-backed so a data-modifying CTE
/// (`WITH x AS (…) DELETE FROM t`) is recognized as a write; statements the
/// parser cannot handle fall back to a CTE-aware keyword scan, and anything
/// still ambiguous defaults to write (broadcast is always state-safe).
pub(crate) fn is_read_only(sql: &str) -> bool {
    match parse_one(sql, Dialect::Teradata) {
        Ok(parsed) => matches!(
            parsed.stmt,
            Statement::Query(_) | Statement::Help(_) | Statement::Explain(_)
        ),
        Err(_) => matches!(
            keyword_after_ctes(sql).as_deref(),
            Some("SELECT" | "SEL" | "HELP" | "SHOW" | "EXPLAIN")
        ),
    }
}

/// The leading statement keyword, skipping a `WITH … AS (…)` prefix.
/// Quoted strings and identifiers are opaque; parenthesized groups (CTE
/// bodies, column lists) are swallowed whole.
fn keyword_after_ctes(sql: &str) -> Option<String> {
    let toks = top_level_tokens(sql);
    let mut i = 0;
    let first = toks.first()?;
    if !first.eq_ignore_ascii_case("WITH") {
        return Some(first.to_ascii_uppercase());
    }
    i += 1;
    if toks.get(i).is_some_and(|t| t.eq_ignore_ascii_case("RECURSIVE")) {
        i += 1;
    }
    loop {
        // CTE name (its column list, if any, was swallowed with the parens).
        i += 1;
        if !toks.get(i)?.eq_ignore_ascii_case("AS") {
            return None;
        }
        i += 1;
        match toks.get(i)?.as_str() {
            "," => i += 1,
            t => return Some(t.to_ascii_uppercase()),
        }
    }
}

/// Words and commas at paren depth 0, with quoted regions skipped.
fn top_level_tokens(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut depth = 0usize;
    let mut chars = sql.chars().peekable();
    let flush = |word: &mut String, out: &mut Vec<String>| {
        if !word.is_empty() {
            out.push(std::mem::take(word));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                flush(&mut word, &mut out);
                // Consume the string literal, honouring '' escapes.
                while let Some(q) = chars.next() {
                    if q == '\'' {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
            }
            '"' => {
                flush(&mut word, &mut out);
                for q in chars.by_ref() {
                    if q == '"' {
                        break;
                    }
                }
            }
            '(' => {
                flush(&mut word, &mut out);
                depth += 1;
            }
            ')' => {
                depth = depth.saturating_sub(1);
            }
            _ if depth > 0 => {}
            ',' => {
                flush(&mut word, &mut out);
                out.push(",".to_string());
            }
            c if c.is_alphanumeric() || c == '_' || c == '$' || c == '#' => word.push(c),
            _ => flush(&mut word, &mut out),
        }
    }
    flush(&mut word, &mut out);
    out
}

/// A replica's routing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// In rotation: serves reads, receives broadcast writes.
    Healthy,
    /// Out of rotation; missed writes accumulate in its repair journal and
    /// the prober re-admits it after a clean drain.
    Fenced,
    /// Out of rotation and beyond journal repair (overflowed journal or a
    /// diverged write result); stays fenced until rebuilt out of band.
    NeedsResync,
}

impl ReplicaHealth {
    pub fn as_str(self) -> &'static str {
        match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Fenced => "fenced",
            ReplicaHealth::NeedsResync => "needs_resync",
        }
    }

    fn gauge_value(self) -> i64 {
        match self {
            ReplicaHealth::Healthy => 0,
            ReplicaHealth::Fenced => 1,
            ReplicaHealth::NeedsResync => 2,
        }
    }
}

/// Replication tuning.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Bound on each replica's write-repair journal; overflow flips the
    /// replica to [`ReplicaHealth::NeedsResync`].
    pub journal_capacity: usize,
    /// Health-prober cadence. `Duration::ZERO` disables the background
    /// thread (repair then runs only via explicit
    /// [`ReplicatedBackend::probe_and_repair`] sweeps, as the tests do).
    pub probe_interval: Duration,
    /// The probe statement sent to a fenced replica before draining its
    /// journal; must be cheap and read-only.
    pub probe_sql: String,
    /// Per-replica retry/breaker policy applied beneath the replication
    /// layer, so transient faults are absorbed before fencing decisions.
    /// `None` applies [`ResilienceConfig::default`]; the wire gateway
    /// substitutes its own gateway-level policy for `None`, so tuning
    /// `GatewayConfig::resilience` carries over to a replicated gateway.
    pub resilience: Option<ResilienceConfig>,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            journal_capacity: 256,
            probe_interval: Duration::from_millis(200),
            probe_sql: "SELECT 1".to_string(),
            resilience: None,
        }
    }
}

/// A point-in-time view of one replica, served on `/replicas`.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    pub name: String,
    pub health: ReplicaHealth,
    /// Number of live sessions currently transaction-pinned here
    /// (best-effort, for observability).
    pub pinned_sessions: usize,
    pub journal_depth: usize,
    pub fences: u64,
    pub heals: u64,
}

/// A write the replica missed while fenced, replayed in order on repair.
#[derive(Debug, Clone)]
pub(crate) enum RepairOp {
    Write(String),
    Reset,
}

#[derive(Debug)]
pub(crate) struct ReplicaState {
    pub(crate) health: ReplicaHealth,
    pub(crate) journal: VecDeque<RepairOp>,
    /// Broadcasts that observed this replica fenced at dispatch and have
    /// not yet appended their op to the journal. While any ticket is
    /// outstanding the prober must not re-admit the replica: an empty
    /// journal does not mean "caught up", it means an older op is still in
    /// flight toward it, and re-admitting would let newer writes apply
    /// before it.
    pub(crate) pending_misses: usize,
}

pub(crate) struct Replica {
    pub(crate) name: String,
    pub(crate) backend: Arc<dyn Backend>,
    pub(crate) state: Mutex<ReplicaState>,
    /// Sessions currently transaction-pinned to this replica (best-effort,
    /// for observability).
    pinned_sessions: AtomicUsize,
    pub(crate) health_state: Arc<Gauge>,
    pub(crate) depth_gauge: Arc<Gauge>,
    pub(crate) fences: Arc<Counter>,
    pub(crate) heals: Arc<Counter>,
    pub(crate) probes_ok: Arc<Counter>,
    pub(crate) probes_fail: Arc<Counter>,
    pub(crate) repairs: Arc<Counter>,
    reads: Arc<Counter>,
    writes: Arc<Counter>,
}

/// Distinguishes pins of different `ReplicatedBackend` instances sharing a
/// thread (each instance only honours its own pins).
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The session's transaction pin: `(instance id, replica index)`.
    /// One statement runs on one thread end to end (the same invariant the
    /// provenance builder relies on), so a thread-local carries the pin
    /// across statements of the session without touching the `Backend`
    /// trait surface.
    static PIN: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// A set of replicas behind one [`Backend`] face.
pub struct ReplicatedBackend {
    name: String,
    instance: u64,
    pub(crate) replicas: Vec<Replica>,
    next: AtomicUsize,
    pub(crate) config: ReplicaConfig,
    healthy_gauge: Arc<Gauge>,
    divergence: Arc<Counter>,
}

impl ReplicatedBackend {
    /// Build from at least one replica with default tuning, reporting to
    /// the global observability context.
    pub fn new(replicas: Vec<Arc<dyn Backend>>) -> Result<Self, BackendError> {
        ReplicatedBackend::with_config(replicas, ReplicaConfig::default(), ObsContext::global())
    }

    /// Build with explicit tuning. Each replica is wrapped in its own
    /// [`ResilientBackend`] so retries and breaker state are per replica.
    pub fn with_config(
        replicas: Vec<Arc<dyn Backend>>,
        config: ReplicaConfig,
        obs: &Arc<ObsContext>,
    ) -> Result<Self, BackendError> {
        if replicas.is_empty() {
            return Err(BackendError::fatal("replica set must not be empty"));
        }
        let m = &obs.metrics;
        let resilience = config.resilience.clone().unwrap_or_default();
        let replicas: Vec<Replica> = replicas
            .into_iter()
            .enumerate()
            .map(|(i, raw)| {
                let name = format!("r{i}");
                let backend: Arc<dyn Backend> =
                    ResilientBackend::wrap(raw, resilience.clone(), obs);
                let labels = &[("replica", name.as_str())][..];
                let health_state = m.gauge("hyperq_replica_health_state", labels);
                let depth_gauge = m.gauge("hyperq_replica_repair_depth", labels);
                health_state.set(ReplicaHealth::Healthy.gauge_value());
                depth_gauge.set(0);
                Replica {
                    backend,
                    state: Mutex::new(ReplicaState {
                        health: ReplicaHealth::Healthy,
                        journal: VecDeque::new(),
                        pending_misses: 0,
                    }),
                    pinned_sessions: AtomicUsize::new(0),
                    health_state,
                    depth_gauge,
                    fences: m.counter("hyperq_replica_fences_total", labels),
                    heals: m.counter("hyperq_replica_heals_total", labels),
                    probes_ok: m.counter(
                        "hyperq_replica_probes_total",
                        &[("replica", &name), ("outcome", "ok")],
                    ),
                    probes_fail: m.counter(
                        "hyperq_replica_probes_total",
                        &[("replica", &name), ("outcome", "fail")],
                    ),
                    repairs: m.counter("hyperq_replica_repairs_total", labels),
                    reads: m.counter(
                        "hyperq_replica_statements_total",
                        &[("replica", &name), ("kind", "read")],
                    ),
                    writes: m.counter(
                        "hyperq_replica_statements_total",
                        &[("replica", &name), ("kind", "write")],
                    ),
                    name,
                }
            })
            .collect();
        let healthy_gauge = m.gauge("hyperq_replica_healthy", &[]);
        healthy_gauge.set(replicas.len() as i64);
        Ok(ReplicatedBackend {
            name: format!("replicated({})", replicas.len()),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            replicas,
            next: AtomicUsize::new(0),
            config,
            healthy_gauge,
            divergence: m.counter("hyperq_replica_divergence_total", &[]),
        })
    }

    /// Number of replicas in rotation.
    pub fn healthy_replicas(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.state.lock().health == ReplicaHealth::Healthy)
            .count()
    }

    /// Per-replica state for operators (`/replicas`).
    pub fn snapshot(&self) -> Vec<ReplicaSnapshot> {
        self.replicas
            .iter()
            .map(|r| {
                let st = r.state.lock();
                ReplicaSnapshot {
                    name: r.name.clone(),
                    health: st.health,
                    pinned_sessions: r.pinned_sessions.load(Ordering::Relaxed),
                    journal_depth: st.journal.len(),
                    fences: r.fences.get(),
                    heals: r.heals.get(),
                }
            })
            .collect()
    }

    /// Total write-result divergences detected across the set's lifetime.
    pub fn divergences(&self) -> u64 {
        self.divergence.get()
    }

    /// The replica the calling session is transaction-pinned to, if any.
    pub fn pinned_replica(&self) -> Option<String> {
        self.current_pin().map(|i| self.replicas[i].name.clone())
    }

    /// Release the calling thread's transaction pin, if any. The pin is
    /// thread-local, so session owners (the wire worker's exit guard) must
    /// call this from the session's own thread on teardown — a client that
    /// disconnects mid-transaction would otherwise leave the replica's
    /// pinned-session count elevated forever.
    pub fn release_pin(&self) {
        self.set_pin(None);
    }

    fn current_pin(&self) -> Option<usize> {
        PIN.with(|p| p.get().filter(|(id, _)| *id == self.instance).map(|(_, i)| i))
    }

    fn set_pin(&self, idx: Option<usize>) {
        let old = self.current_pin();
        if old == idx {
            return;
        }
        if let Some(o) = old {
            self.replicas[o].pinned_sessions.fetch_sub(1, Ordering::Relaxed);
        }
        if let Some(n) = idx {
            self.replicas[n].pinned_sessions.fetch_add(1, Ordering::Relaxed);
        }
        PIN.with(|p| p.set(idx.map(|i| (self.instance, i))));
    }

    /// The session's pinned replica for an in-transaction statement,
    /// choosing (and pinning) one round-robin on first use.
    fn ensure_pin(&self) -> Result<usize, BackendError> {
        if let Some(i) = self.current_pin() {
            if self.replicas[i].state.lock().health == ReplicaHealth::Healthy {
                return Ok(i);
            }
            // The pinned replica left rotation between statements; the
            // transaction cannot move without giving up its snapshot.
            self.set_pin(None);
            return Err(BackendError::connection_lost(format!(
                "pinned replica {} lost mid-transaction",
                self.replicas[i].name
            )));
        }
        let i = self.pick_healthy()?;
        self.set_pin(Some(i));
        Ok(i)
    }

    fn pick_healthy(&self) -> Result<usize, BackendError> {
        let n = self.replicas.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            if self.replicas[i].state.lock().health == ReplicaHealth::Healthy {
                return Ok(i);
            }
        }
        Err(BackendError::rejected("no healthy replica available"))
    }

    /// Take a replica out of rotation (idempotent).
    pub(crate) fn fence(&self, i: usize) {
        let r = &self.replicas[i];
        let mut st = r.state.lock();
        if st.health != ReplicaHealth::Healthy {
            return;
        }
        st.health = ReplicaHealth::Fenced;
        r.health_state.set(ReplicaHealth::Fenced.gauge_value());
        r.fences.inc();
        drop(st);
        self.refresh_healthy_gauge();
    }

    /// Flip a replica to the terminal needs-resync state: its journal can
    /// no longer reconcile it (overflow, or an applied-but-divergent
    /// write).
    fn mark_needs_resync(&self, i: usize) {
        let r = &self.replicas[i];
        let mut st = r.state.lock();
        if st.health == ReplicaHealth::NeedsResync {
            return;
        }
        if st.health == ReplicaHealth::Healthy {
            r.fences.inc();
        }
        st.health = ReplicaHealth::NeedsResync;
        st.journal.clear();
        r.health_state.set(ReplicaHealth::NeedsResync.gauge_value());
        r.depth_gauge.set(0);
        drop(st);
        self.refresh_healthy_gauge();
    }

    pub(crate) fn refresh_healthy_gauge(&self) {
        self.healthy_gauge.set(self.healthy_replicas() as i64);
    }

    /// Fence a replica that just failed a broadcast and journal the op it
    /// missed, atomically under its state lock. Fencing and journaling in
    /// one critical section closes the race where the prober probes the
    /// freshly fenced replica, finds an empty journal, re-admits it, and a
    /// concurrent broadcast applies a *newer* write before this op lands —
    /// out-of-order application the row counts would never reveal.
    fn fence_and_journal(&self, i: usize, op: RepairOp) {
        let r = &self.replicas[i];
        let fenced_now;
        {
            let mut st = r.state.lock();
            match st.health {
                ReplicaHealth::NeedsResync => return,
                ReplicaHealth::Healthy => {
                    st.health = ReplicaHealth::Fenced;
                    r.health_state.set(ReplicaHealth::Fenced.gauge_value());
                    r.fences.inc();
                    fenced_now = true;
                }
                ReplicaHealth::Fenced => fenced_now = false,
            }
            if st.journal.len() >= self.config.journal_capacity {
                drop(st);
                self.mark_needs_resync(i);
                return;
            }
            st.journal.push_back(op);
            r.depth_gauge.set(st.journal.len() as i64);
        }
        if fenced_now {
            self.refresh_healthy_gauge();
        }
    }

    /// Land a broadcast op in the journal of a replica that was already
    /// fenced at dispatch, releasing the pending-miss ticket taken under
    /// the dispatch-time health check (`op` `None` releases the ticket
    /// without journaling — the broadcast applied nowhere). The prober
    /// refuses re-admission while a ticket is outstanding, so the append
    /// cannot lose a race against a premature heal.
    fn journal_missed(&self, i: usize, op: Option<RepairOp>) {
        let r = &self.replicas[i];
        let refenced;
        {
            let mut st = r.state.lock();
            debug_assert!(st.pending_misses > 0, "pending-miss ticket double-released");
            st.pending_misses = st.pending_misses.saturating_sub(1);
            if st.health == ReplicaHealth::NeedsResync {
                return;
            }
            let Some(op) = op else { return };
            // The outstanding ticket keeps the prober from re-admitting
            // the replica, so it is still fenced here; if that invariant
            // is ever broken, re-fence rather than strand the op in the
            // journal of a healthy replica (drain only runs on fenced
            // ones).
            if st.health == ReplicaHealth::Healthy {
                st.health = ReplicaHealth::Fenced;
                r.health_state.set(ReplicaHealth::Fenced.gauge_value());
                r.fences.inc();
                refenced = true;
            } else {
                refenced = false;
            }
            if st.journal.len() >= self.config.journal_capacity {
                drop(st);
                self.mark_needs_resync(i);
                return;
            }
            st.journal.push_back(op);
            r.depth_gauge.set(st.journal.len() as i64);
        }
        if refenced {
            self.refresh_healthy_gauge();
        }
    }

    fn execute_read(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        if ctx.in_transaction {
            let i = self.ensure_pin()?;
            let r = &self.replicas[i];
            return match r.backend.execute_ctx(sql, ctx) {
                Ok(res) => {
                    r.reads.inc();
                    provenance::note_replica(&r.name);
                    Ok(res)
                }
                Err(e) => {
                    if matches!(
                        e.kind,
                        BackendErrorKind::ConnectionLost | BackendErrorKind::Timeout
                    ) {
                        // The replica is gone, and with it the transaction's
                        // snapshot: fence it, drop the pin, and let the
                        // recovery layer abort the transaction (one 2631).
                        self.fence(i);
                        self.set_pin(None);
                    }
                    Err(e)
                }
            };
        }
        let n = self.replicas.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let mut last_err: Option<BackendError> = None;
        for k in 0..n {
            let i = (start + k) % n;
            let r = &self.replicas[i];
            if r.state.lock().health != ReplicaHealth::Healthy {
                continue;
            }
            match r.backend.execute_ctx(sql, ctx) {
                Ok(res) => {
                    r.reads.inc();
                    provenance::note_replica(&r.name);
                    return Ok(res);
                }
                // A fatal error is the statement's fault (bad SQL fails
                // identically everywhere): surface it, keep the replica.
                Err(e) if e.kind == BackendErrorKind::Fatal => return Err(e),
                // Rejected (breaker open, admission) — replica is saturated
                // but not stale; fail over without fencing.
                Err(e) if e.kind == BackendErrorKind::Rejected => last_err = Some(e),
                // Connection lost / timeout / exhausted transient retries:
                // the replica itself is unhealthy.
                Err(e) => {
                    self.fence(i);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| BackendError::rejected("no healthy replica available")))
    }

    fn execute_write(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        let pin = if ctx.in_transaction { Some(self.ensure_pin()?) } else { None };
        // The caller's idempotence flag passes through untouched. Granting
        // idempotence here would let each replica's resilience layer
        // blind-retry DML after an ambiguous failure (connection lost or
        // timeout mid-write) whose first attempt may already have applied —
        // a duplicated effect on one replica that the row-count divergence
        // check cannot see, because the retry reports the same count.
        // Failed or missed writes instead reach fenced replicas through
        // the repair journal, whose replay is explicitly at-least-once.
        let mut attempted: Vec<(usize, Result<ExecResult, BackendError>)> = Vec::new();
        let mut missed: Vec<usize> = Vec::new();
        for (i, r) in self.replicas.iter().enumerate() {
            {
                let mut st = r.state.lock();
                match st.health {
                    ReplicaHealth::Healthy => {}
                    ReplicaHealth::Fenced => {
                        // Take a pending-miss ticket under the same lock
                        // that observed the fence: until `journal_missed`
                        // releases it the prober will not re-admit this
                        // replica, so the journal append below cannot race
                        // a heal and land after newer writes.
                        st.pending_misses += 1;
                        missed.push(i);
                        continue;
                    }
                    ReplicaHealth::NeedsResync => continue,
                }
            }
            attempted.push((i, r.backend.execute_ctx(sql, ctx)));
        }
        let ok_count = attempted.iter().filter(|(_, res)| res.is_ok()).count();
        if ok_count == 0 {
            // Nothing applied the write; the client sees a failure and the
            // journal records nothing (tickets are released unjournaled).
            // Replicas whose outcome is *unknown* (the connection died or
            // timed out mid-write — it may have applied) are fenced; if
            // they did apply it, the next broadcast write's row-count
            // comparison flags them as diverged.
            for i in missed {
                self.journal_missed(i, None);
            }
            for (i, res) in &attempted {
                if let Err(e) = res {
                    if matches!(
                        e.kind,
                        BackendErrorKind::ConnectionLost | BackendErrorKind::Timeout
                    ) {
                        self.fence(*i);
                    }
                }
            }
            if let Some(p) = pin {
                if attempted.iter().any(|(i, res)| *i == p && res.is_err()) {
                    self.set_pin(None);
                }
            }
            return Err(attempted
                .into_iter()
                .find_map(|(_, res)| res.err())
                .unwrap_or_else(|| BackendError::rejected("no healthy replica available")));
        }
        // At least one replica applied the write: every replica that did
        // not must replay it. Failures fence and journal in one critical
        // section; replicas fenced at dispatch journal under their ticket.
        for (i, res) in &attempted {
            if res.is_err() {
                self.fence_and_journal(*i, RepairOp::Write(sql.to_string()));
            }
        }
        for i in missed {
            self.journal_missed(i, Some(RepairOp::Write(sql.to_string())));
        }
        // Divergence check: an applied write must affect the same number of
        // rows everywhere. The majority count wins (ties break toward the
        // lowest replica index, deterministically); minority replicas hold
        // state no journal replay can fix.
        let ok_results: Vec<(usize, &ExecResult)> = attempted
            .iter()
            .filter_map(|(i, res)| res.as_ref().ok().map(|r| (*i, r)))
            .collect();
        let majority_count = majority_row_count(&ok_results);
        let mut winner: Option<usize> = None;
        for (i, res) in &ok_results {
            if res.row_count == majority_count {
                if winner.is_none() {
                    winner = Some(*i);
                }
                self.replicas[*i].writes.inc();
            } else {
                self.divergence.inc();
                self.mark_needs_resync(*i);
            }
        }
        if let Some(p) = pin {
            match attempted.iter().find(|(i, _)| *i == p) {
                Some((_, Ok(res))) if res.row_count == majority_count => {
                    provenance::note_replica(&self.replicas[p].name);
                    return Ok(res.clone());
                }
                Some((_, Ok(_))) => {
                    // The pinned replica applied the write but disagrees
                    // with the majority: its transaction snapshot is not
                    // trustworthy. Abort the transaction.
                    self.set_pin(None);
                    return Err(BackendError::connection_lost(format!(
                        "pinned replica {} diverged mid-transaction",
                        self.replicas[p].name
                    )));
                }
                Some((_, Err(e))) => {
                    self.set_pin(None);
                    return Err(e.clone());
                }
                // `ensure_pin` only returns healthy replicas, which are all
                // in `attempted`.
                None => {}
            }
        }
        match winner {
            Some(i) => {
                provenance::note_replica(&self.replicas[i].name);
                // Only the winner's result reaches the client; find it
                // again by index to hand ownership out.
                match attempted.into_iter().find(|(j, _)| *j == i) {
                    Some((_, Ok(res))) => Ok(res),
                    _ => Err(BackendError::rejected("no healthy replica available")),
                }
            }
            None => Err(BackendError::rejected("no healthy replica available")),
        }
    }
}

/// The affected-row count reported by the majority of successful replicas;
/// ties break toward the earliest replica's count.
fn majority_row_count(ok_results: &[(usize, &ExecResult)]) -> u64 {
    let mut counts: Vec<(u64, usize)> = Vec::new();
    for (_, res) in ok_results {
        match counts.iter_mut().find(|(c, _)| *c == res.row_count) {
            Some((_, n)) => *n += 1,
            None => counts.push((res.row_count, 1)),
        }
    }
    // Strict `>` keeps the first-seen count on ties, i.e. the earliest
    // replica's answer — deterministic regardless of replica count.
    let mut best = (0u64, 0usize);
    for &(c, n) in &counts {
        if n > best.1 {
            best = (c, n);
        }
    }
    best.0
}

impl Backend for ReplicatedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        let read = is_read_only(sql);
        self.execute_ctx(sql, RequestContext { idempotent: read, in_transaction: false })
    }

    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        if !ctx.in_transaction {
            // First statement after a transaction closes releases the pin.
            self.set_pin(None);
        }
        if is_read_only(sql) {
            self.execute_read(sql, ctx)
        } else {
            self.execute_write(sql, ctx)
        }
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        let first_healthy = self
            .replicas
            .iter()
            .find(|r| r.state.lock().health == ReplicaHealth::Healthy);
        match first_healthy {
            Some(r) => r.backend.table_meta(name),
            // Degraded: answer from the first replica rather than losing
            // catalog access entirely (metadata is replicated DDL).
            None => self.replicas.first().and_then(|r| r.backend.table_meta(name)),
        }
    }

    fn reset_session(&self) -> Result<(), BackendError> {
        self.set_pin(None);
        let mut any_ok = false;
        let mut last_err = None;
        let mut missed: Vec<usize> = Vec::new();
        for (i, r) in self.replicas.iter().enumerate() {
            {
                let mut st = r.state.lock();
                match st.health {
                    ReplicaHealth::Healthy => {}
                    ReplicaHealth::Fenced => {
                        st.pending_misses += 1;
                        missed.push(i);
                        continue;
                    }
                    ReplicaHealth::NeedsResync => continue,
                }
            }
            match r.backend.reset_session() {
                Ok(()) => any_ok = true,
                Err(e) => {
                    self.fence_and_journal(i, RepairOp::Reset);
                    last_err = Some(e);
                }
            }
        }
        for i in missed {
            self.journal_missed(i, Some(RepairOp::Reset));
        }
        match (any_ok, last_err) {
            (true, _) => Ok(()),
            (false, Some(e)) => Err(e),
            (false, None) => Err(BackendError::rejected("no healthy replica available")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::testing::{FaultInjectingBackend, FaultPlan, ScriptedBackend};
    use hyperq_xtra::schema::Schema;

    /// Counting fake backend.
    struct Counting {
        reads: Mutex<u64>,
        writes: Mutex<u64>,
        fail_writes: bool,
        affected: u64,
    }

    impl Counting {
        fn new(fail_writes: bool) -> Arc<Self> {
            Counting::with_affected(fail_writes, 1)
        }

        fn with_affected(fail_writes: bool, affected: u64) -> Arc<Self> {
            Arc::new(Counting {
                reads: Mutex::new(0),
                writes: Mutex::new(0),
                fail_writes,
                affected,
            })
        }
    }

    impl Backend for Counting {
        fn name(&self) -> &str {
            "counting"
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            if is_read_only(sql) {
                *self.reads.lock() += 1;
                Ok(ExecResult::rows(Schema::empty(), vec![]))
            } else if self.fail_writes {
                Err(BackendError::fatal("disk full"))
            } else {
                *self.writes.lock() += 1;
                Ok(ExecResult::affected(self.affected))
            }
        }

        fn table_meta(&self, _name: &str) -> Option<TableDef> {
            None
        }
    }

    fn pair(a: &Arc<Counting>, b: &Arc<Counting>) -> ReplicatedBackend {
        ReplicatedBackend::new(vec![
            Arc::clone(a) as Arc<dyn Backend>,
            Arc::clone(b) as Arc<dyn Backend>,
        ])
        .unwrap()
    }

    #[test]
    fn reads_round_robin() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = pair(&a, &b);
        for _ in 0..10 {
            rep.execute("SELECT 1").unwrap();
        }
        assert_eq!(*a.reads.lock(), 5);
        assert_eq!(*b.reads.lock(), 5);
    }

    #[test]
    fn writes_broadcast() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = pair(&a, &b);
        rep.execute("INSERT INTO T VALUES (1)").unwrap();
        assert_eq!(*a.writes.lock(), 1);
        assert_eq!(*b.writes.lock(), 1);
    }

    #[test]
    fn failed_write_fences_replica_from_reads() {
        let (good, bad) = (Counting::new(false), Counting::new(true));
        let rep = pair(&good, &bad);
        assert_eq!(rep.healthy_replicas(), 2);
        // The write succeeds overall (one replica applied it), the bad
        // replica is fenced.
        rep.execute("DELETE FROM T").unwrap();
        assert_eq!(rep.healthy_replicas(), 1);
        // All subsequent reads go to the good replica only.
        for _ in 0..6 {
            rep.execute("SELECT 1").unwrap();
        }
        assert_eq!(*good.reads.lock(), 6);
        assert_eq!(*bad.reads.lock(), 0);
    }

    #[test]
    fn all_replicas_failing_is_an_error() {
        let bad = Counting::new(true);
        let rep = ReplicatedBackend::new(vec![Arc::clone(&bad) as Arc<dyn Backend>]).unwrap();
        assert!(rep.execute("DELETE FROM T").is_err());
        // A clean (fatal) write failure with zero successes does not fence:
        // the replicas are still mutually consistent.
        assert_eq!(rep.healthy_replicas(), 1);
        assert!(rep.execute("SELECT 1").is_ok());
    }

    #[test]
    fn empty_replica_set_rejected() {
        assert!(ReplicatedBackend::new(vec![]).is_err());
    }

    #[test]
    fn data_modifying_cte_is_classified_as_a_write() {
        // Regression: the keyword classifier routed `WITH … DELETE` to a
        // single replica, silently forking replica states.
        for sql in [
            "WITH x AS (SELECT 1 AS c) DELETE FROM t WHERE a IN (SELECT c FROM x)",
            "WITH x (a, b) AS (SELECT 1, 2), y AS (SELECT 3) UPDATE t SET a = 1",
            "WITH x AS (SELECT 'it''s, quoted' AS c) INSERT INTO t SELECT c FROM x",
        ] {
            assert!(!is_read_only(sql), "{sql} must route as a write");
        }
        for sql in [
            "WITH x AS (SELECT 1 AS c) SELECT * FROM x",
            "WITH RECURSIVE r (n) AS (SELECT 1) SEL n FROM r",
            "SELECT 1",
            "SEL 1",
            "HELP SESSION",
        ] {
            assert!(is_read_only(sql), "{sql} must route as a read");
        }
        // Unclassifiable text defaults to write (broadcast is state-safe).
        assert!(!is_read_only("FROBNICATE ALL THE THINGS"));
        assert!(!is_read_only("SET QUERY_BAND = 'x' FOR SESSION"));
    }

    #[test]
    fn data_modifying_cte_broadcasts() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = pair(&a, &b);
        rep.execute("WITH x AS (SELECT 1 AS c) DELETE FROM t WHERE a IN (SELECT c FROM x)")
            .unwrap();
        assert_eq!(*a.writes.lock(), 1);
        assert_eq!(*b.writes.lock(), 1);
    }

    #[test]
    fn divergent_write_result_flags_minority_for_resync() {
        let a = Counting::with_affected(false, 3);
        let b = Counting::with_affected(false, 3);
        let c = Counting::with_affected(false, 7); // disagrees
        let rep = ReplicatedBackend::new(vec![
            Arc::clone(&a) as Arc<dyn Backend>,
            Arc::clone(&b) as Arc<dyn Backend>,
            Arc::clone(&c) as Arc<dyn Backend>,
        ])
        .unwrap();
        let res = rep.execute("DELETE FROM T").unwrap();
        assert_eq!(res.row_count, 3, "majority count wins");
        assert_eq!(rep.divergences(), 1);
        let snap = rep.snapshot();
        assert_eq!(snap[2].health, ReplicaHealth::NeedsResync);
        assert_eq!(snap[2].journal_depth, 0, "resync replicas journal nothing");
        assert_eq!(rep.healthy_replicas(), 2);
        // Further writes skip the diverged replica entirely.
        rep.execute("DELETE FROM T").unwrap();
        assert_eq!(*c.writes.lock(), 1);
    }

    #[test]
    fn fenced_replica_journals_writes_and_overflow_flips_to_resync() {
        let good: Arc<dyn Backend> = Arc::new(ScriptedBackend::acking(vec![]));
        let flaky = FaultInjectingBackend::wrap(
            Arc::new(ScriptedBackend::acking(vec![])),
            FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Transient),
        );
        let rep = ReplicatedBackend::with_config(
            vec![good, flaky as Arc<dyn Backend>],
            ReplicaConfig {
                journal_capacity: 3,
                probe_interval: Duration::ZERO,
                resilience: Some(ResilienceConfig {
                    retry: crate::resilience::RetryPolicy {
                        max_attempts: 1,
                        ..Default::default()
                    },
                    ..Default::default()
                }),
                ..Default::default()
            },
            ObsContext::global(),
        )
        .unwrap();
        rep.execute("INSERT INTO T VALUES (1)").unwrap();
        let snap = rep.snapshot();
        assert_eq!(snap[1].health, ReplicaHealth::Fenced);
        assert_eq!(snap[1].journal_depth, 1, "the failed write is journaled");
        rep.execute("INSERT INTO T VALUES (2)").unwrap();
        rep.execute("INSERT INTO T VALUES (3)").unwrap();
        assert_eq!(rep.snapshot()[1].journal_depth, 3);
        // Capacity is 3: the next missed write overflows the journal and
        // the replica stops pretending repair can save it.
        rep.execute("INSERT INTO T VALUES (4)").unwrap();
        let snap = rep.snapshot();
        assert_eq!(snap[1].health, ReplicaHealth::NeedsResync);
        assert_eq!(snap[1].journal_depth, 0);
    }

    /// Records the [`RequestContext`] each call arrives with.
    struct CtxCapture {
        ctxs: Mutex<Vec<RequestContext>>,
    }

    impl CtxCapture {
        fn new() -> Arc<Self> {
            Arc::new(CtxCapture { ctxs: Mutex::new(Vec::new()) })
        }
    }

    impl Backend for CtxCapture {
        fn name(&self) -> &str {
            "ctx-capture"
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            self.execute_ctx(sql, RequestContext::default())
        }

        fn execute_ctx(&self, _sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
            self.ctxs.lock().push(ctx);
            Ok(ExecResult::affected(1))
        }

        fn table_meta(&self, _name: &str) -> Option<TableDef> {
            None
        }
    }

    #[test]
    fn broadcast_writes_keep_the_callers_idempotence_flag() {
        // Regression: the broadcast used to force `idempotent: true`, which
        // let the per-replica resilience layer blind-retry non-idempotent
        // DML after an ambiguous failure — a possible double apply on one
        // replica that divergence detection cannot see.
        let cap = CtxCapture::new();
        let rep = ReplicatedBackend::new(vec![Arc::clone(&cap) as Arc<dyn Backend>]).unwrap();
        rep.execute("INSERT INTO T VALUES (1)").unwrap();
        rep.execute_ctx("DELETE FROM T", RequestContext::write()).unwrap();
        for ctx in cap.ctxs.lock().iter() {
            assert!(!ctx.idempotent, "broadcast writes must stay non-idempotent: {ctx:?}");
        }
    }

    #[test]
    fn release_pin_clears_a_leaked_session_pin() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = pair(&a, &b);
        let txn = RequestContext { idempotent: true, in_transaction: true };
        rep.execute_ctx("SELECT 1", txn).unwrap();
        let pinned: usize = rep.snapshot().iter().map(|s| s.pinned_sessions).sum();
        assert_eq!(pinned, 1);
        // Session teardown (wire worker exit guard) releases the pin even
        // when the client vanished mid-transaction without a reset.
        rep.release_pin();
        let pinned: usize = rep.snapshot().iter().map(|s| s.pinned_sessions).sum();
        assert_eq!(pinned, 0, "teardown must return the pinned-session count");
        assert!(rep.pinned_replica().is_none());
    }

    #[test]
    fn transaction_pins_reads_to_one_replica() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = pair(&a, &b);
        let txn = RequestContext { idempotent: true, in_transaction: true };
        for _ in 0..6 {
            rep.execute_ctx("SELECT 1", txn).unwrap();
        }
        let (ra, rb) = (*a.reads.lock(), *b.reads.lock());
        assert!(
            (ra == 6 && rb == 0) || (ra == 0 && rb == 6),
            "in-transaction reads must stick to one replica, got {ra}/{rb}"
        );
        assert!(rep.pinned_replica().is_some());
        // The first statement outside the transaction releases the pin.
        rep.execute_ctx("SELECT 1", RequestContext::read_only()).unwrap();
        assert!(rep.pinned_replica().is_none());
    }

    #[test]
    fn losing_the_pinned_replica_mid_transaction_is_a_connection_error() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = pair(&a, &b);
        let txn = RequestContext { idempotent: true, in_transaction: true };
        rep.execute_ctx("SELECT 1", txn).unwrap();
        let pinned = rep.pinned_replica().unwrap();
        let idx = if pinned == "r0" { 0 } else { 1 };
        rep.fence(idx);
        let err = rep.execute_ctx("SELECT 1", txn).unwrap_err();
        assert_eq!(err.kind, BackendErrorKind::ConnectionLost);
        assert!(err.message.contains("mid-transaction"), "{}", err.message);
        assert!(rep.pinned_replica().is_none(), "the dead pin must be released");
    }
}
