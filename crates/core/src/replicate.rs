//! Scale-out across replicas (paper §B.3 — listed as in-progress work).
//!
//! "A common solution … is to maintain multiple replicas of the data
//! warehouse and load balance queries across them. The ADV solution on top
//! can then automatically route the queries to the different replicas,
//! without sacrificing consistency, and without requiring changes to the
//! application logic."
//!
//! [`ReplicatedBackend`] implements exactly that behind the ordinary
//! [`Backend`] interface: reads round-robin across replicas; writes (DML,
//! DDL) are applied to **every** replica in order, and a replica that
//! fails a write is fenced off from further routing rather than allowed to
//! serve stale data.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::{Backend, BackendError, ExecResult, RequestContext};
use hyperq_xtra::catalog::TableDef;

/// Statement classification for routing.
fn is_read_only(sql: &str) -> bool {
    let trimmed = sql.trim_start();
    let first = trimmed
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    matches!(first.as_str(), "SELECT" | "SEL" | "WITH")
}

struct Replica {
    backend: Arc<dyn Backend>,
    /// A replica that failed a write is fenced: it no longer serves reads
    /// (it may be stale) and is skipped by subsequent writes.
    fenced: RwLock<bool>,
}

/// A set of replicas behind one [`Backend`] face.
pub struct ReplicatedBackend {
    name: String,
    replicas: Vec<Replica>,
    next: AtomicUsize,
}

impl ReplicatedBackend {
    /// Build from at least one replica.
    pub fn new(replicas: Vec<Arc<dyn Backend>>) -> Result<Self, BackendError> {
        if replicas.is_empty() {
            return Err(BackendError::fatal("replica set must not be empty"));
        }
        Ok(ReplicatedBackend {
            name: format!("replicated({})", replicas.len()),
            replicas: replicas
                .into_iter()
                .map(|backend| Replica { backend, fenced: RwLock::new(false) })
                .collect(),
            next: AtomicUsize::new(0),
        })
    }

    /// Number of replicas still serving traffic.
    pub fn healthy_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| !*r.fenced.read()).count()
    }

    /// Pick the next healthy replica round-robin.
    fn route_read(&self) -> Result<&Replica, BackendError> {
        let n = self.replicas.len();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let r = &self.replicas[(start + k) % n];
            if !*r.fenced.read() {
                return Ok(r);
            }
        }
        Err(BackendError::rejected("no healthy replica available"))
    }
}

impl Backend for ReplicatedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        self.execute_ctx(sql, RequestContext::from_sql(sql))
    }

    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        if is_read_only(sql) {
            return self.route_read()?.backend.execute_ctx(sql, ctx);
        }
        // Writes: apply to every healthy replica; fence replicas whose
        // write fails so they cannot serve stale reads. The write succeeds
        // if at least one replica applied it.
        let mut last_ok: Option<ExecResult> = None;
        let mut last_err: Option<BackendError> = None;
        for r in &self.replicas {
            if *r.fenced.read() {
                continue;
            }
            match r.backend.execute_ctx(sql, ctx) {
                Ok(res) => last_ok = Some(res),
                Err(e) => {
                    *r.fenced.write() = true;
                    last_err = Some(e);
                }
            }
        }
        match (last_ok, last_err) {
            (Some(res), _) => Ok(res),
            (None, Some(e)) => Err(e),
            (None, None) => Err(BackendError::rejected("no healthy replica available")),
        }
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        self.replicas
            .iter()
            .find(|r| !*r.fenced.read())
            .and_then(|r| r.backend.table_meta(name))
    }

    fn reset_session(&self) -> Result<(), BackendError> {
        // Re-establish every healthy replica's session; one success keeps
        // the replicated target usable (failed ones get fenced).
        let mut last_err = None;
        let mut any_ok = false;
        for r in &self.replicas {
            if *r.fenced.read() {
                continue;
            }
            match r.backend.reset_session() {
                Ok(()) => any_ok = true,
                Err(e) => {
                    *r.fenced.write() = true;
                    last_err = Some(e);
                }
            }
        }
        match (any_ok, last_err) {
            (true, _) => Ok(()),
            (false, Some(e)) => Err(e),
            (false, None) => Err(BackendError::rejected("no healthy replica available")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_xtra::schema::Schema;
    use parking_lot::Mutex;

    /// Counting fake backend.
    struct Counting {
        reads: Mutex<u64>,
        writes: Mutex<u64>,
        fail_writes: bool,
    }

    impl Counting {
        fn new(fail_writes: bool) -> Arc<Self> {
            Arc::new(Counting { reads: Mutex::new(0), writes: Mutex::new(0), fail_writes })
        }
    }

    impl Backend for Counting {
        fn name(&self) -> &str {
            "counting"
        }

        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            if is_read_only(sql) {
                *self.reads.lock() += 1;
                Ok(ExecResult::rows(Schema::empty(), vec![]))
            } else if self.fail_writes {
                Err(BackendError::fatal("disk full"))
            } else {
                *self.writes.lock() += 1;
                Ok(ExecResult::affected(1))
            }
        }

        fn table_meta(&self, _name: &str) -> Option<TableDef> {
            None
        }
    }

    #[test]
    fn reads_round_robin() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = ReplicatedBackend::new(vec![
            Arc::clone(&a) as Arc<dyn Backend>,
            Arc::clone(&b) as Arc<dyn Backend>,
        ])
        .unwrap();
        for _ in 0..10 {
            rep.execute("SELECT 1").unwrap();
        }
        assert_eq!(*a.reads.lock(), 5);
        assert_eq!(*b.reads.lock(), 5);
    }

    #[test]
    fn writes_broadcast() {
        let (a, b) = (Counting::new(false), Counting::new(false));
        let rep = ReplicatedBackend::new(vec![
            Arc::clone(&a) as Arc<dyn Backend>,
            Arc::clone(&b) as Arc<dyn Backend>,
        ])
        .unwrap();
        rep.execute("INSERT INTO T VALUES (1)").unwrap();
        assert_eq!(*a.writes.lock(), 1);
        assert_eq!(*b.writes.lock(), 1);
    }

    #[test]
    fn failed_write_fences_replica_from_reads() {
        let (good, bad) = (Counting::new(false), Counting::new(true));
        let rep = ReplicatedBackend::new(vec![
            Arc::clone(&good) as Arc<dyn Backend>,
            Arc::clone(&bad) as Arc<dyn Backend>,
        ])
        .unwrap();
        assert_eq!(rep.healthy_replicas(), 2);
        // The write succeeds overall (one replica applied it), the bad
        // replica is fenced.
        rep.execute("DELETE FROM T").unwrap();
        assert_eq!(rep.healthy_replicas(), 1);
        // All subsequent reads go to the good replica only.
        for _ in 0..6 {
            rep.execute("SELECT 1").unwrap();
        }
        assert_eq!(*good.reads.lock(), 6);
        assert_eq!(*bad.reads.lock(), 0);
    }

    #[test]
    fn all_replicas_failing_is_an_error() {
        let bad = Counting::new(true);
        let rep = ReplicatedBackend::new(vec![Arc::clone(&bad) as Arc<dyn Backend>]).unwrap();
        assert!(rep.execute("DELETE FROM T").is_err());
        assert!(rep.execute("SELECT 1").is_err(), "fenced replica must not serve reads");
    }

    #[test]
    fn empty_replica_set_rejected() {
        assert!(ReplicatedBackend::new(vec![]).is_err());
    }
}
