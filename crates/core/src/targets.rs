//! First-class target profiles: the named registry behind
//! `HyperQBuilder::for_target`, the gateway's `target` setting, and the
//! `hyperq-assess --target` flag.
//!
//! The paper's premise is one Teradata frontend adapting to *many* cloud
//! targets (§4.4, Figure 2). A [`TargetProfile`] is everything the
//! pipeline needs to know about one of them: a stable registry name, the
//! capability signature ([`TargetCapabilities`], *whether* a construct is
//! supported — drives the transformer, the emulation layer, and the
//! conformance lints) and the dialect [`Flavor`] (*how* supported
//! constructs are spelled — drives the serializer), plus whether the
//! bundled `hyperq-engine` can actually execute the profile's output.
//!
//! Two profiles are executable: `simwh`, the historical default, and
//! `simwh-reduced`, a deliberately poorer signature (no derived-table
//! column aliases, function-style `MOD`, `DATEADD` date math, and neither
//! `LIMIT` nor `TOP`) that forces the transformer and the emulation layer
//! down genuinely different rewrite paths while the engine still executes
//! every corpus — the cross-target differential suite pins both profiles'
//! client-visible transcripts byte-for-byte against each other.

use crate::capability::TargetCapabilities;
use crate::serialize::Flavor;

/// One named target: capabilities + dialect flavor + execution substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetProfile {
    /// The registry key (`"simwh"`, `"cloud-a"`, …): stable, lowercase,
    /// and the value of every `target` metric label and provenance field.
    pub name: String,
    /// Feature support: what the transformer/emulation layer must rewrite.
    pub caps: TargetCapabilities,
    /// Dialect spellings: how the serializer writes what is supported.
    pub flavor: Flavor,
    /// Whether the bundled `hyperq-engine` executes this profile's output
    /// (the surveyed cloud profiles are assess/serialize-only).
    pub executable: bool,
    /// One-line description for reports and docs.
    pub description: &'static str,
}

impl TargetProfile {
    /// Bridge from a raw capability signature (the pre-registry API): a
    /// signature matching a registered profile resolves to that profile;
    /// anything else becomes an anonymous, non-executable custom profile
    /// whose flavor is derived from the signature.
    pub fn from_caps(caps: TargetCapabilities) -> TargetProfile {
        for p in all() {
            if p.caps == caps {
                return p;
            }
        }
        TargetProfile {
            name: slug(caps.name),
            flavor: Flavor::from_caps(&caps),
            executable: false,
            description: "custom capability signature",
            caps,
        }
    }

    /// The display name carried on the capability signature (`"SimWH"`,
    /// `"Cloud A"`, …) — the registry `name` is the lookup key.
    pub fn display_name(&self) -> &'static str {
        self.caps.name
    }
}

fn slug(display: &str) -> String {
    display
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '-' })
        .collect()
}

fn profile(
    name: &str,
    caps: TargetCapabilities,
    executable: bool,
    description: &'static str,
) -> TargetProfile {
    let flavor = Flavor::from_caps(&caps);
    TargetProfile { name: name.to_string(), caps, flavor, executable, description }
}

/// The default executable profile: the bundled engine substrate.
pub fn simwh() -> TargetProfile {
    profile(
        "simwh",
        TargetCapabilities::simwh(),
        true,
        "bundled ANSI engine substrate (default target)",
    )
}

/// The second executable profile: the engine substrate behind a
/// deliberately reduced dialect, so emulations and spellings that the
/// default target never needs (`LimitFetch`, `MOD(a, b)`, `DATEADD`,
/// derived-table alias normalization) fire on live corpus traffic.
pub fn simwh_reduced() -> TargetProfile {
    profile(
        "simwh-reduced",
        TargetCapabilities::simwh_reduced(),
        true,
        "engine substrate with a reduced dialect: no LIMIT/TOP, no \
         derived-table column aliases, MOD(a, b), DATEADD date math",
    )
}

/// Every registered profile, registry order: the executable pair first,
/// then the six surveyed cloud profiles of Figure 2.
pub fn all() -> Vec<TargetProfile> {
    vec![
        simwh(),
        simwh_reduced(),
        profile("cloud-a", TargetCapabilities::cloud_a(), false, "2017-era MPP warehouse, T-SQL heritage"),
        profile("cloud-b", TargetCapabilities::cloud_b(), false, "serverless query service over object storage"),
        profile("cloud-c", TargetCapabilities::cloud_c(), false, "distributed Postgres-heritage warehouse"),
        profile("cloud-d", TargetCapabilities::cloud_d(), false, "elastic data warehouse, ANSI-leaning"),
        profile("cloud-e", TargetCapabilities::cloud_e(), false, "managed columnar warehouse"),
        profile("cloud-f", TargetCapabilities::cloud_f(), false, "SQL-on-Hadoop engine"),
    ]
}

/// The profiles whose serialized SQL the bundled engine executes.
pub fn executable() -> Vec<TargetProfile> {
    all().into_iter().filter(|p| p.executable).collect()
}

/// The six surveyed cloud profiles (Figure 2's population).
pub fn surveyed() -> Vec<TargetProfile> {
    all().into_iter().filter(|p| p.name.starts_with("cloud-")).collect()
}

/// Look a profile up by registry name, case-insensitively; `_` and `-`
/// are interchangeable (`cloud_a` resolves like `cloud-a`).
pub fn lookup(name: &str) -> Option<TargetProfile> {
    let key: String = name
        .chars()
        .map(|c| if c == '_' { '-' } else { c.to_ascii_lowercase() })
        .collect();
    all().into_iter().find(|p| p.name == key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::LimitSpelling;

    #[test]
    fn lookup_resolves_every_registered_name() {
        for p in all() {
            assert_eq!(lookup(&p.name).as_ref(), Some(&p));
        }
        assert_eq!(lookup("SIMWH").map(|p| p.name), Some("simwh".into()));
        assert_eq!(lookup("cloud_a").map(|p| p.name), Some("cloud-a".into()));
        assert_eq!(lookup("SimWH-Reduced").map(|p| p.name), Some("simwh-reduced".into()));
        assert!(lookup("no-such-target").is_none());
    }

    #[test]
    fn exactly_two_profiles_are_executable_and_they_differ() {
        let exec = executable();
        assert_eq!(
            exec.iter().map(|p| p.name.as_str()).collect::<Vec<_>>(),
            ["simwh", "simwh-reduced"]
        );
        let [a, b] = &exec[..] else { unreachable!() };
        assert_ne!(a.caps, b.caps, "executable profiles must differ in capabilities");
        assert_eq!(a.flavor.limit, LimitSpelling::Limit);
        assert_eq!(b.flavor.limit, LimitSpelling::None);
    }

    #[test]
    fn from_caps_round_trips_registered_signatures() {
        for p in all() {
            assert_eq!(TargetProfile::from_caps(p.caps.clone()), p);
        }
        let mut custom = TargetCapabilities::cloud_d();
        custom.grouping_sets = false;
        custom.returning_clause = false;
        let p = TargetProfile::from_caps(custom.clone());
        assert!(!p.executable);
        assert_eq!(p.name, "cloudwh-d", "anonymous profiles slug their display name");
        assert_eq!(p.display_name(), "CloudWH-D");
        assert_eq!(p.caps, custom);
    }

    #[test]
    fn registry_names_are_stable_slugs() {
        for p in all() {
            assert!(
                p.name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{}",
                p.name
            );
        }
    }
}
