//! # hyperq-core — the Hyper-Q pipeline
//!
//! The paper's contribution (§4): an adaptive-data-virtualization engine
//! that intercepts application requests in one SQL dialect and executes
//! them, unchanged from the application's point of view, on a different
//! target database.
//!
//! Pipeline components, mirroring Figure 3:
//!
//! * [`binder`] — the Algebrizer's binding half: AST → XTRA with metadata
//!   lookup and binder-stage rewrites,
//! * [`transform`] — the Transformer: pluggable rewrite rules cascaded to a
//!   fixed point, split into target-agnostic (binding-stage) and
//!   target-specific (serialization-stage) phases,
//! * [`targets`] — the named target-profile registry: each
//!   [`targets::TargetProfile`] bundles a capability signature with the
//!   dialect spellings ([`serialize::Flavor`]) the serializer consumes,
//! * [`serialize`] — per-target SQL serializers driven by a
//!   [`targets::TargetProfile`] (capabilities decide *what* to emit, the
//!   [`serialize::Flavor`] decides *how to spell it*),
//! * [`emulate`] — the mid-tier emulation layer (§6): recursion via
//!   temporary tables, macros, procedures, `MERGE`, `HELP`, views, global
//!   temporary tables, SET-table semantics,
//! * [`backend`] — the ODBC-Server abstraction over target databases,
//! * [`session`] — per-connection state and the DTM shadow catalog,
//! * [`crosscompiler`] — the façade tying it all together, with per-stage
//!   timing instrumentation for the Figure 9 experiments,
//! * [`tracker`] — the workload-study instrumentation (Figures 8a/8b,
//!   Tables 1–2),
//! * [`analyze`] — the static-analysis layer: plan validation at stage
//!   boundaries, per-rule transformation audits, and the serializer
//!   round-trip check, in strict / log-only / off modes,
//! * [`conformance`] — the post-serializer sibling of [`analyze`]: a
//!   capability-conformance lint over the exact SQL bytes sent to the
//!   target, plus advisory anti-pattern lints over source statements,
//! * [`recover`] — session continuity: a replay journal of target-side
//!   session state and a reconnecting backend wrapper that restores it
//!   transparently after a lost connection.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod backend;
pub mod binder;
pub mod builder;
pub mod cache;
pub mod capability;
pub mod conformance;
pub mod crosscompiler;
pub mod emulate;
pub mod error;
pub mod recover;
pub mod repair;
pub mod replicate;
pub mod resilience;
pub mod serialize;
pub mod session;
pub mod targets;
pub mod tracker;
pub mod transform;

pub use analyze::{AnalyzeMode, Analyzer};
pub use builder::{HyperQBuilder, Request, RequestOptions, Response};
pub use cache::{CacheConfig, TranslationCache};
pub use backend::{
    Backend, BackendError, BackendErrorKind, ExecResult, InstrumentedBackend, RequestContext,
};
pub use capability::TargetCapabilities;
pub use conformance::{Conformance, ConformanceMode, Finding, Severity};
pub use serialize::Flavor;
pub use targets::TargetProfile;
pub use emulate::{CostTier, EmulationKind};
pub use crosscompiler::{
    HyperQ, StageTimings, StatementOutcome, StatementResult, Timings, STAGE_DURATION_METRIC,
};
pub use error::{HyperQError, Result};
pub use hyperq_obs::{ObsContext, ProvenanceConfig, TraceId};
pub use recover::{
    JournalEntry, JournalEntryKind, RecoverConfig, RecoveringBackend, SessionJournal,
    TXN_ABORT_MESSAGE,
};
pub use repair::{ProberHandle, RepairReport};
pub use replicate::{ReplicaConfig, ReplicaHealth, ReplicaSnapshot, ReplicatedBackend};
pub use resilience::{
    BreakerConfig, BreakerState, ResilienceConfig, ResilientBackend, RetryPolicy,
};
