//! `hyperq-assess` — static workload assessment from the command line.
//!
//! ```text
//! hyperq-assess [--target NAME]... [--format text|json]
//!               (--corpus tpch|health|telco | FILE...)
//! ```
//!
//! `--target` takes any name from the target-profile registry (`simwh`,
//! `simwh-reduced`, `cloud-a`..`cloud-f`) and repeats: each named profile
//! gets its own verdict section in the report. `--target all` assesses
//! every registered profile. Files are SQL scripts (statements separated
//! by `;`); `--ddl FILE` adds schema-only inputs that populate the
//! catalog without being assessed. With `--corpus`, the built-in workload
//! generators supply both DDL and statements, so a report is reproducible
//! with no inputs at all.

use std::process::ExitCode;

use hyperq_assess::{Assessor, Report, StatementAssessment};
use hyperq_core::targets::{self, TargetProfile};
use hyperq_workload::{customer, tpch};

const USAGE: &str = "usage: hyperq-assess [--target NAME]... [--format text|json] \
                     [--fail-on-unsupported] (--corpus tpch|health|telco | [--ddl FILE]... FILE...)";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hyperq-assess: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// The corpus to assess, read once and replayed per target profile.
enum Inputs {
    Corpus(String),
    Files { ddl: Vec<String>, scripts: Vec<String> },
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut target_names: Vec<String> = Vec::new();
    let mut format = "text".to_string();
    let mut corpus: Option<String> = None;
    let mut ddl_files: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut fail_on_unsupported = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => target_names.push(it.next().ok_or("--target needs a value")?),
            "--format" => format = it.next().ok_or("--format needs a value")?,
            "--corpus" => corpus = Some(it.next().ok_or("--corpus needs a value")?),
            "--ddl" => ddl_files.push(it.next().ok_or("--ddl needs a value")?),
            "--fail-on-unsupported" => fail_on_unsupported = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !matches!(format.as_str(), "text" | "json") {
        return Err(format!("unknown format {format}"));
    }

    // Resolve --target through the profile registry; no flag means the
    // default target, "all" expands to every registered profile.
    let mut profiles: Vec<TargetProfile> = Vec::new();
    if target_names.is_empty() {
        profiles.push(targets::simwh());
    }
    for name in &target_names {
        if name.eq_ignore_ascii_case("all") {
            profiles.extend(targets::all());
        } else {
            profiles
                .push(targets::lookup(name).ok_or_else(|| format!("unknown target {name}"))?);
        }
    }
    profiles.dedup_by(|a, b| a.name == b.name);

    let inputs = match corpus {
        Some(name) => {
            if !matches!(name.as_str(), "tpch" | "health" | "telco") {
                return Err(format!("unknown corpus {name}"));
            }
            Inputs::Corpus(name)
        }
        None => {
            if files.is_empty() && ddl_files.is_empty() {
                return Err("no inputs: pass --corpus or at least one SQL file".into());
            }
            let mut ddl = Vec::new();
            for f in &ddl_files {
                ddl.push(std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?);
            }
            let mut scripts = Vec::new();
            for f in &files {
                scripts.push(std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?);
            }
            Inputs::Files { ddl, scripts }
        }
    };

    let reports: Vec<Report> =
        profiles.iter().map(|p| assess_for(p.clone(), &inputs)).collect();
    for report in &reports {
        report.record_metrics(hyperq_obs::ObsContext::global());
    }
    match format.as_str() {
        "json" if reports.len() == 1 => println!("{}", reports[0].to_json()),
        "json" => {
            let body: Vec<String> = reports.iter().map(Report::to_json).collect();
            println!("[{}]", body.join(","));
        }
        _ => {
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    println!();
                }
                print!("{}", report.to_text());
            }
        }
    }
    if fail_on_unsupported && reports.iter().any(|r| r.unsupported > 0) {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// One target's verdict section: a fresh assessor fed the whole corpus.
fn assess_for(profile: TargetProfile, inputs: &Inputs) -> Report {
    let target = profile.name.clone();
    let mut assessor = Assessor::for_target(profile);
    let mut assessments: Vec<StatementAssessment> = Vec::new();
    match inputs {
        Inputs::Corpus(name) if name == "tpch" => {
            for ddl in tpch::ddl() {
                assessor.ingest_ddl(&ddl);
            }
            for (_, q) in tpch::queries() {
                append(&mut assessments, assessor.assess_script(q));
            }
        }
        Inputs::Corpus(name) => {
            let w = if name == "health" { customer::health(0.05) } else { customer::telco(0.02) };
            for ddl in &w.target_ddl {
                assessor.ingest_ddl(ddl);
            }
            for setup in &w.hyperq_setup {
                append(&mut assessments, assessor.assess_script(setup));
            }
            for text in &w.distinct {
                append(&mut assessments, assessor.assess_script(text));
            }
        }
        Inputs::Files { ddl, scripts } => {
            for sql in ddl {
                assessor.ingest_ddl(sql);
            }
            for sql in scripts {
                append(&mut assessments, assessor.assess_script(sql));
            }
        }
    }
    Report::build(&target, &assessments, assessor.inferred_tables())
}

fn append(into: &mut Vec<StatementAssessment>, mut batch: Vec<StatementAssessment>) {
    let base = into.len();
    for sa in &mut batch {
        sa.index += base;
    }
    into.append(&mut batch);
}
