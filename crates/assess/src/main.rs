//! `hyperq-assess` — static workload assessment from the command line.
//!
//! ```text
//! hyperq-assess [--target simwh|cloud-a..cloud-f] [--format text|json]
//!               (--corpus tpch|health|telco | FILE...)
//! ```
//!
//! Files are SQL scripts (statements separated by `;`); `--ddl FILE` adds
//! schema-only inputs that populate the catalog without being assessed.
//! With `--corpus`, the built-in workload generators supply both DDL and
//! statements, so a report is reproducible with no inputs at all.

use std::process::ExitCode;

use hyperq_assess::{Assessor, Report, StatementAssessment};
use hyperq_core::capability::TargetCapabilities;
use hyperq_workload::{customer, tpch};

fn target_by_name(name: &str) -> Option<TargetCapabilities> {
    match name.to_ascii_lowercase().as_str() {
        "simwh" => Some(TargetCapabilities::simwh()),
        "cloud-a" | "cloud_a" => Some(TargetCapabilities::cloud_a()),
        "cloud-b" | "cloud_b" => Some(TargetCapabilities::cloud_b()),
        "cloud-c" | "cloud_c" => Some(TargetCapabilities::cloud_c()),
        "cloud-d" | "cloud_d" => Some(TargetCapabilities::cloud_d()),
        "cloud-e" | "cloud_e" => Some(TargetCapabilities::cloud_e()),
        "cloud-f" | "cloud_f" => Some(TargetCapabilities::cloud_f()),
        _ => None,
    }
}

const USAGE: &str = "usage: hyperq-assess [--target NAME] [--format text|json] \
                     [--fail-on-unsupported] (--corpus tpch|health|telco | [--ddl FILE]... FILE...)";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("hyperq-assess: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut target = "simwh".to_string();
    let mut format = "text".to_string();
    let mut corpus: Option<String> = None;
    let mut ddl_files: Vec<String> = Vec::new();
    let mut files: Vec<String> = Vec::new();
    let mut fail_on_unsupported = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--target" => target = it.next().ok_or("--target needs a value")?,
            "--format" => format = it.next().ok_or("--format needs a value")?,
            "--corpus" => corpus = Some(it.next().ok_or("--corpus needs a value")?),
            "--ddl" => ddl_files.push(it.next().ok_or("--ddl needs a value")?),
            "--fail-on-unsupported" => fail_on_unsupported = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            file => files.push(file.to_string()),
        }
    }
    if !matches!(format.as_str(), "text" | "json") {
        return Err(format!("unknown format {format}"));
    }
    let caps =
        target_by_name(&target).ok_or_else(|| format!("unknown target {target}"))?;
    let target_name = caps.name;
    let mut assessor = Assessor::new(caps);
    let mut assessments: Vec<StatementAssessment> = Vec::new();

    match corpus.as_deref() {
        Some("tpch") => {
            for ddl in tpch::ddl() {
                assessor.ingest_ddl(&ddl);
            }
            for (_, q) in tpch::queries() {
                append(&mut assessments, assessor.assess_script(q));
            }
        }
        Some("health" | "telco") => {
            let w = if corpus.as_deref() == Some("health") {
                customer::health(0.05)
            } else {
                customer::telco(0.02)
            };
            for ddl in &w.target_ddl {
                assessor.ingest_ddl(ddl);
            }
            for setup in &w.hyperq_setup {
                append(&mut assessments, assessor.assess_script(setup));
            }
            for text in &w.distinct {
                append(&mut assessments, assessor.assess_script(text));
            }
        }
        Some(other) => return Err(format!("unknown corpus {other}")),
        None => {
            if files.is_empty() && ddl_files.is_empty() {
                return Err("no inputs: pass --corpus or at least one SQL file".into());
            }
            for f in &ddl_files {
                let sql = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
                assessor.ingest_ddl(&sql);
            }
            for f in &files {
                let sql = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
                append(&mut assessments, assessor.assess_script(&sql));
            }
        }
    }

    let report = Report::build(target_name, &assessments, assessor.inferred_tables());
    report.record_metrics(hyperq_obs::ObsContext::global());
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => print!("{}", report.to_text()),
    }
    if fail_on_unsupported && report.unsupported > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn append(into: &mut Vec<StatementAssessment>, mut batch: Vec<StatementAssessment>) {
    let base = into.len();
    for sa in &mut batch {
        sa.index += base;
    }
    into.append(&mut batch);
}
