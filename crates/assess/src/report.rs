//! The migration-assessment report: the aggregate artifact the paper's
//! adoption methodology produces from a captured workload (§3).
//!
//! Rendering is byte-stable: every collection is emitted in a fixed order
//! (taxonomy order for features and emulation kinds, count-descending
//! then lexicographic for blockers and lints), so CI can diff a committed
//! snapshot against a fresh run.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hyperq_core::conformance::Severity;
use hyperq_core::emulate::EmulationKind;
use hyperq_obs::ObsContext;
use hyperq_xtra::feature::Feature;

use crate::{StatementAssessment, Verdict};

/// Aggregated assessment over a corpus.
#[derive(Debug, Clone)]
pub struct Report {
    pub target: String,
    pub total: usize,
    pub translatable: usize,
    pub needs_emulation: usize,
    pub unsupported: usize,
    /// Statements predicted to request each emulation kind (taxonomy
    /// order, zero-count kinds omitted).
    pub emulation_counts: Vec<(EmulationKind, usize)>,
    /// Statements exhibiting each tracked feature (T1..E9 order,
    /// zero-count features omitted).
    pub feature_counts: Vec<(Feature, usize)>,
    /// Unsupported-statement reasons, ranked by frequency then name.
    pub blockers: Vec<(String, usize)>,
    /// Advisory lint findings by `severity rule`, ranked likewise.
    pub lint_counts: Vec<(String, usize)>,
    /// Tables fabricated from usage alone (no DDL in the corpus).
    pub inferred_tables: Vec<String>,
}

impl Report {
    pub fn build(
        target: &str,
        assessments: &[StatementAssessment],
        inferred_tables: Vec<String>,
    ) -> Report {
        let mut translatable = 0;
        let mut needs_emulation = 0;
        let mut unsupported = 0;
        let mut emu: BTreeMap<EmulationKind, usize> = BTreeMap::new();
        let mut feat: BTreeMap<Feature, usize> = BTreeMap::new();
        let mut blockers: BTreeMap<String, usize> = BTreeMap::new();
        let mut lints: BTreeMap<String, usize> = BTreeMap::new();
        for sa in assessments {
            match &sa.verdict {
                Verdict::Translatable => translatable += 1,
                Verdict::NeedsEmulation { kinds, .. } => {
                    needs_emulation += 1;
                    for k in kinds {
                        *emu.entry(*k).or_default() += 1;
                    }
                }
                Verdict::Unsupported { reason, .. } => {
                    unsupported += 1;
                    *blockers.entry(normalize_reason(reason)).or_default() += 1;
                }
            }
            for f in sa.features.iter() {
                *feat.entry(f).or_default() += 1;
            }
            for finding in &sa.findings {
                let sev = match finding.severity {
                    Severity::Info => "info",
                    Severity::Warning => "warning",
                    Severity::Error => "error",
                };
                *lints.entry(format!("{sev} {}", finding.rule)).or_default() += 1;
            }
        }
        let emulation_counts = EmulationKind::ALL
            .iter()
            .filter_map(|k| emu.get(k).map(|&n| (*k, n)))
            .collect();
        let feature_counts = Feature::ALL
            .iter()
            .filter_map(|f| feat.get(f).map(|&n| (*f, n)))
            .collect();
        Report {
            target: target.to_string(),
            total: assessments.len(),
            translatable,
            needs_emulation,
            unsupported,
            emulation_counts,
            feature_counts,
            blockers: ranked(blockers),
            lint_counts: ranked(lints),
            inferred_tables,
        }
    }

    /// Directly-or-emulated share, in tenths of a percent (integer math,
    /// so rendering is byte-stable across platforms).
    pub fn supported_permille(&self) -> usize {
        if self.total == 0 {
            return 0;
        }
        (self.translatable + self.needs_emulation) * 1000 / self.total
    }

    /// Record the `hyperq_assess_*` metric family into an observability
    /// context.
    pub fn record_metrics(&self, obs: &ObsContext) {
        let m = &obs.metrics;
        let target = self.target.as_str();
        m.counter(
            "hyperq_assess_statements_total",
            &[("verdict", "translatable"), ("target", target)],
        )
        .add(self.translatable as u64);
        m.counter(
            "hyperq_assess_statements_total",
            &[("verdict", "needs_emulation"), ("target", target)],
        )
        .add(self.needs_emulation as u64);
        m.counter(
            "hyperq_assess_statements_total",
            &[("verdict", "unsupported"), ("target", target)],
        )
        .add(self.unsupported as u64);
        for (kind, n) in &self.emulation_counts {
            m.counter(
                "hyperq_assess_emulation_predicted_total",
                &[("kind", kind.as_str()), ("target", target)],
            )
            .add(*n as u64);
        }
    }

    /// The byte-stable text rendering (the CI golden snapshot format).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "hyperq-assess report — target {}", self.target);
        let _ = writeln!(
            out,
            "statements: {} total / {} translatable / {} needs-emulation / {} unsupported",
            self.total, self.translatable, self.needs_emulation, self.unsupported
        );
        let pm = self.supported_permille();
        let _ = writeln!(
            out,
            "supported: {}.{}% ({} of {})",
            pm / 10,
            pm % 10,
            self.translatable + self.needs_emulation,
            self.total
        );
        if !self.inferred_tables.is_empty() {
            let _ = writeln!(
                out,
                "inferred tables (usage only, no DDL): {}",
                self.inferred_tables.join(", ")
            );
        }
        if !self.emulation_counts.is_empty() {
            let _ = writeln!(out, "emulation histogram:");
            for (kind, n) in &self.emulation_counts {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>6}  cost={}",
                    kind.as_str(),
                    n,
                    kind.cost_tier().as_str()
                );
            }
        }
        if !self.feature_counts.is_empty() {
            let _ = writeln!(out, "feature frequencies:");
            for (f, n) in &self.feature_counts {
                let _ = writeln!(out, "  {} {:<28} {:>6}", f.code(), f.title(), n);
            }
        }
        if !self.blockers.is_empty() {
            let _ = writeln!(out, "blockers (ranked):");
            for (reason, n) in &self.blockers {
                let _ = writeln!(out, "  {n:>4}x  {reason}");
            }
        }
        if !self.lint_counts.is_empty() {
            let _ = writeln!(out, "advisory lints:");
            for (rule, n) in &self.lint_counts {
                let _ = writeln!(out, "  {n:>4}x  {rule}");
            }
        }
        out
    }

    /// JSON rendering (hand-rolled; the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"target\":{}", json_str(&self.target));
        let _ = write!(
            out,
            ",\"statements\":{{\"total\":{},\"translatable\":{},\"needs_emulation\":{},\"unsupported\":{}}}",
            self.total, self.translatable, self.needs_emulation, self.unsupported
        );
        let pm = self.supported_permille();
        let _ = write!(out, ",\"supported_percent\":{}.{}", pm / 10, pm % 10);
        out.push_str(",\"emulation_histogram\":{");
        for (i, (kind, n)) in self.emulation_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{n}", json_str(kind.as_str()));
        }
        out.push_str("},\"feature_frequencies\":{");
        for (i, (f, n)) in self.feature_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{n}", json_str(f.code()));
        }
        out.push_str("},\"blockers\":[");
        for (i, (reason, n)) in self.blockers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"reason\":{},\"count\":{n}}}", json_str(reason));
        }
        out.push_str("],\"advisory_lints\":[");
        for (i, (rule, n)) in self.lint_counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"rule\":{},\"count\":{n}}}", json_str(rule));
        }
        out.push_str("],\"inferred_tables\":[");
        for (i, t) in self.inferred_tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(t));
        }
        out.push_str("]}");
        out
    }
}

/// Count-descending, then lexicographic.
fn ranked(map: BTreeMap<String, usize>) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

/// Collapse statement-specific noise (literals, generated names) so equal
/// failure modes rank as one blocker.
fn normalize_reason(reason: &str) -> String {
    let mut out = String::with_capacity(reason.len());
    let mut in_number = false;
    let mut in_quote = false;
    for c in reason.chars() {
        if in_quote {
            if c == '\'' {
                in_quote = false;
                out.push_str("'…'");
            }
            continue;
        }
        match c {
            '\'' => in_quote = true,
            '0'..='9' => {
                if !in_number {
                    out.push('N');
                    in_number = true;
                }
            }
            _ => {
                in_number = false;
                out.push(c);
            }
        }
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperq_core::capability::TargetCapabilities;

    #[test]
    fn report_is_byte_stable_and_json_is_wellformed() {
        let mut a = crate::Assessor::new(TargetCapabilities::simwh());
        a.ingest_ddl("CREATE TABLE T (A INTEGER)");
        let script = "SELECT A FROM T; BT; INSERT INTO T SELECT 1; ET; EXEC NOPE(1)";
        let one = a.assess_script(script);
        let r1 = Report::build("simwh", &one, a.inferred_tables());

        let mut b = crate::Assessor::new(TargetCapabilities::simwh());
        b.ingest_ddl("CREATE TABLE T (A INTEGER)");
        let two = b.assess_script(script);
        let r2 = Report::build("simwh", &two, b.inferred_tables());

        assert_eq!(r1.to_text(), r2.to_text());
        assert_eq!(r1.to_json(), r2.to_json());
        assert_eq!(r1.total, 5);
        assert_eq!(r1.unsupported, 1);
        assert!(r1.to_text().contains("emulation histogram:"));
        assert!(r1.to_json().starts_with('{') && r1.to_json().ends_with('}'));
    }

    #[test]
    fn reasons_normalize_literals_and_numbers() {
        assert_eq!(normalize_reason("macro M7 is not defined"), "macro MN is not defined");
        assert_eq!(normalize_reason("value 'x y' bad"), "value '…' bad");
    }
}
