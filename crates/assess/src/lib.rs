//! # hyperq-assess — static workload assessment (paper §3, "rapid
//! assessment of workload compatibility")
//!
//! Before any gateway is deployed, the adoption methodology starts with a
//! *static* pass over a captured workload: every statement is parsed and
//! bind-checked against a catalog inferred from the corpus itself, and
//! classified as directly translatable, translatable with mid-tier
//! emulation (and at what cost), or unsupported. The aggregate report —
//! supported percentage, emulation histogram, ranked blockers — is the
//! migration-assessment artifact the paper describes producing in days
//! instead of the months a manual inventory takes.
//!
//! The assessor is a *dry* mirror of the `hyperq-core` crosscompiler: it
//! routes statements through the same per-variant decision tree (macros,
//! views, `MERGE` decomposition, recursion splitting, GTT definition and
//! materialization, SET-table/default sidecars), runs the real binder,
//! transformer and serializer, but never talks to a backend. Its verdicts
//! are therefore checkable against the live pipeline — the differential
//! oracle in `tests/assess_oracle.rs` holds them to 100% agreement over
//! TPC-H and the customer corpora.
//!
//! Catalog inference: in-corpus DDL is ingested first; tables that are
//! only ever *used* are fabricated on demand from the binder's own
//! "not found" errors plus qualified column references in the statement
//! text, so a bare query log still assesses instead of erroring out.

#![forbid(unsafe_code)]

pub mod report;

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use hyperq_core::capability::TargetCapabilities;
use hyperq_core::conformance::{self, Finding};
use hyperq_core::emulate::{self, CostTier, EmulationKind};
use hyperq_core::error::{HyperQError, Result};
use hyperq_core::binder::Binder;
use hyperq_core::serialize::{LimitSpelling, Serializer};
use hyperq_core::targets::TargetProfile;
use hyperq_core::session::RoutineDef;
use hyperq_core::transform::Transformer;
use hyperq_parser::ast as past;
use hyperq_parser::{parse_statements, Dialect, ParsedStatement, StmtSpan};
use hyperq_xtra::catalog::{ColumnDef, MetadataProvider, TableDef, TableKind, ViewDef};
use hyperq_xtra::expr::ScalarExpr;
use hyperq_xtra::feature::{Feature, FeatureSet};
use hyperq_xtra::rel::{Plan, RelExpr, SetOpKind};
use hyperq_xtra::types::SqlType;

pub use report::Report;

/// Per-statement classification.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Translates to a single target statement; no mid-tier machinery.
    Translatable,
    /// Executable, but only through mid-tier emulation of the listed
    /// kinds; `tier` is the worst per-request cost among them.
    NeedsEmulation {
        kinds: Vec<EmulationKind>,
        tier: CostTier,
    },
    /// The pipeline would reject the statement.
    Unsupported { reason: String, span: StmtSpan },
}

impl Verdict {
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Translatable => "translatable",
            Verdict::NeedsEmulation { .. } => "needs_emulation",
            Verdict::Unsupported { .. } => "unsupported",
        }
    }
}

/// One assessed statement: its source span, tracked features, verdict and
/// advisory lint findings (conformance over the projected target SQL plus
/// anti-pattern lints over the source text).
#[derive(Debug, Clone)]
pub struct StatementAssessment {
    pub index: usize,
    pub text: String,
    pub span: StmtSpan,
    pub features: FeatureSet,
    pub verdict: Verdict,
    pub findings: Vec<Finding>,
}

/// How many binder round-trips the catalog-inference loop may take for a
/// single statement (each round learns one table or one column).
const MAX_INFERENCE_STEPS: usize = 64;

/// The static assessor: crosscompiler session state without a backend.
pub struct Assessor {
    profile: TargetProfile,
    /// Stand-in for the target catalog: definitions as the *target* would
    /// hold them (sidecar-only properties stripped), from in-corpus DDL
    /// and usage-driven inference.
    tables: HashMap<String, TableDef>,
    /// Mirror of the session's sidecar definitions (SET semantics,
    /// defaults, case-insensitivity the target cannot hold).
    sidecars: HashMap<String, TableDef>,
    gtt_defs: HashMap<String, TableDef>,
    materialized_gtts: HashSet<String>,
    views: HashMap<String, ViewDef>,
    macros: HashMap<String, RoutineDef>,
    procedures: HashMap<String, RoutineDef>,
    settings: Vec<(String, String)>,
    in_transaction: bool,
    /// Names fabricated from usage (no DDL in the corpus) — reported so
    /// the assessment's confidence is visible.
    inferred: HashSet<String>,
    /// Names seen in a `DROP TABLE`; never re-fabricated.
    dropped: HashSet<String>,
    transformer: Transformer,
    fresh: u64,
}

impl Assessor {
    /// Assess for a bare capability signature (resolved to a registry
    /// profile when one matches, an anonymous custom profile otherwise).
    pub fn new(caps: TargetCapabilities) -> Self {
        Self::for_target(TargetProfile::from_caps(caps))
    }

    /// Assess for a named target profile — the primary constructor.
    pub fn for_target(profile: TargetProfile) -> Self {
        Assessor {
            profile,
            tables: HashMap::new(),
            sidecars: HashMap::new(),
            gtt_defs: HashMap::new(),
            materialized_gtts: HashSet::new(),
            views: HashMap::new(),
            macros: HashMap::new(),
            procedures: HashMap::new(),
            settings: Vec::new(),
            in_transaction: false,
            inferred: HashSet::new(),
            dropped: HashSet::new(),
            transformer: Transformer::standard(),
            fresh: 0,
        }
    }

    pub fn capabilities(&self) -> &TargetCapabilities {
        &self.profile.caps
    }

    /// The full target profile this assessor evaluates against.
    pub fn profile(&self) -> &TargetProfile {
        &self.profile
    }

    /// Tables fabricated from usage alone, sorted.
    pub fn inferred_tables(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inferred.iter().cloned().collect();
        v.sort();
        v
    }

    /// Ingest schema DDL without producing verdicts: `CREATE TABLE` /
    /// `CREATE VIEW` statements populate the catalog exactly as assessing
    /// them would; everything else is ignored. Returns how many
    /// definitions were registered. Parse or bind failures in individual
    /// statements are skipped (the corpus proper will surface them).
    pub fn ingest_ddl(&mut self, sql: &str) -> usize {
        let Ok(parsed) = parse_statements(sql, Dialect::Teradata) else {
            return 0;
        };
        let mut n = 0;
        for ps in parsed {
            let is_def = matches!(
                ps.stmt,
                past::Statement::CreateTable { .. } | past::Statement::CreateView { .. }
            );
            if !is_def {
                continue;
            }
            let mut kinds = Vec::new();
            let mut features = ps.features.clone();
            let mut out_sql = Vec::new();
            if self.route(&ps, &mut kinds, &mut features, &mut out_sql).is_ok() {
                n += 1;
            }
        }
        n
    }

    /// Assess a script: one [`StatementAssessment`] per statement. A
    /// script that does not parse yields a single `Unsupported` verdict
    /// covering the whole input.
    pub fn assess_script(&mut self, sql: &str) -> Vec<StatementAssessment> {
        let parsed = match parse_statements(sql, Dialect::Teradata) {
            Ok(p) => p,
            Err(e) => {
                return vec![StatementAssessment {
                    index: 0,
                    text: sql.to_string(),
                    span: StmtSpan { start: 0, end: sql.len(), line: 1 },
                    features: FeatureSet::new(),
                    verdict: Verdict::Unsupported {
                        reason: format!("parse error: {e}"),
                        span: StmtSpan { start: 0, end: sql.len(), line: 1 },
                    },
                    findings: Vec::new(),
                }]
            }
        };
        parsed
            .into_iter()
            .enumerate()
            .map(|(i, ps)| self.assess_statement(ps, i))
            .collect()
    }

    /// Assess one parsed statement, updating catalog/session state the
    /// same way executing it would.
    pub fn assess_statement(&mut self, ps: ParsedStatement, index: usize) -> StatementAssessment {
        let txn_before = self.in_transaction;
        let mut kinds: Vec<EmulationKind> = Vec::new();
        let mut features = ps.features.clone();
        let mut out_sql: Vec<String> = Vec::new();
        let outcome = self.route(&ps, &mut kinds, &mut features, &mut out_sql);

        let mut findings = conformance::lint_source(&ps.text, &features, txn_before);
        for sql in &out_sql {
            findings.extend(conformance::lint_serialized(sql, &self.profile.caps));
        }

        let verdict = match outcome {
            Err(e) => Verdict::Unsupported { reason: e.to_string(), span: ps.span },
            Ok(()) if kinds.is_empty() => Verdict::Translatable,
            Ok(()) => {
                kinds.sort();
                kinds.dedup();
                let tier = kinds
                    .iter()
                    .map(hyperq_core::EmulationKind::cost_tier)
                    .max()
                    .unwrap_or(CostTier::Low);
                Verdict::NeedsEmulation { kinds, tier }
            }
        };
        StatementAssessment {
            index,
            text: ps.text,
            span: ps.span,
            features,
            verdict,
            findings,
        }
    }

    // -------------------------------------------------------------------
    // Statement routing — a dry mirror of `HyperQ::process`
    // -------------------------------------------------------------------

    fn route(
        &mut self,
        ps: &ParsedStatement,
        kinds: &mut Vec<EmulationKind>,
        features: &mut FeatureSet,
        out_sql: &mut Vec<String>,
    ) -> Result<()> {
        match &ps.stmt {
            past::Statement::Help(target) => {
                kinds.push(EmulationKind::Help);
                if let past::HelpTarget::Table(name) = target {
                    let found = {
                        let shadow = self.shadow(HashMap::new());
                        shadow.table(&name.canonical()).is_some()
                    };
                    if !found {
                        return Err(HyperQError::Emulation(format!("table {name} not found")));
                    }
                }
                Ok(())
            }
            past::Statement::Explain(inner) => {
                kinds.push(EmulationKind::Explain);
                self.assess_explain(inner, features)
            }
            past::Statement::CreateMacro { name, params, body } => {
                kinds.push(EmulationKind::Macro);
                self.macros.insert(
                    name.canonical(),
                    RoutineDef {
                        name: name.canonical(),
                        params: params.clone(),
                        body: body.clone(),
                        features: ps.features.clone(),
                    },
                );
                Ok(())
            }
            past::Statement::DropMacro { name } => {
                kinds.push(EmulationKind::Macro);
                self.macros.remove(&name.canonical());
                Ok(())
            }
            past::Statement::CreateProcedure { name, params, body } => {
                kinds.push(EmulationKind::Procedure);
                self.procedures.insert(
                    name.canonical(),
                    RoutineDef {
                        name: name.canonical(),
                        params: params.clone(),
                        body: body.clone(),
                        features: ps.features.clone(),
                    },
                );
                Ok(())
            }
            past::Statement::ExecuteMacro { name, args } => {
                kinds.push(EmulationKind::Macro);
                let routine = self.macros.get(&name.canonical()).cloned().ok_or_else(|| {
                    HyperQError::Emulation(format!("macro {name} is not defined"))
                })?;
                self.assess_routine(&routine, args, kinds, features, out_sql)
            }
            past::Statement::Call { name, args } => {
                kinds.push(EmulationKind::Procedure);
                let routine =
                    self.procedures.get(&name.canonical()).cloned().ok_or_else(|| {
                        HyperQError::Emulation(format!("procedure {name} is not defined"))
                    })?;
                let wrapped: Vec<(Option<String>, past::Expr)> =
                    args.iter().map(|a| (None, a.clone())).collect();
                self.assess_routine(&routine, &wrapped, kinds, features, out_sql)
            }
            past::Statement::CreateView { name, columns, or_replace, .. } => {
                kinds.push(EmulationKind::View);
                let key = name.canonical();
                if !or_replace && self.views.contains_key(&key) {
                    return Err(HyperQError::Emulation(format!("view {key} already exists")));
                }
                self.views.insert(
                    key.clone(),
                    ViewDef {
                        name: key,
                        columns: columns.iter().map(|c| c.to_ascii_uppercase()).collect(),
                        body_sql: ps.text.clone(),
                    },
                );
                Ok(())
            }
            past::Statement::DropView { name, if_exists } => {
                kinds.push(EmulationKind::View);
                let existed = self.views.remove(&name.canonical()).is_some();
                if !existed && !if_exists {
                    return Err(HyperQError::Emulation(format!("view {name} not found")));
                }
                Ok(())
            }
            past::Statement::Merge(m) => {
                kinds.push(EmulationKind::Merge);
                features.insert(Feature::MergeStatement);
                for step in emulate::decompose_merge(m)? {
                    self.assess_standard(&step, &ps.text, kinds, features, out_sql)?;
                }
                Ok(())
            }
            past::Statement::Query(q) if q.recursive => {
                kinds.push(EmulationKind::Recursive);
                features.insert(Feature::RecursiveQuery);
                self.assess_recursive(q, kinds, features, out_sql)
            }
            past::Statement::SetSession { name, value } => {
                kinds.push(EmulationKind::SetSession);
                let rendered = match emulate::ast_const(value) {
                    Ok(d) => d.to_sql_string(),
                    Err(_) => format!("{value:?}"),
                };
                let key = name.to_ascii_uppercase();
                if let Some(slot) = self
                    .settings
                    .iter_mut()
                    .find(|(k, _)| k.eq_ignore_ascii_case(&key))
                {
                    slot.1 = rendered.clone();
                } else {
                    self.settings.push((key.clone(), rendered.clone()));
                }
                if self.profile.caps.session_settings {
                    out_sql.push(format!("SET {key} = {rendered}"));
                }
                Ok(())
            }
            past::Statement::BeginTransaction => {
                kinds.push(EmulationKind::Transaction);
                self.in_transaction = true;
                Ok(())
            }
            past::Statement::Commit | past::Statement::Rollback => {
                kinds.push(EmulationKind::Transaction);
                self.in_transaction = false;
                Ok(())
            }
            past::Statement::Update { table, .. }
            | past::Statement::Delete { table, .. }
            | past::Statement::Insert { table, .. }
                if self.views.contains_key(&table.canonical()) =>
            {
                kinds.push(EmulationKind::ViewDml);
                features.insert(Feature::DmlOnView);
                let view = self.views[&table.canonical()].clone();
                let parsed = parse_statements(&view.body_sql, Dialect::Teradata)
                    .map_err(HyperQError::Parse)?;
                let view_query = match parsed.into_iter().next().map(|p| p.stmt) {
                    Some(past::Statement::CreateView { query, .. }) => *query,
                    Some(past::Statement::Query(q)) => *q,
                    _ => {
                        return Err(HyperQError::Emulation(format!(
                            "stored view {} body is not a query",
                            view.name
                        )))
                    }
                };
                let rewritten =
                    emulate::rewrite_dml_on_view(&ps.stmt, &view_query, &view.columns)?;
                self.assess_standard(&rewritten, &ps.text, kinds, features, out_sql)
            }
            stmt => self.assess_standard(stmt, &ps.text, kinds, features, out_sql),
        }
    }

    /// Mirror of `run_routine`: substitute arguments and route each body
    /// statement, accumulating emulation kinds across the whole body.
    fn assess_routine(
        &mut self,
        routine: &RoutineDef,
        args: &[(Option<String>, past::Expr)],
        kinds: &mut Vec<EmulationKind>,
        features: &mut FeatureSet,
        out_sql: &mut Vec<String>,
    ) -> Result<()> {
        features.union(&routine.features);
        let env = emulate::bind_routine_args(routine, args)?;
        for stmt in &routine.body {
            let substituted = emulate::substitute_params(stmt, &env);
            if matches!(substituted, past::Statement::CreateView { .. }) {
                return Err(HyperQError::Emulation(
                    "CREATE VIEW inside a macro/procedure body is not supported".into(),
                ));
            }
            let sub_ps = ParsedStatement {
                stmt: substituted,
                features: FeatureSet::new(),
                text: String::new(),
                span: StmtSpan::default(),
            };
            self.route(&sub_ps, kinds, features, out_sql)?;
        }
        Ok(())
    }

    /// Mirror of `HyperQ::explain`: emulated statements report their
    /// decomposition without touching the catalog; everything else is
    /// bound, transformed and serialized (but adds no emulation kinds —
    /// EXPLAIN itself is the only mid-tier request).
    fn assess_explain(
        &mut self,
        stmt: &past::Statement,
        features: &mut FeatureSet,
    ) -> Result<()> {
        match stmt {
            past::Statement::Merge(m) => {
                features.insert(Feature::MergeStatement);
                for step in emulate::decompose_merge(m)? {
                    self.assess_explain(&step, features)?;
                }
                Ok(())
            }
            past::Statement::Query(q) if q.recursive => {
                features.insert(Feature::RecursiveQuery);
                let parts = emulate::split_recursive(q)?;
                self.assess_explain(&past::Statement::Query(Box::new(parts.seed)), features)
            }
            past::Statement::Help(_)
            | past::Statement::CreateMacro { .. }
            | past::Statement::ExecuteMacro { .. }
            | past::Statement::CreateProcedure { .. }
            | past::Statement::Call { .. }
            | past::Statement::CreateView { .. } => Ok(()),
            _ => {
                let plan = {
                    let shadow = self.shadow(HashMap::new());
                    let mut binder = Binder::new(&shadow);
                    let plan = binder.bind_statement(stmt)?;
                    features.union(&binder.features);
                    plan
                };
                let plan = self.transformer.run_all(plan, &self.profile.caps, features)?;
                // EXPLAIN mirrors the live path: the peel is quiet (the
                // query is not executed, so LimitFetch never fires).
                let (plan, _fetch_limit) = self.peel_fetch_limit(plan);
                Serializer::for_profile(&self.profile).serialize_plan(&plan)?;
                Ok(())
            }
        }
    }

    /// Mirror of `run_pipeline_with`: bind (with usage-driven catalog
    /// inference), sidecar bookkeeping, E7 define/materialize, E8/E9
    /// insert emulations, transform, serialize.
    fn assess_standard(
        &mut self,
        stmt: &past::Statement,
        text: &str,
        kinds: &mut Vec<EmulationKind>,
        features: &mut FeatureSet,
        out_sql: &mut Vec<String>,
    ) -> Result<()> {
        let (plan, gtts) = self.bind_with_inference(stmt, text, features)?;

        // Sidecar properties the target cannot hold (recorded pre-execute,
        // exactly like the live session).
        match &plan {
            Plan::CreateTable { def, .. } if def.kind != TableKind::GlobalTemporary => {
                let interesting = def.set_semantics
                    || def
                        .columns
                        .iter()
                        .any(|c| c.default.is_some() || c.case_insensitive);
                if interesting {
                    self.sidecars.insert(def.name.clone(), def.clone());
                }
            }
            Plan::DropTable { name, .. } => {
                self.sidecars.remove(name);
            }
            _ => {}
        }

        // E7: GTT definition lives in the mid-tier catalog only.
        if let Plan::CreateTable { def, source: None } = &plan {
            if def.kind == TableKind::GlobalTemporary {
                kinds.push(EmulationKind::GttDefine);
                features.insert(Feature::GlobalTempTable);
                self.gtt_defs.insert(def.name.clone(), def.clone());
                return Ok(());
            }
        }

        // E8/E9 on INSERT plans.
        let plan = self.apply_insert_emulations(plan, kinds, features)?;

        let plan = self.transformer.run_all(plan, &self.profile.caps, features)?;
        // Mirror of the live pipeline's LimitFetch: the row bound peels
        // off and the mid tier would truncate the executed result.
        let (plan, fetch_limit) = self.peel_fetch_limit(plan);
        if fetch_limit.is_some() {
            kinds.push(EmulationKind::LimitFetch);
        }
        let sql = Serializer::for_profile(&self.profile).serialize_plan(&plan)?;

        // E7: lazily materialize per-session instances of touched GTTs.
        if !gtts.is_empty() {
            features.insert(Feature::GlobalTempTable);
        }
        for logical in gtts {
            if self.materialized_gtts.contains(&logical) {
                continue;
            }
            kinds.push(EmulationKind::GttMaterialize);
            let def = self.gtt_defs.get(&logical).cloned().ok_or_else(|| {
                HyperQError::Emulation(format!("missing GTT definition {logical}"))
            })?;
            let mut instance = def;
            instance.name = gtt_instance_name(&logical);
            instance.kind = TableKind::Temporary;
            let ddl = Serializer::for_profile(&self.profile)
                .serialize_plan(&Plan::CreateTable { def: instance, source: None })?;
            out_sql.push(ddl);
            self.materialized_gtts.insert(logical);
        }

        // Target-catalog bookkeeping happens only once the statement is
        // known to reach the backend (i.e. after serialization succeeds).
        match &plan {
            Plan::CreateTable { def, .. } => {
                let mut stripped = def.clone();
                stripped.set_semantics = false;
                for c in &mut stripped.columns {
                    c.default = None;
                    c.case_insensitive = false;
                }
                self.tables.insert(stripped.name.clone(), stripped);
            }
            Plan::DropTable { name, if_exists } => {
                let existed = self.tables.remove(name).is_some();
                self.dropped.insert(name.clone());
                self.inferred.remove(name);
                if !existed && !if_exists {
                    return Err(HyperQError::Bind(format!("table {name} not found")));
                }
            }
            _ => {}
        }

        out_sql.push(sql);
        Ok(())
    }

    /// Mirror of `apply_insert_emulations_inner` (E9 default injection,
    /// E8 SET-table dedup).
    fn apply_insert_emulations(
        &mut self,
        plan: Plan,
        kinds: &mut Vec<EmulationKind>,
        features: &mut FeatureSet,
    ) -> Result<Plan> {
        let (table, mut columns, mut source) = match plan {
            Plan::Insert { table, columns, source } => (table, columns, source),
            other => return Ok(other),
        };
        let def = self
            .sidecars
            .get(&table)
            .cloned()
            .or_else(|| self.tables.get(&table).cloned())
            .or_else(|| {
                self.gtt_defs
                    .values()
                    .find(|d| gtt_instance_name(&d.name) == table)
                    .cloned()
            })
            .ok_or_else(|| HyperQError::Bind(format!("table {table} not found")))?;

        let missing: Vec<ColumnDef> = def
            .columns
            .iter()
            .filter(|c| {
                c.default.is_some() && !columns.iter().any(|x| x.eq_ignore_ascii_case(&c.name))
            })
            .cloned()
            .collect();
        if !missing.is_empty() {
            kinds.push(EmulationKind::DefaultInjection);
            let schema = source.schema();
            let mut exprs: Vec<(ScalarExpr, String)> = schema
                .fields
                .iter()
                .map(|f| {
                    (
                        ScalarExpr::Column {
                            qualifier: f.qualifier.clone(),
                            name: f.name.clone(),
                            ty: f.ty.clone(),
                        },
                        f.name.clone(),
                    )
                })
                .collect();
            for c in &missing {
                let default = c.default.as_ref().expect("filtered on is_some");
                if !matches!(default, ScalarExpr::Literal(..)) {
                    features.insert(Feature::ColumnProperties);
                }
                let value = emulate::const_eval(default)?;
                let ty = value.sql_type();
                exprs.push((ScalarExpr::Literal(value, ty), c.name.clone()));
                columns.push(c.name.clone());
            }
            source = RelExpr::Project { input: Box::new(source), exprs };
        }

        if def.set_semantics {
            kinds.push(EmulationKind::SetTableDedup);
            features.insert(Feature::SetTableSemantics);
            let get = RelExpr::Get {
                table: def.name.clone(),
                alias: Some(def.base_name().to_string()),
                schema: def.schema(None),
            };
            let existing = RelExpr::Project {
                input: Box::new(get),
                exprs: columns
                    .iter()
                    .map(|c| {
                        let col = def
                            .columns
                            .iter()
                            .find(|d| d.name.eq_ignore_ascii_case(c))
                            .expect("insert columns validated by binder");
                        (
                            ScalarExpr::Column {
                                qualifier: Some(def.base_name().to_string()),
                                name: col.name.clone(),
                                ty: col.ty.clone(),
                            },
                            col.name.clone(),
                        )
                    })
                    .collect(),
            };
            source = RelExpr::SetOp {
                kind: SetOpKind::Except,
                all: false,
                left: Box::new(RelExpr::Distinct { input: Box::new(source) }),
                right: Box::new(existing),
            };
        }

        Ok(Plan::Insert { table, columns, source })
    }

    /// Mirror of `emulate_recursive_inner`: split the recursive query,
    /// bind the seed to learn the CTE schema, then validate that every
    /// plan of the WorkTable/TempTable protocol transforms and serializes
    /// for this target.
    fn assess_recursive(
        &mut self,
        q: &past::Query,
        kinds: &mut Vec<EmulationKind>,
        features: &mut FeatureSet,
        out_sql: &mut Vec<String>,
    ) -> Result<()> {
        let parts = emulate::split_recursive(q)?;
        let seed_rel = {
            let shadow = self.shadow(HashMap::new());
            let mut binder = Binder::new(&shadow);
            let rel = binder.bind_query(&parts.seed)?;
            features.union(&binder.features);
            rel
        };
        let seed_schema = seed_rel.schema();
        let columns: Vec<String> = if parts.columns.is_empty() {
            seed_schema.fields.iter().map(|f| f.name.clone()).collect()
        } else {
            parts.columns.clone()
        };
        if columns.len() != seed_schema.len() {
            return Err(HyperQError::Emulation(format!(
                "recursive CTE {} declares {} columns but its seed produces {}",
                parts.name,
                columns.len(),
                seed_schema.len()
            )));
        }
        let col_defs: Vec<ColumnDef> = columns
            .iter()
            .zip(seed_schema.fields.iter())
            .map(|(name, f)| ColumnDef::new(name, f.ty.clone(), true))
            .collect();
        let work_table = self.fresh_name("WT");
        let temp_table = self.fresh_name("TT");
        let table_def = |name: &str| TableDef {
            name: name.to_string(),
            columns: col_defs.clone(),
            set_semantics: false,
            kind: TableKind::Temporary,
        };

        // Seed CTAS into WorkTable, copy into TempTable.
        self.dry_exec(
            Plan::CreateTable { def: table_def(&work_table), source: Some(seed_rel) },
            kinds,
            out_sql,
        )?;
        self.dry_exec(
            Plan::CreateTable {
                def: table_def(&temp_table),
                source: Some(RelExpr::Get {
                    table: work_table.clone(),
                    alias: Some(work_table.clone()),
                    schema: table_def(&work_table).schema(None),
                }),
            },
            kinds,
            out_sql,
        )?;

        // One recursive step: the recursive expression with the CTE name
        // mapped onto TempTable, materialized and appended to WorkTable.
        let step_rel = {
            let mut overlay = HashMap::new();
            overlay.insert(parts.name.to_ascii_uppercase(), table_def(&temp_table));
            let shadow = self.shadow(overlay);
            let mut binder = Binder::new(&shadow);
            let rel = binder.bind_query(&parts.recursive)?;
            features.union(&binder.features);
            rel
        };
        let next_table = self.fresh_name("TT");
        self.dry_exec(
            Plan::CreateTable { def: table_def(&next_table), source: Some(step_rel) },
            kinds,
            out_sql,
        )?;
        self.dry_exec(
            Plan::Insert {
                table: work_table.clone(),
                columns: Vec::new(),
                source: RelExpr::Get {
                    table: next_table.clone(),
                    alias: Some(next_table.clone()),
                    schema: table_def(&next_table).schema(None),
                },
            },
            kinds,
            out_sql,
        )?;

        // The main query with the CTE name mapped onto WorkTable.
        let main_plan = {
            let mut overlay = HashMap::new();
            overlay.insert(parts.name.to_ascii_uppercase(), table_def(&work_table));
            let shadow = self.shadow(overlay);
            let mut binder = Binder::new(&shadow);
            let plan = Plan::Query(binder.bind_query(&parts.main)?);
            features.union(&binder.features);
            plan
        };
        self.dry_exec(main_plan, kinds, out_sql)?;
        self.dry_exec(
            Plan::DropTable { name: next_table, if_exists: false },
            kinds,
            out_sql,
        )?;
        self.dry_exec(Plan::DropTable { name: temp_table, if_exists: false }, kinds, out_sql)?;
        self.dry_exec(Plan::DropTable { name: work_table, if_exists: false }, kinds, out_sql)?;
        Ok(())
    }

    /// Mirror of `exec_plan`: transform + serialize one already-bound
    /// plan, keeping the SQL for advisory lints. Like the live
    /// `exec_plan`, a top-level row bound peels into a LimitFetch
    /// prediction (recursion's main query can carry one).
    fn dry_exec(
        &mut self,
        plan: Plan,
        kinds: &mut Vec<EmulationKind>,
        out_sql: &mut Vec<String>,
    ) -> Result<()> {
        let mut scratch = FeatureSet::new();
        let plan = self.transformer.run_all(plan, &self.profile.caps, &mut scratch)?;
        let (plan, fetch_limit) = self.peel_fetch_limit(plan);
        if fetch_limit.is_some() {
            kinds.push(EmulationKind::LimitFetch);
        }
        out_sql.push(Serializer::for_profile(&self.profile).serialize_plan(&plan)?);
        Ok(())
    }

    /// Mirror of the crosscompiler's `peel_fetch_limit`: on a target that
    /// spells neither `LIMIT` nor `TOP`, a plain top-level row bound (no
    /// OFFSET, no WITH TIES) peels off for mid-tier truncation.
    fn peel_fetch_limit(&self, plan: Plan) -> (Plan, Option<u64>) {
        if self.profile.flavor.limit != LimitSpelling::None {
            return (plan, None);
        }
        match plan {
            Plan::Query(RelExpr::Limit { input, limit: Some(n), with_ties: false, offset: 0 }) => {
                (Plan::Query(*input), Some(n))
            }
            // Hidden ORDER BY sort columns wrap a rename/strip projection
            // above the bound; the projection is row-preserving, so
            // truncating after it equals truncating before it.
            Plan::Query(RelExpr::Project { input, exprs }) => match *input {
                RelExpr::Limit { input, limit: Some(n), with_ties: false, offset: 0 } => {
                    (Plan::Query(RelExpr::Project { input, exprs }), Some(n))
                }
                other => {
                    (Plan::Query(RelExpr::Project { input: Box::new(other), exprs }), None)
                }
            },
            other => (other, None),
        }
    }

    // -------------------------------------------------------------------
    // Binding with usage-driven catalog inference
    // -------------------------------------------------------------------

    fn shadow(&self, overlay: HashMap<String, TableDef>) -> AssessShadow<'_> {
        AssessShadow {
            tables: &self.tables,
            sidecars: &self.sidecars,
            gtt_defs: &self.gtt_defs,
            views: &self.views,
            default_database: default_database(&self.settings).map(str::to_string),
            overlay,
            gtt_touched: RefCell::new(HashSet::new()),
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("DTM_{prefix}_A{}", self.fresh)
    }

    /// Bind, fabricating unknown tables (and their columns) from the
    /// binder's own errors plus qualified references in the statement
    /// text. Each round learns one fact; statements whose tables all have
    /// in-corpus DDL bind on the first round.
    fn bind_with_inference(
        &mut self,
        stmt: &past::Statement,
        text: &str,
        features: &mut FeatureSet,
    ) -> Result<(Plan, Vec<String>)> {
        let mut attempts = 0;
        loop {
            let outcome = {
                let shadow = self.shadow(HashMap::new());
                let mut binder = Binder::new(&shadow);
                match binder.bind_statement(stmt) {
                    Ok(plan) => {
                        features.union(&binder.features);
                        Ok((plan, shadow.gtt_touched.into_inner()))
                    }
                    Err(e) => Err(e),
                }
            };
            match outcome {
                Ok((plan, touched)) => {
                    let mut gtts: Vec<String> = touched.into_iter().collect();
                    gtts.sort();
                    return Ok((plan, gtts));
                }
                Err(HyperQError::Bind(msg)) => {
                    attempts += 1;
                    if attempts > MAX_INFERENCE_STEPS || !self.learn_from(&msg, text) {
                        return Err(HyperQError::Bind(msg));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Interpret one binder error as a missing catalog fact and record
    /// it. Returns false when nothing new can be learned (the error then
    /// stands as the verdict).
    fn learn_from(&mut self, msg: &str, text: &str) -> bool {
        if let Some(name) = msg
            .strip_prefix("table ")
            .and_then(|r| r.strip_suffix(" not found"))
        {
            let upper = name.to_ascii_uppercase();
            if self.dropped.contains(&upper)
                || self.tables.contains_key(&upper)
                || self.gtt_defs.contains_key(&upper)
            {
                return false;
            }
            let columns = harvest_columns(text, &upper);
            self.tables.insert(upper.clone(), TableDef::new(&upper, columns));
            self.inferred.insert(upper);
            return true;
        }
        // "column C not found in T" (relational lookup) or
        // "column Q.C not found" (scalar reference).
        if let Some(rest) = msg.strip_prefix("column ") {
            let rest = rest.strip_suffix(" not found").unwrap_or(rest);
            let (column, table_hint) = match rest.split_once(" not found in ") {
                Some((c, t)) => (c, Some(t)),
                None => match rest.rsplit_once('.') {
                    Some((q, c)) => (c, Some(q)),
                    None => (rest, None),
                },
            };
            let column = column.trim().to_ascii_uppercase();
            if column.is_empty() {
                return false;
            }
            let target = table_hint
                .map(|t| base_name(&t.to_ascii_uppercase()).to_string())
                .filter(|t| self.inferred.contains(t))
                .or_else(|| {
                    // An unqualified (or alias-qualified) reference: only
                    // unambiguous if exactly one table was fabricated.
                    let mut it = self.inferred.iter();
                    match (it.next(), it.next()) {
                        (Some(only), None) => Some(only.clone()),
                        _ => None,
                    }
                });
            if let Some(t) = target {
                if let Some(def) = self.tables.get_mut(&t) {
                    if !def.columns.iter().any(|c| c.name == column) {
                        def.columns
                            .push(ColumnDef::new(&column, SqlType::Unknown, true));
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// The per-session target-side name of a GTT instance. The live session
/// appends its session id; the assessor is one logical session.
fn gtt_instance_name(logical: &str) -> String {
    format!("GTT_{}_SA", logical.replace('.', "_"))
}

fn base_name(name: &str) -> &str {
    name.rsplit('.').next().unwrap_or(name)
}

/// Mirror of `SessionState::default_database`.
fn default_database(settings: &[(String, String)]) -> Option<&str> {
    settings
        .iter()
        .rev()
        .find(|(k, _)| {
            k.eq_ignore_ascii_case("DATABASE") || k.eq_ignore_ascii_case("DEFAULT DATABASE")
        })
        .map(|(_, v)| v.trim().trim_matches('\''))
        .filter(|v| !v.is_empty() && !v.eq_ignore_ascii_case("DBC"))
}

/// Harvest `TBL.COL` references for a fabricated table from the statement
/// text (the only schema evidence a usage-only corpus offers).
fn harvest_columns(text: &str, table: &str) -> Vec<ColumnDef> {
    use hyperq_parser::token::Token;
    let base = base_name(table);
    let Ok(toks) = hyperq_parser::lexer::tokenize(text) else {
        return Vec::new();
    };
    let mut cols: Vec<ColumnDef> = Vec::new();
    for w in toks.windows(3) {
        let (Token::Word(q) | Token::QuotedIdent(q)) = &w[0].token else {
            continue;
        };
        if !matches!(w[1].token, Token::Dot) {
            continue;
        }
        let (Token::Word(c) | Token::QuotedIdent(c)) = &w[2].token else {
            continue;
        };
        if q.eq_ignore_ascii_case(base) {
            let upper = c.to_ascii_uppercase();
            if !cols.iter().any(|existing| existing.name == upper) {
                cols.push(ColumnDef::new(&upper, SqlType::Unknown, true));
            }
        }
    }
    cols
}

/// The assessor's binder catalog: the same layering as the session's
/// `ShadowCatalog` — overlay, sidecars, GTT instances, default-database
/// qualification — over the inferred table map instead of a live backend.
struct AssessShadow<'a> {
    tables: &'a HashMap<String, TableDef>,
    sidecars: &'a HashMap<String, TableDef>,
    gtt_defs: &'a HashMap<String, TableDef>,
    views: &'a HashMap<String, ViewDef>,
    default_database: Option<String>,
    overlay: HashMap<String, TableDef>,
    gtt_touched: RefCell<HashSet<String>>,
}

impl MetadataProvider for AssessShadow<'_> {
    fn table(&self, name: &str) -> Option<TableDef> {
        let upper = name.to_ascii_uppercase();
        if let Some(def) = self.overlay.get(&upper) {
            return Some(def.clone());
        }
        if let Some(def) = self.sidecars.get(&upper) {
            if self.tables.contains_key(&upper) {
                return Some(def.clone());
            }
        }
        if let Some(def) = self.gtt_defs.get(&upper) {
            self.gtt_touched.borrow_mut().insert(upper.clone());
            let mut instance = def.clone();
            instance.name = gtt_instance_name(&upper);
            instance.kind = TableKind::Temporary;
            return Some(instance);
        }
        if !upper.contains('.') {
            if let Some(db) = &self.default_database {
                let qualified = format!("{}.{upper}", db.to_ascii_uppercase());
                if let Some(def) = self.tables.get(&qualified) {
                    let mut def = def.clone();
                    def.name = qualified;
                    return Some(def);
                }
            }
        }
        self.tables.get(&upper).cloned()
    }

    fn view(&self, name: &str) -> Option<ViewDef> {
        let upper = name.to_ascii_uppercase();
        self.views
            .get(&upper)
            .or_else(|| self.views.get(base_name(&upper)))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assessor() -> Assessor {
        Assessor::new(TargetCapabilities::simwh())
    }

    #[test]
    fn ddl_then_query_is_translatable() {
        let mut a = assessor();
        a.ingest_ddl("CREATE TABLE T (A INTEGER, B VARCHAR(10))");
        let out = a.assess_script("SELECT A, B FROM T WHERE A > 1");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].verdict, Verdict::Translatable);
        assert!(a.inferred_tables().is_empty());
    }

    #[test]
    fn usage_only_tables_are_inferred() {
        let mut a = assessor();
        let out =
            a.assess_script("SELECT ORDERS.ID, ORDERS.TOTAL FROM ORDERS WHERE ORDERS.TOTAL > 5");
        assert_eq!(out[0].verdict, Verdict::Translatable, "{:?}", out[0].verdict);
        assert_eq!(a.inferred_tables(), vec!["ORDERS".to_string()]);
    }

    #[test]
    fn macro_lifecycle_is_needs_emulation() {
        let mut a = assessor();
        a.ingest_ddl("CREATE TABLE T (A INTEGER)");
        let out = a.assess_script(
            "CREATE MACRO M (X INTEGER) AS (SELECT A FROM T WHERE A = :X;); EXEC M(4)",
        );
        assert_eq!(out.len(), 2);
        for sa in &out {
            match &sa.verdict {
                Verdict::NeedsEmulation { kinds, tier } => {
                    assert_eq!(kinds, &vec![EmulationKind::Macro]);
                    assert_eq!(*tier, CostTier::Medium);
                }
                v => panic!("expected emulation verdict, got {v:?}"),
            }
        }
    }

    #[test]
    fn undefined_macro_is_unsupported() {
        let mut a = assessor();
        let out = a.assess_script("EXEC NOPE(1)");
        match &out[0].verdict {
            Verdict::Unsupported { reason, .. } => {
                assert!(reason.contains("not defined"), "{reason}");
            }
            v => panic!("expected unsupported, got {v:?}"),
        }
    }

    #[test]
    fn gtt_define_then_touch_predicts_materialization_once() {
        let mut a = assessor();
        let out = a.assess_script(
            "CREATE GLOBAL TEMPORARY TABLE G (A INTEGER); \
             INSERT INTO G SELECT 1; \
             SELECT COUNT(*) FROM G",
        );
        assert_eq!(out.len(), 3);
        match &out[0].verdict {
            Verdict::NeedsEmulation { kinds, .. } => {
                assert_eq!(kinds, &vec![EmulationKind::GttDefine]);
            }
            v => panic!("{v:?}"),
        }
        match &out[1].verdict {
            Verdict::NeedsEmulation { kinds, tier } => {
                assert_eq!(kinds, &vec![EmulationKind::GttMaterialize]);
                assert_eq!(*tier, CostTier::High);
            }
            v => panic!("{v:?}"),
        }
        // Second touch: the instance is already materialized.
        assert_eq!(out[2].verdict, Verdict::Translatable);
    }

    #[test]
    fn span_points_at_statement_in_script() {
        let mut a = assessor();
        a.ingest_ddl("CREATE TABLE T (A INTEGER)");
        let script = "SELECT A FROM T; SELECT ZZZ FROM T";
        let out = a.assess_script(script);
        assert_eq!(out[0].verdict, Verdict::Translatable);
        assert!(matches!(out[1].verdict, Verdict::Unsupported { .. }));
        let span = &out[1].span;
        assert!(span.start >= 17 && span.end <= script.len(), "{span:?}");
    }
}
