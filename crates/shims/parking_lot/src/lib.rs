//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the parking_lot API it actually uses:
//! non-poisoning `Mutex`, `RwLock` and `Condvar`. Poison errors from the
//! underlying std primitives are swallowed by recovering the guard — the
//! same observable behavior parking_lot provides (no lock poisoning).

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (non-poisoning `lock()`).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move
/// it out and back while the wrapper stays borrowed.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|p| p.into_inner())))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|p| p.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable that pairs with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(|p| p.into_inner());
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses; returns whether the wait
    /// timed out (parking_lot's `wait_for` shape).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
        drop(g);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_one();
        t.join().unwrap();
    }
}
