//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian read/write subset of `Buf`/`BufMut` the wire
//! format code uses, with `BytesMut` as a growable buffer over `Vec<u8>`
//! and `Bytes` as its frozen (immutable) form.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn from_vec(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte buffer; all multi-byte writes are little-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i128_le(&mut self, v: i128) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access over a byte cursor; all multi-byte reads are little-endian.
///
/// Unlike the real crate, reads past the end panic (callers here always
/// check `remaining()` first, matching the upstream contract).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    /// Copy `N` bytes out and advance.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_array())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }
    fn get_i128_le(&mut self) -> i128 {
        i128::from_le_bytes(self.take_array())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, rest) = self.split_at(N);
        *self = rest;
        head.try_into().expect("split_at returns N bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_i32_le(-5);
        b.put_i64_le(-6);
        b.put_i128_le(-7);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), -6);
        assert_eq!(r.get_i128_le(), -7);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }
}
