//! Offline stand-in for the `rand` crate.
//!
//! Implements the seeded-generation subset the workload generators use:
//! `StdRng::seed_from_u64`, `gen_range` over exclusive/inclusive integer
//! ranges and `gen_bool`. The generator is SplitMix64 — statistically fine
//! for data synthesis, deterministic for a given seed (which is all the
//! callers rely on). Sampling uses modulo reduction; the tiny bias is
//! irrelevant for workload generation.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly to yield a `T`. Generic over `T`
/// (rather than using an associated type) so range literals infer their
/// integer type from the expected output, as with the real crate.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i32..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1u64..=7);
            assert!((1..=7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((15_000..25_000).contains(&hits), "{hits}");
    }
}
