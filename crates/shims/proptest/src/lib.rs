//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendors the
//! strategy-combinator subset the workspace's property tests use. Two
//! deliberate simplifications versus real proptest:
//!
//! * **No shrinking.** A failing case panics with the generated values in
//!   scope; rerunning is deterministic (seeds derive from the case index),
//!   so failures reproduce exactly.
//! * **Regex strategies** support the shapes used in-tree — `.{lo,hi}` and
//!   `[class]{lo,hi}` — not full regex syntax.

pub mod test_runner {
    /// Deterministic per-case generator (SplitMix64 over the case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> TestRng {
            TestRng { state: 0xB5AD_4ECE_DA1C_E2A9 ^ ((case as u64) << 1) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. `generate` replaces real proptest's value-tree
    /// machinery; combinators keep their upstream names.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased strategy (what `.boxed()` returns).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("prop_oneof is never empty").1.generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Pattern strategies: the `.{lo,hi}` / `[class]{lo,hi}` regex subset.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (pool, lo, hi) = parse_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len).map(|_| pool[rng.below(pool.len() as u64) as usize]).collect()
        }
    }

    /// Characters `.` may produce: printable ASCII plus a few multi-byte
    /// code points so UTF-8 boundary handling gets exercised.
    fn dot_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
        pool.extend(['à', 'é', 'ü', 'λ', '中', '€']);
        pool
    }

    fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let (pool, rest) = if let Some(rest) = pattern.strip_prefix('.') {
            (dot_pool(), rest)
        } else if let Some(body) = pattern.strip_prefix('[') {
            let close = body.find(']').expect("unterminated character class");
            (expand_class(&body[..close]), &body[close + 1..])
        } else {
            panic!("unsupported pattern strategy: {pattern:?}");
        };
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("pattern {pattern:?} must end in {{lo,hi}}"));
        let (lo, hi) = counts.split_once(',').expect("{lo,hi} repetition");
        (pool, lo.trim().parse().expect("lo"), hi.trim().parse().expect("hi"))
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut pool = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i] <= chars[i + 2] {
                for c in chars[i]..=chars[i + 2] {
                    pool.push(c);
                }
                i += 3;
            } else {
                pool.push(chars[i]);
                i += 1;
            }
        }
        assert!(!pool.is_empty(), "empty character class");
        pool
    }

    /// Element-wise generation: a `Vec` of strategies yields a `Vec` of
    /// values (one per element, in order).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` strategy with a sampled length in `size` (exclusive upper
    /// bound, matching upstream's `Range<usize>` size semantics).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The test harness macro: each `fn name(bindings) { body }` becomes a
/// `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $crate::__proptest_bind!{ __rng, ($($args)*) }
                    // Case bodies may early-return `Ok(())` like real
                    // proptest closures, so run each one in a closure with
                    // a Result return type.
                    let __case_body = || -> ::core::result::Result<(), ()> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let _ = __case_body();
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, ()) => {};
    ($rng:ident, ($pat:pat in $strat:expr)) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, ($pat:pat in $strat:expr, $($rest:tt)*)) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!{ $rng, ($($rest)*) }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion macros: plain panics (there is no shrinking phase to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (0i32..10).generate(&mut rng);
            assert!((0..10).contains(&v));
            let (a, b) = ((0u8..4), (-5i64..5)).generate(&mut rng);
            assert!(a < 4 && (-5..5).contains(&b));
        }
    }

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..500 {
            let s = "[a-c0-2 ]{1,5}".generate(&mut rng);
            assert!((1..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| "abc012 ".contains(c)), "{s:?}");
        }
        let dot = ".{0,8}".generate(&mut rng);
        assert!(dot.chars().count() <= 8);
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = TestRng::for_case(2);
        let s = prop_oneof![9 => Just(1u8), 1 => Just(0u8)];
        let ones: u32 = (0..10_000).map(|_| s.generate(&mut rng) as u32).sum();
        assert!((8_000..10_000).contains(&ones), "{ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_patterns(a in 0i32..5, (b, c) in ((0u8..3), (0u8..3))) {
            prop_assert!((0..5).contains(&a));
            prop_assert_eq!((b < 3, c < 3), (true, true));
        }

        #[test]
        fn collection_vec_and_flat_map(v in crate::collection::vec(0u8..4, 0..6)
            .prop_flat_map(|v| (Just(v.len()), Just(v)))) {
            let (n, v) = v;
            prop_assert_eq!(n, v.len());
            prop_assert!(n < 6);
        }
    }
}
