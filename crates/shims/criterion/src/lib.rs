//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench-definition API (`Criterion`, groups, `iter`,
//! `iter_batched`, the `criterion_group!`/`criterion_main!` macros) so the
//! workspace's benches compile and run without crates.io access. The
//! statistics are deliberately simple: warm up for `warm_up_time`, take
//! `sample_size` wall-clock samples sized to fill `measurement_time`, and
//! report min/median/max ns per iteration on stdout. No HTML reports, no
//! regression analysis — this is a smoke-and-ballpark harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b);
        b.report(&name.to_string());
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// How `iter_batched` amortizes setup; only affects batching granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Bencher {
        Bencher { sample_size, measurement_time, warm_up_time, samples: Vec::new() }
    }

    /// Time `routine` end-to-end, auto-scaling iterations per sample so the
    /// run roughly fills `measurement_time`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warm_up_time;
        let mut one = Duration::from_nanos(1);
        while Instant::now() < warm_until {
            let t = Instant::now();
            std::hint::black_box(routine());
            one = t.elapsed().max(Duration::from_nanos(1));
        }
        let per_sample = self.measurement_time.as_nanos() / self.sample_size as u128;
        let iters = ((per_sample / one.as_nanos().max(1)) as u64).clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` only, regenerating its input with `setup` outside the
    /// timed region each iteration.
    pub fn iter_batched<I, S, F, R>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            std::hint::black_box(routine(setup()));
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos().max(1) as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("bench: {name:<48} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "bench: {name:<48} median {} (min {}, max {}, {} samples)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.samples.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Identity helper kept for API compatibility; the sampling loops already
/// black-box values internally.
pub fn black_box<T>(v: T) -> T {
    std::hint::black_box(v)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| 2u64 + 2));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("fn", 3), &3u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
