#!/usr/bin/env sh
# Tier-1 gate, runnable fully offline: lint clean, release build, tests.
set -eu

cd "$(dirname "$0")/.."

cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --offline --release
cargo test -q --offline

# Fault-injection suites explicitly (retry/backoff, deadlines, breaker,
# replay safety, gateway hardening) — offline, std/shim-only.
cargo test -q --offline -p hyperq-core --test failures
cargo test -q --offline --test resilience
