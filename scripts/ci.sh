#!/usr/bin/env sh
# Tier-1 gate, runnable fully offline: lint clean, release build, tests.
set -eu

cd "$(dirname "$0")/.."

cargo clippy --offline --workspace --all-targets -- -D warnings
cargo build --offline --release
cargo test -q --offline
