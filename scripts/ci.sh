#!/usr/bin/env sh
# Tier-1 gate, runnable fully offline: lint clean, docs clean, release
# build, tests, static-analysis suites, unsafe-code gate.
set -eu

cd "$(dirname "$0")/.."

# Lint gate: warnings plus a promoted slice of clippy's pedantic group.
cargo clippy --offline --workspace --all-targets -- -D warnings \
    -D clippy::semicolon_if_nothing_returned \
    -D clippy::redundant_closure_for_method_calls \
    -D clippy::map_unwrap_or \
    -D clippy::manual_let_else \
    -D clippy::explicit_iter_loop \
    -D clippy::unnested_or_patterns
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
cargo build --offline --release --workspace
cargo test -q --offline --workspace

# Fault-injection suites explicitly (retry/backoff, deadlines, breaker,
# replay safety, gateway hardening) — offline, std/shim-only.
cargo test -q --offline -p hyperq-core --test failures
cargo test -q --offline --test resilience

# Static-analysis suites: validator invariants + property coverage, rule
# audit attribution, and the strict-mode acceptance corpora (TPC-H + the
# customer workloads with zero violations).
cargo test -q --offline -p hyperq-xtra validate
cargo test -q --offline -p hyperq-xtra --test props
cargo test -q --offline -p hyperq-core --test analyze
cargo test -q --offline --test analyze_strict

# Validator metrics must surface in the exposition formats end to end.
cargo test -q --offline --test observability validator_metrics_appear_in_exposition

# Session continuity: the bounded chaos soak (kill-laden run must match a
# fault-free baseline byte for byte, in-transaction kills abort exactly
# once, overload sheds cleanly). Bounded well under 60s; the full
# multi-config soak runs with `cargo test --test soak -- --ignored`.
cargo test -q --offline --test soak
cargo test -q --offline --test observability recovery_and_admission_metrics_appear_in_exposition

# Translation cache: fingerprinting unit suite, the crosscompiler-level
# invalidation/isolation suite, corpus-wide transcript equivalence
# (cache-off vs cold vs warm must be byte-identical), the cache-enabled
# chaos soak, and the exposition-format check for the cache metric
# families.
cargo test -q --offline -p hyperq-parser fingerprint
cargo test -q --offline -p hyperq-core cache
cargo test -q --offline -p hyperq-core --test cache
cargo test -q --offline --test cache_equivalence
cargo test -q --offline --test soak cache_enabled_chaos
cargo test -q --offline --test observability cache_metric_families_expose_cleanly

# Provenance & workload intelligence: per-statement forensics with an
# injected fault (record fields must match independently observed
# metrics), redaction opt-in semantics, the Figure 8 analog replay with
# generator ground truth, the byte-stable report snapshot, and the
# observability endpoint against a live gateway.
cargo test -q --offline -p hyperq-obs provenance
cargo test -q --offline -p hyperq-obs report
cargo test -q --offline -p hyperq-wire obs_http
cargo test -q --offline --test provenance
cargo test -q --offline --test obs_http

# Query lifecycle governance: cancellation (client abort / deadline /
# memory budget) end to end over the wire and at the library level, the
# governor unit suites, and the bounded cancel-chaos soak — seeded kill
# schedules with survivors pinned byte-identical to a kill-free baseline.
cargo test -q --offline -p hyperq-governor
cargo test -q --offline --test cancel
cargo test -q --offline --test soak cancel_soak

# Replica HA & self-healing failover: routing/fencing/journal/pinning
# unit suites, the repair-and-prober suite, the `/replicas` endpoint
# coverage, and the bounded replica-kill chaos soak — seeded kills over a
# three-replica set with transcripts pinned byte-identical to a
# single-backend fault-free baseline and post-heal state convergence.
cargo test -q --offline -p hyperq-core replicate
cargo test -q --offline -p hyperq-core repair
cargo test -q --offline --test obs_http replicas_route
cargo test -q --offline --test soak replica

# Static workload assessment + capability conformance: assessor unit and
# report-snapshot suites, the differential oracle (assessor verdicts must
# agree with live pipeline behavior statement by statement over TPC-H and
# both customer corpora, on simwh and simwh-reduced), and the conformance
# lint suite (Strict-clean corpora on every executable target,
# reduced-signature attribution, span validity, verdict property).
cargo test -q --offline -p hyperq-assess
cargo test -q --offline -p hyperq-core conformance
cargo test -q --offline --test assess_oracle
cargo test -q --offline --test conformance

# Target profiles: the registry/flavor unit suites and the cross-target
# differential suite — every corpus against every executable profile,
# client-visible transcripts byte-identical, and the limit_fetch
# emulation firing on simwh-reduced but never on simwh.
cargo test -q --offline -p hyperq-core targets
cargo test -q --offline -p hyperq-core serialize
cargo test -q --offline --test target_differential

# The hyperq-assess CLI reports over the built-in corpora must match the
# committed golden snapshots byte for byte (the report format is
# deliberately byte-stable so drift is an intentional, reviewed change).
for corpus in tpch health telco; do
    target/release/hyperq-assess --corpus "$corpus" \
        | diff -u "tests/snapshots/assess_$corpus.txt" - || {
        echo "hyperq-assess --corpus $corpus drifted from its golden snapshot" >&2
        exit 1
    }
done

# Production-path panic hygiene: no `.unwrap()` / `.expect(` in non-test
# code of the gateway-facing crates (wire, governor), the replica
# HA modules, and the target-profile registry/flavor modules. The awk
# strips everything from the first `#[cfg(test)]` module onward.
for src in crates/wire/src crates/governor/src \
    crates/core/src/replicate.rs crates/core/src/repair.rs \
    crates/core/src/targets.rs crates/core/src/serialize/flavor.rs; do
    offenders=$(find "$src" -name '*.rs' -exec awk '
        /#\[cfg\(test\)\]/ { intest = 1 }
        !intest && /\.unwrap\(\)|\.expect\(/ { print FILENAME ":" FNR ": " $0 }
    ' {} \;)
    if [ -n "$offenders" ]; then
        echo "unwrap/expect in non-test code under $src:" >&2
        echo "$offenders" >&2
        exit 1
    fi
done

# Every registered hyperq_* metric family must be documented in the
# DESIGN.md inventory table. Pull quoted family-name literals out of the
# source (suffix-filtered: spill-file name prefixes and other non-metric
# literals share the hyperq_ namespace) and require each in the table.
families=$(grep -rhoE '"hyperq_[a-z0-9_]+"' src crates --include='*.rs' \
    | tr -d '"' \
    | grep -E '_(total|seconds|state|entries|inflight|depth|queries|active)$' \
    | sort -u)
[ -n "$families" ] || { echo 'metric inventory grep found nothing' >&2; exit 1; }
for family in $families; do
    grep -q "\`$family\`" DESIGN.md || {
        echo "metric family $family missing from the DESIGN.md inventory" >&2
        exit 1
    }
done

# No unsafe code outside the vendored shims: every workspace crate roots
# a `#![forbid(unsafe_code)]`, and nothing sneaks an `unsafe` block in.
for lib in src/lib.rs crates/xtra/src/lib.rs crates/parser/src/lib.rs \
    crates/core/src/lib.rs crates/engine/src/lib.rs crates/wire/src/lib.rs \
    crates/workload/src/lib.rs crates/obs/src/lib.rs crates/bench/src/lib.rs \
    crates/governor/src/lib.rs crates/assess/src/lib.rs; do
    grep -q '#!\[forbid(unsafe_code)\]' "$lib" || {
        echo "missing #![forbid(unsafe_code)] in $lib" >&2
        exit 1
    }
done
if grep -rn --include='*.rs' -w 'unsafe' src crates --exclude-dir=shims \
    | grep -v 'forbid(unsafe_code)' | grep -v 'unsafe_code'; then
    echo 'unsafe code found outside crates/shims' >&2
    exit 1
fi
