//! Cache transparency: with the translation cache enabled, the SQL-B sent
//! to the target must be **byte-identical** to the cache-off pipeline —
//! cold (populating) and warm (replaying from a pre-seeded shared cache)
//! alike — across the TPC-H corpus, both customer workloads, and literal
//! variations that exercise template splicing.

use std::sync::Arc;

use hyperq::core::{Backend, CacheConfig, HyperQBuilder, ObsContext, TranslationCache};
use hyperq::engine::EngineDb;
use hyperq::workload::customer::{health, telco};
use hyperq::workload::tpch;

/// Session-scoped generated names embed the session id (`GTT_X_S7`,
/// `WT_S7_1`); three pipelines are three sessions, so normalize the id
/// before comparing transcripts.
fn scrub(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'_'
            && i + 1 < bytes.len()
            && bytes[i + 1] == b'S'
            && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
        {
            out.push_str("_S#");
            i += 2;
            while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Run `corpus` through three pipelines — cache-off, cache-on-cold and
/// cache-on-warm (same shared cache, second pass) — and compare the full
/// per-statement SQL-B transcripts.
fn assert_transcripts_identical(db: Arc<EngineDb>, setup: &[String], corpus: &[(String, String)]) {
    let obs = ObsContext::new();
    let cache = Arc::new(TranslationCache::new(CacheConfig::default(), &obs));

    let run = |mut hq: hyperq::core::HyperQ, label: &str| -> Vec<(String, Vec<String>)> {
        for s in setup {
            hq.run_one(s).unwrap();
        }
        let mut transcript = Vec::new();
        for (name, sql) in corpus {
            let o = hq
                .run_one(sql)
                .unwrap_or_else(|e| panic!("[{label}] {name} failed: {e}"));
            transcript.push((name.clone(), o.sql_sent.iter().map(|s| scrub(s)).collect::<Vec<_>>()));
        }
        transcript
    };

    let off = run(
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh())
            .obs(Arc::clone(&obs))
            .no_cache()
            .build(),
        "off",
    );
    let cold = run(
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh())
            .obs(Arc::clone(&obs))
            .shared_cache(Arc::clone(&cache))
            .build(),
        "cold",
    );
    let warm = run(
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh())
            .obs(Arc::clone(&obs))
            .shared_cache(Arc::clone(&cache))
            .build(),
        "warm",
    );

    for ((name, a), (_, b)) in off.iter().zip(cold.iter()) {
        assert_eq!(a, b, "cache-on (cold) diverged from cache-off for {name}");
    }
    for ((name, a), (_, b)) in off.iter().zip(warm.iter()) {
        assert_eq!(a, b, "cache-on (warm) diverged from cache-off for {name}");
    }
    assert!(
        obs.metrics.counter_value("hyperq_cache_hits_total", &[]) > 0,
        "warm pass never hit the cache — the comparison proved nothing"
    );
}

#[test]
fn tpch_corpus_with_literal_variations_is_transcript_identical() {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(0.001, 42).tables() {
        db.load_rows(table, rows).unwrap();
    }
    let mut corpus: Vec<(String, String)> = tpch::queries()
        .into_iter()
        .map(|(n, sql)| (format!("Q{n}"), sql.to_string()))
        .collect();
    // Literal variations of one template: the warm pass serves these by
    // splicing, which is exactly where an unsound template would diverge.
    for qty in [5, 24, 31337] {
        corpus.push((
            format!("VAR_qty_{qty}"),
            format!("SEL L_ORDERKEY FROM LINEITEM WHERE L_QUANTITY > {qty}"),
        ));
    }
    for region in ["ASIA", "EUROPE", "O'HARE"] {
        corpus.push((
            format!("VAR_region_{region}"),
            format!("SEL R_NAME FROM REGION WHERE R_NAME = '{}'", region.replace('\'', "''")),
        ));
    }
    assert_transcripts_identical(db, &[], &corpus);
}

#[test]
fn customer_workloads_are_transcript_identical() {
    for w in [health(0.05), telco(0.02)] {
        let db = Arc::new(EngineDb::new());
        for ddl in &w.target_ddl {
            db.execute_sql(ddl).unwrap();
        }
        let corpus: Vec<(String, String)> = w
            .distinct
            .iter()
            .enumerate()
            .map(|(i, sql)| (format!("{}#{i}", w.profile.name), sql.clone()))
            .collect();
        assert_transcripts_identical(db, &w.hyperq_setup, &corpus);
    }
}
