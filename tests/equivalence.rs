//! Property-based *semantic equivalence* tests: the rewrites Hyper-Q
//! applies must not change query results. Random data goes into the
//! engine; a Teradata-dialect query through Hyper-Q must produce the same
//! rows as a hand-written ANSI equivalent executed directly.

use std::sync::Arc;

use proptest::prelude::*;

use hyperq::core::{Backend, HyperQ, HyperQBuilder};
use hyperq::engine::EngineDb;
use hyperq::xtra::datum::{Datum, teradata_int_from_date};
use hyperq::xtra::Row;

fn sales_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (0i64..20, 0i64..1000, 15_000i32..17_000).prop_map(|(store, amount, date)| {
            vec![Datum::Int(store), Datum::Int(amount), Datum::Date(date)]
        }),
        0..40,
    )
}

fn history_rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (0i64..1000, 0i64..1000)
            .prop_map(|(gross, net)| vec![Datum::Int(gross), Datum::Int(net)]),
        0..20,
    )
}

fn setup(sales: Vec<Row>, history: Vec<Row>) -> (HyperQ, Arc<EngineDb>) {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER, SALES_DATE DATE)")
        .unwrap();
    db.execute_sql("CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER)").unwrap();
    db.load_rows("SALES", sales).unwrap();
    db.load_rows("SALES_HISTORY", history).unwrap();
    let hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    (hq, db)
}

fn sorted(mut rows: Vec<Row>) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .drain(..)
        .map(|r| r.iter().map(Datum::to_sql_string).collect())
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn date_int_comparison_equivalent_to_date_literal(
        sales in sales_rows(),
        cutoff in 15_000i32..17_000,
    ) {
        let (mut hq, db) = setup(sales, vec![]);
        let encoded = teradata_int_from_date(cutoff);
        let via_hyperq = hq
            .run_one(&format!("SEL STORE, AMOUNT FROM SALES WHERE SALES_DATE > {encoded}"))
            .unwrap();
        let direct = db
            .execute_sql(&format!(
                "SELECT STORE, AMOUNT FROM SALES WHERE SALES_DATE > DATE '{}'",
                hyperq::xtra::datum::format_date(cutoff)
            ))
            .unwrap();
        prop_assert_eq!(sorted(via_hyperq.result.rows), sorted(direct.rows));
    }

    #[test]
    fn vector_subquery_rewrite_is_equivalent(
        sales in sales_rows(),
        history in history_rows(),
    ) {
        // The EXISTS rewrite must match the lexicographic semantics the
        // engine implements natively for scalar evaluation.
        let (mut hq, db) = setup(sales, history);
        let via_hyperq = hq
            .run_one(
                "SEL STORE, AMOUNT FROM SALES \
                 WHERE (AMOUNT, AMOUNT * 2) > ANY (SEL GROSS, NET FROM SALES_HISTORY)",
            )
            .unwrap();
        // Reference: hand-decorrelated EXISTS with the paper's expansion.
        let direct = db
            .execute_sql(
                "SELECT S1.STORE, S1.AMOUNT FROM SALES S1 WHERE EXISTS ( \
                   SELECT 1 FROM SALES_HISTORY S2 \
                   WHERE (S1.AMOUNT > S2.GROSS) \
                      OR (S1.AMOUNT = S2.GROSS AND S1.AMOUNT * 2 > S2.NET))",
            )
            .unwrap();
        prop_assert_eq!(sorted(via_hyperq.result.rows), sorted(direct.rows));
    }

    #[test]
    fn qualify_rank_equivalent_to_derived_table(
        sales in sales_rows(),
        k in 1u64..5,
    ) {
        let (mut hq, db) = setup(sales, vec![]);
        let via_hyperq = hq
            .run_one(&format!(
                "SEL STORE, AMOUNT FROM SALES QUALIFY RANK(AMOUNT DESC) <= {k}"
            ))
            .unwrap();
        let direct = db
            .execute_sql(&format!(
                "SELECT STORE, AMOUNT FROM ( \
                   SELECT STORE, AMOUNT, RANK() OVER (ORDER BY AMOUNT DESC) AS R FROM SALES \
                 ) AS T WHERE R <= {k}"
            ))
            .unwrap();
        prop_assert_eq!(sorted(via_hyperq.result.rows), sorted(direct.rows));
    }

    #[test]
    fn rollup_expansion_equivalent_to_manual_union(sales in sales_rows()) {
        let (mut hq, db) = setup(sales, vec![]);
        let via_hyperq = hq
            .run_one("SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY ROLLUP(STORE)")
            .unwrap();
        let direct = db
            .execute_sql(
                "SELECT STORE, SUM(AMOUNT) AS T FROM SALES GROUP BY STORE \
                 UNION ALL \
                 SELECT NULL, SUM(AMOUNT) FROM SALES",
            )
            .unwrap();
        // Empty input: ROLLUP still produces the grand-total row (NULL);
        // both formulations do here because global aggregates return a row.
        prop_assert_eq!(sorted(via_hyperq.result.rows), sorted(direct.rows));
    }

    #[test]
    fn set_table_insert_is_idempotent(history in history_rows()) {
        let (mut hq, db) = setup(vec![], vec![]);
        hq.run_one("CREATE SET TABLE DEDUP (GROSS INTEGER, NET INTEGER)").unwrap();
        let values: Vec<String> = history
            .iter()
            .map(|r| format!("({}, {})", r[0].to_sql_string(), r[1].to_sql_string()))
            .collect();
        if values.is_empty() {
            return Ok(());
        }
        let insert = format!("INSERT INTO DEDUP VALUES {}", values.join(", "));
        hq.run_one(&insert).unwrap();
        let first = db.execute_sql("SELECT COUNT(*) FROM DEDUP").unwrap().rows[0][0]
            .to_i64()
            .unwrap();
        // Re-inserting the same rows must not change the table (SET
        // semantics silently discard duplicates).
        hq.run_one(&insert).unwrap();
        let second = db.execute_sql("SELECT COUNT(*) FROM DEDUP").unwrap().rows[0][0]
            .to_i64()
            .unwrap();
        prop_assert_eq!(first, second);
        // And the count equals the number of distinct rows.
        let distinct: std::collections::HashSet<Vec<String>> = history
            .iter()
            .map(|r| r.iter().map(Datum::to_sql_string).collect())
            .collect();
        prop_assert_eq!(first as usize, distinct.len());
    }

    #[test]
    fn translation_functions_agree_with_ansi(
        sales in sales_rows(),
        k in 1i64..50,
    ) {
        let (mut hq, db) = setup(sales, vec![]);
        let via_hyperq = hq
            .run_one(&format!(
                "SEL ZEROIFNULL(AMOUNT), AMOUNT MOD {k} FROM SALES"
            ))
            .unwrap();
        let direct = db
            .execute_sql(&format!(
                "SELECT COALESCE(AMOUNT, 0), (AMOUNT % {k}) FROM SALES"
            ))
            .unwrap();
        prop_assert_eq!(sorted(via_hyperq.result.rows), sorted(direct.rows));
    }

    #[test]
    fn top_with_ties_never_splits_a_tie_group(sales in sales_rows(), k in 1u64..6) {
        let (mut hq, db) = setup(sales, vec![]);
        let o = hq
            .run_one(&format!(
                "SEL TOP {k} WITH TIES AMOUNT FROM SALES ORDER BY AMOUNT DESC"
            ))
            .unwrap();
        let n = o.result.rows.len() as u64;
        let total = db.execute_sql("SELECT COUNT(*) FROM SALES").unwrap().rows[0][0]
            .to_i64()
            .unwrap() as u64;
        prop_assert!(n >= k.min(total), "must return at least min(k, total) rows");
        // The smallest returned amount must bound the excluded rows.
        if n > 0 && n < total {
            let min_kept = o
                .result
                .rows
                .iter()
                .map(|r| r[0].to_i64().unwrap())
                .min()
                .unwrap();
            let excluded_above = db
                .execute_sql(&format!(
                    "SELECT COUNT(*) FROM SALES WHERE AMOUNT > {min_kept}"
                ))
                .unwrap()
                .rows[0][0]
                .to_i64()
                .unwrap() as u64;
            prop_assert!(excluded_above < k, "no row above the kept minimum may be excluded");
        }
    }
}
