//! Resilience acceptance tests through the full stack: TPC-H workload via
//! Hyper-Q over a fault-injected SimWH target, plus gateway hardening
//! (connection cap, idle reap, backend faults on a live session).

use std::sync::Arc;
use std::time::Duration;

use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan};
use hyperq::core::backend::BackendErrorKind;
use hyperq::core::resilience::{
    BreakerConfig, BreakerState, ResilienceConfig, ResilientBackend, RetryPolicy,
};
use hyperq::core::{Backend, HyperQ, HyperQBuilder, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::wire::{AdmissionConfig, Client, Gateway, GatewayConfig};
use hyperq::workload::tpch;
use hyperq::xtra::datum::Datum;

const SCALE: f64 = 0.002;

fn tpch_db() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(SCALE, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    db
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(5),
        jitter: 0.5,
        seed: 99,
        deadline: None,
    }
}

/// Hyper-Q session over Instrumented → Resilient → FaultInjecting → SimWH
/// with an isolated metrics registry.
fn stack(
    plan: FaultPlan,
    retry: RetryPolicy,
    breaker: BreakerConfig,
) -> (HyperQ, Arc<FaultInjectingBackend>, Arc<ResilientBackend>, Arc<ObsContext>) {
    let obs = ObsContext::new();
    let fault = FaultInjectingBackend::wrap(tpch_db() as Arc<dyn Backend>, plan);
    let resilient = ResilientBackend::wrap(
        Arc::clone(&fault) as Arc<dyn Backend>,
        ResilienceConfig { retry, breaker },
        &obs,
    );
    let hq = HyperQBuilder::for_target(Arc::clone(&resilient) as Arc<dyn Backend>, hyperq::core::targets::simwh()).obs(Arc::clone(&obs)).build();
    (hq, fault, resilient, obs)
}

#[test]
fn tpch_query_survives_two_transient_failures() {
    // Acceptance: fail-twice-then-succeed ⇒ exactly 3 backend attempts,
    // retries counter = 2 in the Prometheus exposition, breaker closed.
    let (mut hq, fault, resilient, obs) = stack(
        FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
        fast_retry(),
        BreakerConfig::default(),
    );
    let o = hq.run_one(tpch::query(6)).unwrap();
    assert!(!o.result.rows.is_empty(), "Q6 must return its revenue row");
    assert_eq!(fault.attempts(), 3, "2 injected failures + 1 success");
    assert_eq!(fault.injected_faults(), 2);

    let prom = obs.metrics.render_prometheus();
    let line = prom
        .lines()
        .find(|l| l.starts_with("hyperq_backend_retries_total") && l.contains("SimWH"))
        .unwrap_or_else(|| panic!("retries counter missing from exposition:\n{prom}"));
    assert!(line.ends_with(" 2"), "expected 2 retries: {line}");
    assert_eq!(resilient.breaker_state(), BreakerState::Closed);
}

#[test]
fn persistent_failure_opens_breaker_and_fails_fast() {
    let (mut hq, fault, resilient, obs) = stack(
        FaultPlan::always_fail(BackendErrorKind::ConnectionLost),
        RetryPolicy { max_attempts: 1, ..fast_retry() },
        BreakerConfig {
            failure_threshold: 4,
            cooldown: Duration::from_secs(300),
            success_threshold: 1,
        },
    );
    for _ in 0..4 {
        assert!(hq.run_one(tpch::query(6)).is_err());
    }
    assert_eq!(resilient.breaker_state(), BreakerState::Open);
    let reached = fault.attempts();

    let err = hq.run_one(tpch::query(6)).unwrap_err();
    assert!(err.to_string().contains("circuit breaker open"), "{err}");
    assert_eq!(fault.attempts(), reached, "open breaker must not reach the backend");
    assert_eq!(
        obs.metrics.gauge("hyperq_backend_breaker_state", &[("backend", "SimWH")]).get(),
        1,
        "breaker-state gauge must read open"
    );
}

#[test]
fn injected_latency_is_visible_in_attempt_histogram() {
    let (mut hq, _fault, _resilient, obs) = stack(
        FaultPlan::none().with_latency(Duration::from_millis(3)),
        fast_retry(),
        BreakerConfig::default(),
    );
    hq.run_one(tpch::query(6)).unwrap();
    let h = obs
        .metrics
        .histogram("hyperq_backend_attempt_duration_seconds", &[("backend", "SimWH")]);
    assert!(h.count() >= 1);
    assert!(h.max() >= Duration::from_millis(3), "latency injection must register: {:?}", h.max());
}

// ---------------------------------------------------------------------------
// Gateway hardening
// ---------------------------------------------------------------------------

fn sales_db() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SALES VALUES (1, 500), (2, 300), (3, 700)").unwrap();
    db
}

#[test]
fn backend_fault_mid_session_leaves_connection_usable() {
    // A backend failure must come back as a wire error on a connection
    // that still serves the next request.
    let fault = FaultInjectingBackend::wrap(
        sales_db() as Arc<dyn Backend>,
        FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Fatal),
    );
    let handle = Gateway::spawn(
        Arc::clone(&fault) as Arc<dyn Backend>,
        GatewayConfig { resilience: None, ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let err = client.run("SEL COUNT(*) FROM SALES").unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    let ok = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(ok[0].rows[0][0], Datum::Int(3));
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn gateway_retries_transient_backend_faults_transparently() {
    // With the default resilience config the client never sees the two
    // transient failures.
    let fault = FaultInjectingBackend::wrap(
        sales_db() as Arc<dyn Backend>,
        FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
    );
    let handle =
        Gateway::spawn(Arc::clone(&fault) as Arc<dyn Backend>, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let ok = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(ok[0].rows[0][0], Datum::Int(3));
    assert_eq!(fault.attempts(), 3);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn connections_over_the_cap_are_rejected_gracefully() {
    // `admission: None` exercises the legacy hard reject: over-cap
    // connections fail immediately with code 3134 instead of queueing.
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig { max_connections: 1, admission: None, ..Default::default() },
    )
    .unwrap();
    let mut first = Client::connect(handle.addr, "APP", "secret").unwrap();
    first.run("SEL COUNT(*) FROM SALES").unwrap();

    let Err(err) = Client::connect(handle.addr, "APP", "secret") else {
        panic!("second connection must be rejected at capacity");
    };
    assert!(err.to_string().contains("capacity"), "{err}");
    assert!(err.to_string().contains("[3134]"), "hard reject keeps its own code: {err}");

    // The rejected connection freed nothing: the first session still works,
    // and once it logs off a new connection is admitted.
    first.run("SEL COUNT(*) FROM SALES").unwrap();
    first.logoff().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(handle.addr, "APP", "secret") {
            Ok(mut c) => {
                c.run("SEL COUNT(*) FROM SALES").unwrap();
                c.logoff().unwrap();
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("slot never freed after logoff: {e}"),
        }
    }
    handle.shutdown();
}

#[test]
fn queued_connection_is_admitted_when_a_slot_frees() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig {
            max_connections: 1,
            admission: Some(AdmissionConfig {
                admission_timeout: Duration::from_secs(5),
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let mut first = Client::connect(handle.addr, "APP", "secret").unwrap();
    first.run("SEL COUNT(*) FROM SALES").unwrap();

    // The second connection queues instead of being rejected; once the
    // first session logs off it is admitted and fully usable.
    let addr = handle.addr;
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "APP", "secret").unwrap();
        let rows = c.run("SEL COUNT(*) FROM SALES").unwrap();
        c.logoff().unwrap();
        rows[0].rows[0][0].clone()
    });
    std::thread::sleep(Duration::from_millis(100));
    first.logoff().unwrap();
    let count = waiter.join().unwrap();
    assert_eq!(count, Datum::Int(3), "queued connection must run normally once admitted");
    handle.shutdown();
}

#[test]
fn queued_connection_sheds_with_distinct_code_after_admission_timeout() {
    let timeout = Duration::from_millis(200);
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig {
            max_connections: 1,
            admission: Some(AdmissionConfig {
                connection_queue: 1,
                admission_timeout: timeout,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();
    let mut first = Client::connect(handle.addr, "APP", "secret").unwrap();
    first.run("SEL COUNT(*) FROM SALES").unwrap();

    // Second connection queues, waits out the admission timeout, and is
    // shed with the timeout code — not the instant hard reject.
    let t0 = std::time::Instant::now();
    let Err(err) = Client::connect(handle.addr, "APP", "secret") else {
        panic!("second connection must be shed after the admission timeout");
    };
    assert!(t0.elapsed() >= timeout, "shed before admission_timeout elapsed: {err}");
    assert!(err.to_string().contains("[3135]"), "timeout shed carries its own code: {err}");

    // A full queue sheds immediately with the queue-full code: occupy the
    // single queue slot with a background waiter, then race a third
    // connection against it.
    let addr = handle.addr;
    let queued = std::thread::spawn(move || Client::connect(addr, "APP", "secret"));
    std::thread::sleep(Duration::from_millis(50));
    let t0 = std::time::Instant::now();
    let Err(err) = Client::connect(handle.addr, "APP", "secret") else {
        panic!("third connection must be shed queue-full");
    };
    assert!(err.to_string().contains("[3136]"), "queue-full shed carries its own code: {err}");
    assert!(t0.elapsed() < timeout, "queue-full shed must not wait out the timeout");
    assert!(queued.join().unwrap().is_err(), "background waiter itself times out");

    // The session that held the slot the whole time is unaffected.
    first.run("SEL COUNT(*) FROM SALES").unwrap();
    first.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn statement_admission_cap_queues_and_sheds() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig {
            admission: Some(AdmissionConfig {
                statement_slots: Some(1),
                statement_queue: 0,
                admission_timeout: Duration::from_millis(200),
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();
    // One slot and no queue: while a slow statement holds the slot, a
    // concurrent statement is shed with the queue-full code, and the
    // session that was shed stays usable afterwards.
    let addr = handle.addr;
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "APP", "secret").unwrap();
        // SLEEP is not in the dialect; a self-join is slow enough to hold
        // the slot while the other session collides with it.
        let _ = c.run(
            "SEL COUNT(*) FROM SALES A, SALES B, SALES C, SALES D, SALES E, SALES F, SALES G",
        );
        c.logoff().unwrap();
    });
    let mut other = Client::connect(handle.addr, "APP", "secret").unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let mut shed_seen = false;
    for _ in 0..20 {
        match other.run("SEL COUNT(*) FROM SALES") {
            Ok(_) => {}
            Err(e) => {
                let text = e.to_string();
                assert!(
                    text.contains("[3136]") || text.contains("[3135]"),
                    "statement shed must carry an admission code: {text}"
                );
                shed_seen = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    slow.join().unwrap();
    // Whether or not the race produced a shed (the slow statement may
    // finish first on a fast machine), the session must still work.
    other.run("SEL COUNT(*) FROM SALES").unwrap();
    other.logoff().unwrap();
    let _ = shed_seen;
    handle.shutdown();
}

#[test]
fn idle_sessions_are_reaped_by_the_io_timeout() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig { io_timeout: Some(Duration::from_millis(50)), ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    client.run("SEL COUNT(*) FROM SALES").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        client.run("SEL COUNT(*) FROM SALES").is_err(),
        "session past the idle budget must be gone"
    );
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_sessions() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig { drain_timeout: Duration::from_secs(5), ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(handle.active_sessions(), 1);
    client.logoff().unwrap();
    let t0 = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain must return as soon as sessions finish, not burn the whole budget"
    );
}
