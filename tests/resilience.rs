//! Resilience acceptance tests through the full stack: TPC-H workload via
//! Hyper-Q over a fault-injected SimWH target, plus gateway hardening
//! (connection cap, idle reap, backend faults on a live session).

use std::sync::Arc;
use std::time::Duration;

use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan};
use hyperq::core::backend::BackendErrorKind;
use hyperq::core::capability::TargetCapabilities;
use hyperq::core::resilience::{
    BreakerConfig, BreakerState, ResilienceConfig, ResilientBackend, RetryPolicy,
};
use hyperq::core::{Backend, HyperQ, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::wire::{Client, Gateway, GatewayConfig};
use hyperq::workload::tpch;
use hyperq::xtra::datum::Datum;

const SCALE: f64 = 0.002;

fn tpch_db() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(SCALE, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    db
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(5),
        jitter: 0.5,
        seed: 99,
        deadline: None,
    }
}

/// Hyper-Q session over Instrumented → Resilient → FaultInjecting → SimWH
/// with an isolated metrics registry.
fn stack(
    plan: FaultPlan,
    retry: RetryPolicy,
    breaker: BreakerConfig,
) -> (HyperQ, Arc<FaultInjectingBackend>, Arc<ResilientBackend>, Arc<ObsContext>) {
    let obs = ObsContext::new();
    let fault = FaultInjectingBackend::wrap(tpch_db() as Arc<dyn Backend>, plan);
    let resilient = ResilientBackend::wrap(
        Arc::clone(&fault) as Arc<dyn Backend>,
        ResilienceConfig { retry, breaker },
        &obs,
    );
    let hq = HyperQ::with_obs(
        Arc::clone(&resilient) as Arc<dyn Backend>,
        TargetCapabilities::simwh(),
        Arc::clone(&obs),
    );
    (hq, fault, resilient, obs)
}

#[test]
fn tpch_query_survives_two_transient_failures() {
    // Acceptance: fail-twice-then-succeed ⇒ exactly 3 backend attempts,
    // retries counter = 2 in the Prometheus exposition, breaker closed.
    let (mut hq, fault, resilient, obs) = stack(
        FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
        fast_retry(),
        BreakerConfig::default(),
    );
    let o = hq.run_one(tpch::query(6)).unwrap();
    assert!(!o.result.rows.is_empty(), "Q6 must return its revenue row");
    assert_eq!(fault.attempts(), 3, "2 injected failures + 1 success");
    assert_eq!(fault.injected_faults(), 2);

    let prom = obs.metrics.render_prometheus();
    let line = prom
        .lines()
        .find(|l| l.starts_with("hyperq_backend_retries_total") && l.contains("SimWH"))
        .unwrap_or_else(|| panic!("retries counter missing from exposition:\n{prom}"));
    assert!(line.ends_with(" 2"), "expected 2 retries: {line}");
    assert_eq!(resilient.breaker_state(), BreakerState::Closed);
}

#[test]
fn persistent_failure_opens_breaker_and_fails_fast() {
    let (mut hq, fault, resilient, obs) = stack(
        FaultPlan::always_fail(BackendErrorKind::ConnectionLost),
        RetryPolicy { max_attempts: 1, ..fast_retry() },
        BreakerConfig {
            failure_threshold: 4,
            cooldown: Duration::from_secs(300),
            success_threshold: 1,
        },
    );
    for _ in 0..4 {
        assert!(hq.run_one(tpch::query(6)).is_err());
    }
    assert_eq!(resilient.breaker_state(), BreakerState::Open);
    let reached = fault.attempts();

    let err = hq.run_one(tpch::query(6)).unwrap_err();
    assert!(err.to_string().contains("circuit breaker open"), "{err}");
    assert_eq!(fault.attempts(), reached, "open breaker must not reach the backend");
    assert_eq!(
        obs.metrics.gauge("hyperq_backend_breaker_state", &[("backend", "SimWH")]).get(),
        1,
        "breaker-state gauge must read open"
    );
}

#[test]
fn injected_latency_is_visible_in_attempt_histogram() {
    let (mut hq, _fault, _resilient, obs) = stack(
        FaultPlan::none().with_latency(Duration::from_millis(3)),
        fast_retry(),
        BreakerConfig::default(),
    );
    hq.run_one(tpch::query(6)).unwrap();
    let h = obs
        .metrics
        .histogram("hyperq_backend_attempt_duration_seconds", &[("backend", "SimWH")]);
    assert!(h.count() >= 1);
    assert!(h.max() >= Duration::from_millis(3), "latency injection must register: {:?}", h.max());
}

// ---------------------------------------------------------------------------
// Gateway hardening
// ---------------------------------------------------------------------------

fn sales_db() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SALES VALUES (1, 500), (2, 300), (3, 700)").unwrap();
    db
}

#[test]
fn backend_fault_mid_session_leaves_connection_usable() {
    // A backend failure must come back as a wire error on a connection
    // that still serves the next request.
    let fault = FaultInjectingBackend::wrap(
        sales_db() as Arc<dyn Backend>,
        FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Fatal),
    );
    let handle = Gateway::spawn(
        Arc::clone(&fault) as Arc<dyn Backend>,
        GatewayConfig { resilience: None, ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let err = client.run("SEL COUNT(*) FROM SALES").unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    let ok = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(ok[0].rows[0][0], Datum::Int(3));
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn gateway_retries_transient_backend_faults_transparently() {
    // With the default resilience config the client never sees the two
    // transient failures.
    let fault = FaultInjectingBackend::wrap(
        sales_db() as Arc<dyn Backend>,
        FaultPlan::fail_n_then_succeed(2, BackendErrorKind::Transient),
    );
    let handle =
        Gateway::spawn(Arc::clone(&fault) as Arc<dyn Backend>, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let ok = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(ok[0].rows[0][0], Datum::Int(3));
    assert_eq!(fault.attempts(), 3);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn connections_over_the_cap_are_rejected_gracefully() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig { max_connections: 1, ..Default::default() },
    )
    .unwrap();
    let mut first = Client::connect(handle.addr, "APP", "secret").unwrap();
    first.run("SEL COUNT(*) FROM SALES").unwrap();

    let err = match Client::connect(handle.addr, "APP", "secret") {
        Err(e) => e,
        Ok(_) => panic!("second connection must be rejected at capacity"),
    };
    assert!(err.to_string().contains("capacity"), "{err}");

    // The rejected connection freed nothing: the first session still works,
    // and once it logs off a new connection is admitted.
    first.run("SEL COUNT(*) FROM SALES").unwrap();
    first.logoff().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(handle.addr, "APP", "secret") {
            Ok(mut c) => {
                c.run("SEL COUNT(*) FROM SALES").unwrap();
                c.logoff().unwrap();
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("slot never freed after logoff: {e}"),
        }
    }
    handle.shutdown();
}

#[test]
fn idle_sessions_are_reaped_by_the_io_timeout() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig { io_timeout: Some(Duration::from_millis(50)), ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    client.run("SEL COUNT(*) FROM SALES").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        client.run("SEL COUNT(*) FROM SALES").is_err(),
        "session past the idle budget must be gone"
    );
    handle.shutdown();
}

#[test]
fn shutdown_drains_in_flight_sessions() {
    let handle = Gateway::spawn(
        sales_db() as Arc<dyn Backend>,
        GatewayConfig { drain_timeout: Duration::from_secs(5), ..Default::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(handle.active_sessions(), 1);
    client.logoff().unwrap();
    let t0 = std::time::Instant::now();
    handle.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "drain must return as soon as sessions finish, not burn the whole budget"
    );
}
