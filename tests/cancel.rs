//! End-to-end query cancellation: client aborts over the wire (3110),
//! deadline expiry (3156), and memory-budget kills (2646), each leaving a
//! usable session, zero temp-table leaks, and a drained memory pool.
//!
//! The governor's contract under test: one well-defined error code per
//! cancel reason, visible end to end — bteq-style client → TCP gateway →
//! Hyper-Q pipeline → SimWH — and at the library level via
//! `Request::timeout` / `Request::memory_budget`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hyperq::core::backend::{Backend, BackendError, ExecResult, RequestContext};
use hyperq::xtra::catalog::TableDef;
use hyperq::core::{HyperQBuilder, HyperQError, ObsContext, Request};
use hyperq::engine::EngineDb;
use hyperq::governor::{CancelReason, GovernorConfig};
use hyperq::wire::{AdmissionConfig, Client, Gateway, GatewayConfig, GatewayHandle};
use hyperq::xtra::Datum;

/// Backend wrapper that sleeps before every execute: makes statements take
/// deterministically long enough for aborts, deadlines, and the watchdog
/// to land mid-flight, in debug and release builds alike.
struct SlowBackend {
    inner: Arc<EngineDb>,
    delay: Duration,
}

impl SlowBackend {
    fn wrap(inner: Arc<EngineDb>, delay: Duration) -> Arc<SlowBackend> {
        Arc::new(SlowBackend { inner, delay })
    }
}

impl Backend for SlowBackend {
    fn name(&self) -> &str {
        "slow-simwh"
    }

    fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
        std::thread::sleep(self.delay);
        self.inner.execute(sql)
    }

    fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
        std::thread::sleep(self.delay);
        self.inner.execute_ctx(sql, ctx)
    }

    fn table_meta(&self, name: &str) -> Option<TableDef> {
        self.inner.table_meta(name)
    }

    fn reset_session(&self) -> Result<(), BackendError> {
        self.inner.reset_session()
    }
}

fn seed_db() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SALES VALUES (1, 500), (2, 300), (3, 700)").unwrap();
    db.execute_sql("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)").unwrap();
    db.execute_sql("INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)").unwrap();
    db
}

/// Wait for the registration table to drain: the gateway drops a query's
/// registration just after flushing its response, so the client can observe
/// the response a moment before the books close.
fn assert_governor_drained(handle: &GatewayHandle) {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        if handle.governor().inflight() == 0 && handle.governor().pool().used() == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "governor still holds queries or memory");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn client_abort_mid_query_returns_3110_and_session_survives() {
    let db = seed_db();
    let tables_before = db.table_names();
    let backend = SlowBackend::wrap(Arc::clone(&db), Duration::from_millis(400));
    let handle = Gateway::spawn(backend as Arc<dyn Backend>, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();

    let mut aborter = client.aborter().unwrap();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(80));
        aborter.abort().unwrap();
    });
    let err = client.run("SEL STORE, AMOUNT FROM SALES ORDER BY AMOUNT").unwrap_err();
    killer.join().unwrap();
    let err = err.to_string();
    assert!(err.contains("[3110]"), "client abort must surface wire code 3110: {err}");
    assert!(err.contains("client_abort"), "{err}");

    // The single well-defined error was the whole story: the session is
    // immediately usable and answers correctly.
    let rows = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(rows[0].rows[0][0], Datum::Int(3));

    assert_eq!(db.table_names(), tables_before, "cancelled query must not leak tables");
    assert_governor_drained(&handle);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn gateway_default_deadline_cancels_with_3156() {
    let db = seed_db();
    let backend = SlowBackend::wrap(Arc::clone(&db), Duration::from_millis(500));
    let handle = Gateway::spawn(
        backend as Arc<dyn Backend>,
        GatewayConfig {
            governor: GovernorConfig {
                default_query_timeout: Some(Duration::from_millis(100)),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();

    let err = client.run("SEL * FROM SALES").unwrap_err().to_string();
    assert!(err.contains("[3156]"), "deadline expiry must surface wire code 3156: {err}");
    assert!(err.contains("deadline"), "{err}");

    // The deadline is per statement, not per session: the next statement
    // gets a fresh 100ms budget, so a fast one (no table access after the
    // cache warms nothing — keep it under the budget via the engine's
    // speed) still completes when it fits.
    let cancels = ObsContext::global()
        .metrics
        .counter_value("hyperq_governor_cancels_total", &[("reason", "deadline")]);
    assert!(cancels >= 1, "the deadline cancel must be counted");
    assert_governor_drained(&handle);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn client_requested_timeout_cancels_with_3156_and_session_survives() {
    let db = seed_db();
    let backend = SlowBackend::wrap(Arc::clone(&db), Duration::from_millis(400));
    // No gateway-wide default: the limit rides in on SqlRequestTimed.
    let handle = Gateway::spawn(backend as Arc<dyn Backend>, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();

    let err = client
        .run_timed("SEL * FROM SALES", Duration::from_millis(100))
        .unwrap_err()
        .to_string();
    assert!(err.contains("[3156]"), "client-requested timeout must map to 3156: {err}");

    // An untimed request on the same session has no deadline at all.
    let rows = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(rows[0].rows[0][0], Datum::Int(3));
    assert_governor_drained(&handle);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn memory_budget_kill_returns_2646_without_leaks() {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE T (N INTEGER)").unwrap();
    let values: Vec<String> = (0..400).map(|i| format!("({i})")).collect();
    db.execute_sql(&format!("INSERT INTO T VALUES {}", values.join(", "))).unwrap();
    let tables_before = db.table_names();

    let handle = Gateway::spawn(
        Arc::clone(&db) as Arc<dyn Backend>,
        GatewayConfig {
            governor: GovernorConfig { per_query_memory: 64 * 1024, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();

    // 400 × 400 × 400 rows of cross join: the engine charges materialized
    // join output incrementally and trips the 64 KiB budget mid-build, long
    // before the process feels any memory pressure.
    let err = client
        .run("SEL A.N FROM T A, T B, T C WHERE A.N = B.N")
        .unwrap_err()
        .to_string();
    assert!(err.contains("[2646]"), "budget kill must surface wire code 2646: {err}");
    assert!(err.contains("budget"), "{err}");

    // Small statements fit the same budget and the session stays usable.
    let rows = client.run("SEL COUNT(*) FROM T").unwrap();
    assert_eq!(rows[0].rows[0][0], Datum::Int(400));
    assert_eq!(db.table_names(), tables_before, "budget kill must not leak tables");
    assert_governor_drained(&handle);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn library_level_timeout_cancels_request() {
    let db = seed_db();
    let backend = SlowBackend::wrap(Arc::clone(&db), Duration::from_millis(300));
    let mut hq =
        HyperQBuilder::for_target(backend as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();

    let err = hq
        .run(Request::script("SEL * FROM SALES").timeout(Duration::from_millis(60)))
        .unwrap_err();
    match &err {
        HyperQError::Cancelled(c) => assert_eq!(c.reason, CancelReason::DeadlineExceeded),
        other => panic!("expected Cancelled(deadline), got {other}"),
    }

    // Same session, no timeout: runs to completion.
    let out = hq.run(Request::script("SEL COUNT(*) FROM SALES")).unwrap();
    assert_eq!(out.last().unwrap().result.rows[0][0], Datum::Int(3));
}

#[test]
fn library_level_memory_budget_cancels_request() {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE T (N INTEGER)").unwrap();
    let values: Vec<String> = (0..400).map(|i| format!("({i})")).collect();
    db.execute_sql(&format!("INSERT INTO T VALUES {}", values.join(", "))).unwrap();
    let mut hq =
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh())
            .build();

    let err = hq
        .run(Request::script("SEL A.N FROM T A, T B, T C").memory_budget(32 * 1024))
        .unwrap_err();
    match &err {
        HyperQError::Cancelled(c) => assert_eq!(c.reason, CancelReason::BudgetExceeded),
        other => panic!("expected Cancelled(budget), got {other}"),
    }
    let out = hq.run(Request::script("SEL COUNT(*) FROM T")).unwrap();
    assert_eq!(out.last().unwrap().result.rows[0][0], Datum::Int(400));
}

const RECURSIVE_REPORTS: &str = "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
     SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
     UNION ALL \
     SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
     WHERE REPORTS.EMPNO = EMP.MGRNO ) \
   SELECT EMPNO FROM REPORTS ORDER BY EMPNO";

#[test]
fn deadline_mid_recursion_drops_emulation_temps() {
    let db = seed_db();
    let backend = SlowBackend::wrap(Arc::clone(&db), Duration::from_millis(60));
    let mut hq =
        HyperQBuilder::for_target(backend as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();

    // The recursion emulation issues several backend statements (work-table
    // CTAS, per-step inserts); at 60ms each the 130ms deadline expires
    // mid-sequence. The shielded cleanup must still drop every temp table
    // — a cancelled statement may not leak target-side state (the PR4
    // journal invariant).
    let err = hq
        .run(Request::script(RECURSIVE_REPORTS).timeout(Duration::from_millis(130)))
        .unwrap_err();
    assert!(matches!(err, HyperQError::Cancelled(_)), "expected cancel, got {err}");
    assert!(
        db.table_names().iter().all(|t| !t.starts_with("WT_") && !t.starts_with("TT_")),
        "cancelled recursion leaked temps: {:?}",
        db.table_names()
    );

    // The same recursion without a deadline completes on this session.
    let out = hq.run(Request::script(RECURSIVE_REPORTS)).unwrap();
    assert_eq!(out.last().unwrap().result.rows.len(), 4);
}

#[test]
fn queued_statement_sheds_at_its_deadline_not_admission_timeout() {
    let db = seed_db();
    let backend = SlowBackend::wrap(Arc::clone(&db), Duration::from_millis(600));
    let handle = Gateway::spawn(
        backend as Arc<dyn Backend>,
        GatewayConfig {
            admission: Some(AdmissionConfig {
                statement_slots: Some(1),
                statement_queue: 8,
                // Far longer than any statement deadline in this test: a
                // shed before this elapses proves the governor clamped it.
                admission_timeout: Duration::from_secs(30),
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();

    let addr = handle.addr;
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "APP", "secret").unwrap();
        c.run("SEL * FROM SALES").unwrap();
        c.logoff().unwrap();
    });
    // Let the holder win the single statement slot.
    std::thread::sleep(Duration::from_millis(150));

    let mut client = Client::connect(addr, "APP", "secret").unwrap();
    let t0 = Instant::now();
    let err = client
        .run_timed("SEL * FROM SALES", Duration::from_millis(100))
        .unwrap_err()
        .to_string();
    let waited = t0.elapsed();
    assert!(err.contains("[3156]"), "queued-past-deadline must report the cancel code: {err}");
    assert!(
        waited < Duration::from_secs(5),
        "statement must shed at its deadline, not the 30s admission timeout ({waited:?})"
    );

    holder.join().unwrap();
    assert_governor_drained(&handle);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn idle_abort_is_ignored_and_session_unaffected() {
    let db = seed_db();
    let handle = Gateway::spawn(db as Arc<dyn Backend>, GatewayConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();

    // Nothing is running: the abort pairs with no request and must produce
    // no response — the next query's reply is its own, undisturbed.
    client.aborter().unwrap().abort().unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let rows = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(rows[0].rows[0][0], Datum::Int(3));
    client.logoff().unwrap();
    handle.shutdown();
}
