//! The observability endpoint against a live gateway: drive TPC-H and a
//! customer-corpus slice through the wire protocol, then watch the same
//! workload through plain HTTP GETs — Prometheus metrics with quantile
//! gauges, per-statement provenance, the Figure 7/8 analog report built
//! from live records only, the slow-query log, and the health probe.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use hyperq::core::Backend;
use hyperq::engine::EngineDb;
use hyperq::wire::{Client, Gateway, GatewayConfig};
use hyperq::workload::{customer::health, tpch};

fn get(addr: SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

/// One big scenario instead of parallel small tests: the gateway reports
/// into the process-global observability context, so concurrent tests in
/// this binary would race each other's metrics.
#[test]
fn gateway_observability_endpoint_serves_live_workload_intelligence() {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(0.002, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    let corpus = health(0.01);
    for ddl in &corpus.target_ddl {
        db.execute_sql(ddl).unwrap();
    }

    let config = GatewayConfig { obs_http: Some("127.0.0.1:0".to_string()), ..Default::default() };
    let handle = Gateway::spawn(Arc::clone(&db) as Arc<dyn Backend>, config).unwrap();
    let obs_addr = handle.obs_addr().expect("obs_http config must yield an endpoint");

    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    // TPC-H through the wire — Q1 twice so the translation cache records a
    // hit alongside the misses.
    for q in [1, 1, 3, 6] {
        client.run(tpch::query(q)).unwrap();
    }
    // Customer-corpus slice on the same session (its setup views included).
    for setup in &corpus.hyperq_setup {
        client.run(setup).unwrap();
    }
    for text in &corpus.distinct {
        client.run(text).unwrap_or_else(|e| panic!("{text}: {e}"));
    }

    // /healthz — liveness.
    let (head, body) = get(obs_addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(body, "ok\n");

    // /metrics — Prometheus exposition with the wire families and the
    // pre-computed latency quantile gauges.
    let (_, prom) = get(obs_addr, "/metrics");
    for needle in [
        "hyperq_wire_requests_total",
        "hyperq_statements_total",
        "hyperq_cache_hits_total",
        "hyperq_stage_duration_seconds_p50",
        "hyperq_stage_duration_seconds_p95",
        "hyperq_stage_duration_seconds_p99",
    ] {
        assert!(prom.contains(needle), "missing {needle} in /metrics");
    }

    // /metrics.json — same registry, parseable JSON.
    let (_, metrics_json) = get(obs_addr, "/metrics.json");
    hyperq::obs::json::validate(&metrics_json).expect("/metrics.json must parse");

    // /provenance — the most recent per-statement records.
    let (_, prov) = get(obs_addr, "/provenance?n=5");
    hyperq::obs::json::validate(&prov).expect("/provenance must parse");
    assert!(prov.contains("\"fingerprint\""), "{prov}");
    assert!(prov.matches("\"seq\"").count() <= 5, "n= must cap the record count");

    // /report — Figure 7/8 analog shapes folded from live records only.
    let (_, report) = get(obs_addr, "/report");
    hyperq::obs::json::validate(&report).expect("/report must parse");
    for shape in ["\"stage_shares\":", "\"overhead_bands\":", "\"features\":", "\"cache\":"] {
        assert!(report.contains(shape), "missing {shape} in /report");
    }
    // The corpus exercises transformation features; the report must list
    // at least one X-class code with a nonzero count.
    assert!(report.contains("\"code\":\"X"), "no transformation feature in: {report}");
    let (_, text) = get(obs_addr, "/report?format=text");
    assert!(text.contains("figure 7 analog"), "{text}");
    assert!(text.contains("figure 8 analog"), "{text}");

    // /slowlog — parseable even when empty (default threshold is off).
    let (_, slow) = get(obs_addr, "/slowlog");
    hyperq::obs::json::validate(&slow).expect("/slowlog must parse");

    // /queries — the governor's in-flight table (idle here, so an empty
    // array) is attached whenever the gateway serves the endpoint.
    let (head, queries) = get(obs_addr, "/queries");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    hyperq::obs::json::validate(&queries).expect("/queries must parse");

    // Cancel-over-HTTP is config-gated and off by default: the route
    // refuses rather than exposing a kill switch on a read-only port.
    let (head, _) = get(obs_addr, "/queries?cancel=1");
    assert!(head.starts_with("HTTP/1.1 403"), "{head}");

    // /replicas — this gateway serves a single backend, so there is no
    // replica set to report on.
    let (head, body) = get(obs_addr, "/replicas");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(body.contains("no replica set"), "{body}");

    // Unknown routes and non-GET methods are refused, not crashed on.
    let (head, _) = get(obs_addr, "/admin");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    client.logoff().unwrap();
    handle.shutdown();
}

/// A standalone endpoint spawned without a gateway has no governor to ask:
/// `/queries` answers 404, everything else still serves.
#[test]
fn queries_route_without_governor_is_absent() {
    let handle = hyperq::wire::obs_http::spawn(
        "127.0.0.1:0",
        Arc::clone(hyperq::core::ObsContext::global()),
    )
    .unwrap();
    let (head, body) = get(handle.addr, "/queries");
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    assert!(body.contains("no query governor"), "{body}");
    let (head, _) = get(handle.addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    handle.shutdown();
}

/// A replicated gateway reports per-replica health on `/replicas`: an
/// operator watching the endpoint sees the fence after a replica dies and
/// the journal drain back to zero after the prober heals it.
#[test]
fn replicas_route_reports_health_and_journal_depth() {
    use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan, FaultScope};
    use hyperq::core::{BackendErrorKind, ReplicaConfig};

    let primary = Arc::new(EngineDb::new());
    let standby = Arc::new(EngineDb::new());
    let injector = FaultInjectingBackend::wrap(
        Arc::clone(&standby) as Arc<dyn Backend>,
        FaultPlan::none(),
    );
    let handle = Gateway::spawn(
        Arc::clone(&primary) as Arc<dyn Backend>,
        GatewayConfig {
            obs_http: Some("127.0.0.1:0".to_string()),
            replicas: vec![Arc::clone(&injector) as Arc<dyn Backend>],
            replica_config: ReplicaConfig {
                probe_interval: std::time::Duration::from_millis(10),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let obs_addr = handle.obs_addr().unwrap();

    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    client.run("CREATE TABLE ORDERS_HA (ID INTEGER, TOTAL INTEGER)").unwrap();
    client.run("INSERT INTO ORDERS_HA VALUES (1, 100)").unwrap();

    // Both replicas healthy, journals empty.
    let (head, body) = get(obs_addr, "/replicas");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    hyperq::obs::json::validate(&body).expect("/replicas must parse");
    assert!(body.contains("\"name\":\"r0\"") && body.contains("\"name\":\"r1\""), "{body}");
    assert_eq!(body.matches("\"health\":\"healthy\"").count(), 2, "{body}");

    // Kill the standby: the next broadcast fences it and the route shows
    // the fence (the 10ms prober may heal it between writes, so hold the
    // fault across the observation).
    injector.set_plan(
        FaultPlan::always_fail(BackendErrorKind::ConnectionLost).with_scope(FaultScope::All),
    );
    client.run("INSERT INTO ORDERS_HA VALUES (2, 200)").unwrap();
    let (_, body) = get(obs_addr, "/replicas");
    assert!(body.contains("\"health\":\"fenced\""), "{body}");

    // Restore the link: the background prober drains the journal and
    // re-admits the standby without any operator action.
    injector.set_plan(FaultPlan::none());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let (_, body) = get(obs_addr, "/replicas");
        if body.matches("\"health\":\"healthy\"").count() == 2 {
            assert!(body.contains("\"journal_depth\":0"), "{body}");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "prober never healed r1: {body}");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    client.logoff().unwrap();
    handle.shutdown();
}

/// With `allow_http_cancel` enabled, an operator can watch a runaway query
/// on `/queries` and kill it with a plain `curl` — the client gets the
/// client-abort wire code and keeps its session.
#[test]
fn http_cancel_kills_live_query_when_enabled() {
    use std::time::Duration;

    use hyperq::core::backend::{BackendError, ExecResult, RequestContext};
    use hyperq::governor::GovernorConfig;

    struct SlowBackend {
        inner: Arc<EngineDb>,
    }
    impl Backend for SlowBackend {
        fn name(&self) -> &str {
            "slow-simwh"
        }
        fn execute(&self, sql: &str) -> Result<ExecResult, BackendError> {
            std::thread::sleep(Duration::from_millis(400));
            self.inner.execute(sql)
        }
        fn execute_ctx(&self, sql: &str, ctx: RequestContext) -> Result<ExecResult, BackendError> {
            std::thread::sleep(Duration::from_millis(400));
            self.inner.execute_ctx(sql, ctx)
        }
        fn table_meta(&self, name: &str) -> Option<hyperq::xtra::catalog::TableDef> {
            self.inner.table_meta(name)
        }
        fn reset_session(&self) -> Result<(), BackendError> {
            self.inner.reset_session()
        }
    }

    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SALES VALUES (1, 500), (2, 300)").unwrap();
    let backend = Arc::new(SlowBackend { inner: db });
    let handle = Gateway::spawn(
        backend as Arc<dyn Backend>,
        GatewayConfig {
            obs_http: Some("127.0.0.1:0".to_string()),
            governor: GovernorConfig { allow_http_cancel: true, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    let obs_addr = handle.obs_addr().unwrap();

    let addr = handle.addr;
    let victim = std::thread::spawn(move || {
        let mut c = Client::connect(addr, "APP", "secret").unwrap();
        let err = c.run("SEL * FROM SALES").unwrap_err().to_string();
        // The session survives the kill: same connection, correct answer.
        let rows = c.run("SEL COUNT(*) FROM SALES").unwrap();
        c.logoff().unwrap();
        (err, format!("{:?}", rows[0].rows[0][0]))
    });

    // Watch /queries until the statement shows up in the executing stages,
    // then kill it by id.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let id = loop {
        let (_, body) = get(obs_addr, "/queries");
        if let Some(pos) = body.find("\"id\":") {
            let digits: String =
                body[pos + 5..].chars().take_while(char::is_ascii_digit).collect();
            if !digits.is_empty() {
                break digits.parse::<u64>().unwrap();
            }
        }
        assert!(std::time::Instant::now() < deadline, "query never appeared on /queries");
        std::thread::sleep(Duration::from_millis(10));
    };
    let (head, body) = get(obs_addr, &format!("/queries?cancel={id}"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("\"cancelled\":true"), "{body}");

    let (err, follow_up) = victim.join().unwrap();
    assert!(err.contains("[3110]"), "HTTP cancel must surface the abort code: {err}");
    assert_eq!(follow_up, "Int(2)");
    handle.shutdown();
}
