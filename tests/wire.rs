//! Full-stack wire tests: bteq-style client → TCP gateway → Hyper-Q →
//! SimWH, over the simulated Teradata wire protocol.

use std::sync::Arc;

use hyperq::core::Backend;
use hyperq::engine::EngineDb;
use hyperq::wire::{Client, ConverterConfig, Gateway, GatewayConfig};
use hyperq::xtra::datum::Datum;

fn gateway() -> (hyperq::wire::GatewayHandle, Arc<EngineDb>) {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER, SALES_DATE DATE)")
        .unwrap();
    db.execute_sql(
        "INSERT INTO SALES VALUES (1, 500, DATE '2014-03-01'), (2, 300, DATE '2014-04-01'), \
         (3, 700, DATE '2015-01-01')",
    )
    .unwrap();
    let handle = Gateway::spawn(
        Arc::clone(&db) as Arc<dyn Backend>,
        GatewayConfig::default(),
    )
    .unwrap();
    (handle, db)
}

#[test]
fn logon_and_query_round_trip() {
    let (handle, _db) = gateway();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let results = client
        .run("SEL STORE, AMOUNT, SALES_DATE FROM SALES WHERE AMOUNT GT 400 ORDER BY AMOUNT")
        .unwrap();
    assert_eq!(results.len(), 1);
    let rs = &results[0];
    assert_eq!(rs.activity_count, 2);
    assert_eq!(rs.rows[0][1], Datum::Int(500));
    assert_eq!(rs.rows[1][1], Datum::Int(700));
    // Dates travel in the Teradata integer encoding and come back as dates.
    assert_eq!(rs.rows[0][2].to_sql_string(), "2014-03-01");
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn wrong_password_rejected() {
    let (handle, _db) = gateway();
    let Err(err) = Client::connect(handle.addr, "APP", "wrong") else {
        panic!("wrong password must be rejected");
    };
    assert!(err.to_string().contains("logon"), "{err}");
    handle.shutdown();
}

#[test]
fn unknown_user_rejected() {
    let (handle, _db) = gateway();
    assert!(Client::connect(handle.addr, "NOBODY", "secret").is_err());
    handle.shutdown();
}

#[test]
fn statement_error_reported_and_session_survives() {
    let (handle, _db) = gateway();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let err = client.run("SEL * FROM NO_SUCH_TABLE").unwrap_err();
    assert!(err.to_string().contains("NO_SUCH_TABLE"), "{err}");
    // The session is still usable after an error.
    let ok = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(ok[0].rows[0][0], Datum::Int(3));
    handle.shutdown();
}

#[test]
fn multi_statement_request() {
    let (handle, db) = gateway();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let results = client
        .run("INSERT INTO SALES VALUES (4, 900, DATE '2016-01-01'); SEL COUNT(*) FROM SALES")
        .unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].activity_count, 1);
    assert_eq!(results[1].rows[0][0], Datum::Int(4));
    let _ = db;
    handle.shutdown();
}

#[test]
fn emulated_features_work_over_the_wire() {
    let (handle, _db) = gateway();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    // HELP SESSION answered entirely by the mid tier.
    let help = client.run("HELP SESSION").unwrap();
    assert!(help[0]
        .rows
        .iter()
        .any(|r| r[0] == Datum::str("DATEFORM")));
    // Macro definition + execution across requests in one session.
    client
        .run("CREATE MACRO TOPSALES (N INTEGER) AS (SEL TOP 2 STORE, AMOUNT FROM SALES WHERE AMOUNT >= :N ORDER BY AMOUNT DESC;)")
        .unwrap();
    let r = client.run("EXEC TOPSALES(400)").unwrap();
    assert_eq!(r[0].rows.len(), 2);
    assert_eq!(r[0].rows[0][1], Datum::Int(700));
    handle.shutdown();
}

#[test]
fn concurrent_sessions() {
    let (handle, _db) = gateway();
    let addr = handle.addr;
    let threads: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, "APP", "secret").unwrap();
                for _ in 0..10 {
                    let r = c.run("SEL COUNT(*) FROM SALES WHERE AMOUNT > 0").unwrap();
                    assert_eq!(r[0].rows[0][0], Datum::Int(3));
                }
                c.logoff().unwrap();
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert!(handle.connections_served() >= 6);
    let stats = handle.stats();
    assert_eq!(stats.requests, 60);
    assert!(stats.execution > std::time::Duration::ZERO);
    handle.shutdown();
}

#[test]
fn gateway_stats_record_all_three_stages() {
    let (handle, _db) = gateway();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    client.run("SEL * FROM SALES").unwrap();
    let stats = handle.stats();
    assert!(stats.translation > std::time::Duration::ZERO);
    assert!(stats.execution > std::time::Duration::ZERO);
    assert!(stats.conversion > std::time::Duration::ZERO);
    assert_eq!(stats.rows_returned, 3);
    let (t, e, c) = stats.shares();
    assert!((t + e + c - 100.0).abs() < 1e-6);
    handle.shutdown();
}

#[test]
fn large_result_spills_and_arrives_intact() {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE BIG (K INTEGER, PAD VARCHAR(100))").unwrap();
    let rows: Vec<Vec<Datum>> = (0..20_000)
        .map(|i| vec![Datum::Int(i), Datum::str(format!("padding-{i:0>60}"))])
        .collect();
    db.load_rows("BIG", rows).unwrap();
    let config = GatewayConfig {
        converter: ConverterConfig {
            batch_size: 512,
            memory_budget: 64 * 1024, // force spilling
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = Gateway::spawn(Arc::clone(&db) as Arc<dyn Backend>, config).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let r = client.run("SEL K FROM BIG ORDER BY K").unwrap();
    assert_eq!(r[0].rows.len(), 20_000);
    assert_eq!(r[0].rows[0][0], Datum::Int(0));
    assert_eq!(r[0].rows[19_999][0], Datum::Int(19_999));
    assert!(handle.stats().spilled_chunks > 0, "must have spilled");
    handle.shutdown();
}
