//! The differential oracle for static workload assessment: the
//! `hyperq-assess` verdicts must agree with what the live pipeline
//! actually does, statement by statement, over TPC-H and both customer
//! corpora.
//!
//! Agreement means:
//! * `Unsupported` ⇔ the pipeline rejects the statement,
//! * `Translatable` ⇔ the pipeline succeeds without a single mid-tier
//!   emulation request,
//! * `NeedsEmulation { kinds }` ⇔ the pipeline succeeds and the set of
//!   `hyperq_emulation_requests_total` counters that advanced is exactly
//!   `kinds`.
//!
//! The emulation counters are snapshotted around each statement on an
//! isolated observability context, so the comparison is per-statement
//! and exact — not a corpus-level aggregate that could hide compensating
//! errors.

use std::collections::HashSet;
use std::sync::Arc;

use hyperq::assess::{Assessor, Verdict};
use hyperq::core::targets::TargetProfile;
use hyperq::core::capability::TargetCapabilities;
use hyperq::core::{Backend, EmulationKind, HyperQBuilder, HyperQ, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::workload::customer::{health, telco, CustomerWorkload};
use hyperq::workload::tpch;

fn snapshot(obs: &ObsContext) -> Vec<u64> {
    EmulationKind::ALL
        .iter()
        .map(|k| obs.metrics.counter_value("hyperq_emulation_requests_total", &[("kind", k.as_str())]))
        .collect()
}

/// Run one corpus entry through both sides and assert agreement.
/// Returns the number of statements the entry contained.
fn check_entry(hq: &mut HyperQ, a: &mut Assessor, obs: &ObsContext, text: &str) -> usize {
    let before = snapshot(obs);
    let run = hq.run_script(text);
    let after = snapshot(obs);
    let observed: HashSet<EmulationKind> = EmulationKind::ALL
        .iter()
        .zip(before.iter().zip(after.iter()))
        .filter(|(_, (b, a))| a > b)
        .map(|(k, _)| *k)
        .collect();

    let assessments = a.assess_script(text);
    assert!(!assessments.is_empty(), "assessor produced nothing for: {text}");
    let unsupported: Vec<String> = assessments
        .iter()
        .filter_map(|sa| match &sa.verdict {
            Verdict::Unsupported { reason, .. } => Some(reason.clone()),
            _ => None,
        })
        .collect();
    let predicted: HashSet<EmulationKind> = assessments
        .iter()
        .flat_map(|sa| match &sa.verdict {
            Verdict::NeedsEmulation { kinds, .. } => kinds.clone(),
            _ => Vec::new(),
        })
        .collect();

    match run {
        Ok(_) => {
            assert!(
                unsupported.is_empty(),
                "pipeline succeeded but assessor said unsupported ({unsupported:?}) for: {text}"
            );
            assert_eq!(
                predicted, observed,
                "predicted vs observed emulation kinds disagree for: {text}"
            );
        }
        Err(e) => {
            assert!(
                !unsupported.is_empty(),
                "pipeline failed ({e}) but assessor said supported for: {text}"
            );
        }
    }
    assessments.len()
}

fn oracle_over(ddl: &[String], entries: impl Iterator<Item = String>) -> usize {
    oracle_over_target(hyperq::core::targets::simwh(), ddl, entries)
}

fn oracle_over_target(
    profile: TargetProfile,
    ddl: &[String],
    entries: impl Iterator<Item = String>,
) -> usize {
    let db = Arc::new(EngineDb::new());
    let obs = ObsContext::new();
    for d in ddl {
        db.execute_sql(d).unwrap();
    }
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, profile.clone())
        .obs(Arc::clone(&obs))
        .no_cache()
        .build();
    let mut assessor = Assessor::for_target(profile);
    for d in ddl {
        assessor.ingest_ddl(d);
    }
    let mut statements = 0;
    for text in entries {
        statements += check_entry(&mut hq, &mut assessor, &obs, &text);
    }
    assert!(
        assessor.inferred_tables().is_empty(),
        "full-DDL corpora must not need catalog inference: {:?}",
        assessor.inferred_tables()
    );
    statements
}

fn customer_entries(w: &CustomerWorkload) -> impl Iterator<Item = String> + '_ {
    w.hyperq_setup.iter().chain(w.distinct.iter()).cloned()
}

#[test]
fn tpch_verdicts_agree_with_pipeline() {
    let n = oracle_over(
        &tpch::ddl(),
        tpch::queries().into_iter().map(|(_, q)| q.to_string()),
    );
    assert_eq!(n, 22);
}

#[test]
fn health_verdicts_agree_with_pipeline() {
    let w = health(0.05);
    let n = oracle_over(&w.target_ddl, customer_entries(&w));
    assert_eq!(n, w.hyperq_setup.len() + w.distinct.len());
}

#[test]
fn telco_verdicts_agree_with_pipeline() {
    let w = telco(0.02);
    let n = oracle_over(&w.target_ddl, customer_entries(&w));
    assert_eq!(n, w.hyperq_setup.len() + w.distinct.len());
}

/// The second executable registry profile: the assessor must predict the
/// `simwh-reduced` pipeline exactly — including `LimitFetch` for the
/// corpus's `SEL TOP n` queries, an emulation the default target never
/// needs (the per-statement kind-set equality in `check_entry` is exact,
/// so a missed or spurious LimitFetch prediction fails here).
#[test]
fn tpch_verdicts_agree_on_simwh_reduced() {
    let n = oracle_over_target(
        hyperq::core::targets::simwh_reduced(),
        &tpch::ddl(),
        tpch::queries().into_iter().map(|(_, q)| q.to_string()),
    );
    assert_eq!(n, 22);
}

#[test]
fn customer_verdicts_agree_on_simwh_reduced() {
    for w in [health(0.05), telco(0.02)] {
        let n = oracle_over_target(
            hyperq::core::targets::simwh_reduced(),
            &w.target_ddl,
            customer_entries(&w),
        );
        assert_eq!(n, w.hyperq_setup.len() + w.distinct.len());
    }
}

/// The assessor against a deliberately-reduced capability profile: a
/// target without RETURNING or GROUPING SETS still executes the corpora
/// (neither corpus uses those constructs), and verdicts still agree.
#[test]
fn telco_verdicts_agree_on_reduced_profile() {
    let mut caps = TargetCapabilities::cloud_d();
    caps.grouping_sets = false;
    caps.returning_clause = false;
    let w = telco(0.02);
    let db = Arc::new(EngineDb::new());
    let obs = ObsContext::new();
    for d in &w.target_ddl {
        db.execute_sql(d).unwrap();
    }
    let mut hq = HyperQBuilder::for_target(
        Arc::clone(&db) as Arc<dyn Backend>,
        TargetProfile::from_caps(caps.clone()),
    )
        .obs(Arc::clone(&obs))
        .no_cache()
        .build();
    let mut assessor = Assessor::new(caps);
    for d in &w.target_ddl {
        assessor.ingest_ddl(d);
    }
    for text in customer_entries(&w) {
        check_entry(&mut hq, &mut assessor, &obs, &text);
    }
}
