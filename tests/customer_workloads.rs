//! Customer workload integration: every distinct query of both synthetic
//! workloads processes through the full pipeline, and the measured
//! Figure 8 statistics land near the published values.

use std::sync::Arc;

use hyperq::core::tracker::WorkloadTracker;
use hyperq::core::{Backend, HyperQBuilder};
use hyperq::engine::EngineDb;
use hyperq::workload::customer::{health, telco, CustomerWorkload};
use hyperq::xtra::feature::FeatureClass;

fn run_workload(w: &CustomerWorkload) -> (WorkloadTracker, u64) {
    let db = Arc::new(EngineDb::new());
    for ddl in &w.target_ddl {
        db.execute_sql(ddl).unwrap();
    }
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    for setup in &w.hyperq_setup {
        hq.run_one(setup).unwrap();
    }
    let mut tracker = WorkloadTracker::new();
    let mut failures = 0u64;
    for text in &w.distinct {
        match hq.run_one(text) {
            Ok(outcome) => tracker.observe(text, &outcome.features),
            Err(e) => {
                failures += 1;
                eprintln!("FAILED: {text}\n  -> {e}");
            }
        }
    }
    (tracker, failures)
}

#[test]
fn health_distinct_queries_all_process() {
    let w = health(0.05);
    let (tracker, failures) = run_workload(&w);
    assert_eq!(failures, 0);
    assert_eq!(tracker.distinct_queries(), w.distinct.len() as u64);
}

#[test]
fn telco_distinct_queries_all_process() {
    let w = telco(0.02);
    let (tracker, failures) = run_workload(&w);
    assert_eq!(failures, 0);
    assert_eq!(tracker.distinct_queries(), w.distinct.len() as u64);
}

#[test]
fn health_figure8_statistics_near_paper() {
    // At scale 0.2 the shares stabilize; the paper reports (8a) 55.6 / 77.8
    // / 33.3 % of tracked features and (8b) 1.4 / 33.6 / 0.2 % of distinct
    // queries for translation / transformation / emulation.
    let w = health(0.2);
    let (tracker, failures) = run_workload(&w);
    assert_eq!(failures, 0);
    let stats = tracker.class_stats();
    let get = |c: FeatureClass| stats.iter().find(|s| s.class == c).unwrap();
    let tr = get(FeatureClass::Translation);
    let xf = get(FeatureClass::Transformation);
    let em = get(FeatureClass::Emulation);
    // 8a: feature coverage per class.
    assert!((tr.feature_coverage_pct - 55.6).abs() < 0.2, "{}", tr.feature_coverage_pct);
    assert!((xf.feature_coverage_pct - 77.8).abs() < 0.2, "{}", xf.feature_coverage_pct);
    assert!((em.feature_coverage_pct - 33.3).abs() < 0.2, "{}", em.feature_coverage_pct);
    // 8b: distinct queries affected, within a couple of points.
    assert!((tr.queries_affected_pct - 1.4).abs() < 1.0, "{}", tr.queries_affected_pct);
    assert!((xf.queries_affected_pct - 33.6).abs() < 2.0, "{}", xf.queries_affected_pct);
    assert!(em.queries_affected_pct < 2.0, "{}", em.queries_affected_pct);
}

#[test]
fn telco_figure8_statistics_near_paper() {
    // Paper: (8a) 22.2 / 66.7 / 33.3; (8b) 0.2 / 4.0 / 79.1 — macros
    // dominate.
    let w = telco(0.1);
    let (tracker, failures) = run_workload(&w);
    assert_eq!(failures, 0);
    let stats = tracker.class_stats();
    let get = |c: FeatureClass| stats.iter().find(|s| s.class == c).unwrap();
    let tr = get(FeatureClass::Translation);
    let xf = get(FeatureClass::Transformation);
    let em = get(FeatureClass::Emulation);
    assert!((tr.feature_coverage_pct - 22.2).abs() < 0.2, "{}", tr.feature_coverage_pct);
    assert!((xf.feature_coverage_pct - 66.7).abs() < 0.2, "{}", xf.feature_coverage_pct);
    assert!((em.feature_coverage_pct - 33.3).abs() < 0.2, "{}", em.feature_coverage_pct);
    assert!(tr.queries_affected_pct < 1.0, "{}", tr.queries_affected_pct);
    assert!((xf.queries_affected_pct - 4.0).abs() < 1.5, "{}", xf.queries_affected_pct);
    assert!((em.queries_affected_pct - 79.1).abs() < 2.0, "{}", em.queries_affected_pct);
}
