//! Deterministic chaos-soak harness: dozens of concurrent Hyper-Q sessions
//! driven through seeded connection kills and gateway overload, asserting
//! **zero state divergence** against a fault-free baseline run.
//!
//! The invariant under test is the session-continuity contract of
//! `core::recover`: a `ConnectionLost` anywhere in the pipeline must be
//! invisible to the client (replay-safe statements), or surface exactly one
//! clean error (open transactions), and must never corrupt target-side
//! session state (settings, GTT instances, emulation temps).
//!
//! Every schedule is seeded and deterministic: the same config produces the
//! same per-session statement scripts and the same kill cadence, so a
//! failure reproduces byte-for-byte.
//!
//! The CI-bounded config runs in seconds; the full soak is `#[ignore]`d —
//! run it with `cargo test --test soak -- --ignored`.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan, FaultScope};
use hyperq::core::backend::BackendErrorKind;
use hyperq::core::{
    Backend, CacheConfig, HyperQBuilder, ObsContext, TranslationCache, TXN_ABORT_MESSAGE,
};
use hyperq::engine::EngineDb;
use hyperq::wire::{AdmissionConfig, Client, Gateway, GatewayConfig};

/// Knobs of one soak run. Same config ⇒ same scripts, same kill schedule.
#[derive(Clone, Copy)]
struct SoakConfig {
    sessions: usize,
    rounds: usize,
    seed: u64,
}

/// Tiny splitmix-style generator: deterministic statement mix per session,
/// identical between the baseline and chaos runs.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const RECURSIVE_REPORTS: &str = "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
     SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
     UNION ALL \
     SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
     WHERE REPORTS.EMPNO = EMP.MGRNO ) \
   SELECT EMPNO FROM REPORTS ORDER BY EMPNO";

/// Shared fixture: read-only tables every session queries, so concurrent
/// schedules stay deterministic (sessions write only to private tables).
fn seed_db() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SHARED_SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    db.execute_sql(
        "INSERT INTO SHARED_SALES VALUES (1, 500), (1, 200), (2, 300), (3, 700), (3, 50)",
    )
    .unwrap();
    db.execute_sql("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)").unwrap();
    db.execute_sql("INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)").unwrap();
    db
}

/// The deterministic statement schedule of session `i`: private-table DML,
/// a journaled session setting, GTT materialization and reuse, shared-table
/// reads, and recursive-query emulation — every feature with target-side
/// session state.
fn script_for(i: usize, cfg: SoakConfig) -> Vec<String> {
    let mut rng = Lcg::new(cfg.seed ^ (i as u64).wrapping_mul(0x5851F42D4C957F2D));
    let mut stmts = vec![
        format!("CREATE TABLE S{i}_LOG (N INTEGER, V INTEGER)"),
        "SET SESSION DATEFORM = 'ANSIDATE'".to_string(),
        format!("CREATE GLOBAL TEMPORARY TABLE SCRATCH{i} (K INTEGER, V INTEGER)"),
        format!("INS SCRATCH{i} (0, {})", i * 7),
    ];
    for r in 0..cfg.rounds {
        stmts.push(format!("INSERT INTO S{i}_LOG VALUES ({r}, {})", i * 1000 + r));
        match rng.next() % 4 {
            0 => stmts.push(format!("SEL COUNT(*) FROM S{i}_LOG")),
            1 => stmts.push(
                "SEL STORE, SUM(AMOUNT) FROM SHARED_SALES GROUP BY STORE ORDER BY STORE"
                    .to_string(),
            ),
            2 => {
                stmts.push(format!("INS SCRATCH{i} ({}, {})", r + 1, rng.next() % 100));
                stmts.push(format!("SEL SUM(V) FROM SCRATCH{i}"));
            }
            _ => stmts.push(RECURSIVE_REPORTS.to_string()),
        }
    }
    stmts.push(format!("SEL N, V FROM S{i}_LOG ORDER BY N"));
    stmts
}

/// Render the client-visible outcome of one statement. Only what a client
/// observes goes in — timings and sql_sent legitimately differ under chaos
/// (replays), results must not.
fn render(outcome: Result<hyperq::core::StatementOutcome, hyperq::core::HyperQError>) -> String {
    match outcome {
        Ok(o) => {
            let cols: Vec<&str> =
                o.result.schema.fields.iter().map(|f| f.name.as_str()).collect();
            format!("ok cols={cols:?} rows={:?} count={}", o.result.rows, o.result.row_count)
        }
        Err(e) => format!("err {e}"),
    }
}

fn run_session(
    backend: Arc<dyn Backend>,
    script: &[String],
    obs: &Arc<ObsContext>,
    cache: Option<&Arc<TranslationCache>>,
) -> Vec<String> {
    let builder = HyperQBuilder::for_target(backend, hyperq::core::targets::simwh()).obs(Arc::clone(obs));
    let builder = match cache {
        Some(c) => builder.shared_cache(Arc::clone(c)),
        None => builder.no_cache(),
    };
    let mut hq = builder.build();
    script.iter().map(|stmt| render(hq.run_one(stmt))).collect()
}

/// Replace per-session name suffixes (`_S<id>` from `SessionState` ids) with
/// `_S#` so baseline and chaos snapshots compare despite different ids.
fn normalize(name: &str) -> String {
    let bytes = name.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'_'
            && i + 2 < bytes.len() + 1
            && bytes.get(i + 1) == Some(&b'S')
            && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
        {
            let mut j = i + 2;
            while bytes.get(j).is_some_and(u8::is_ascii_digit) {
                j += 1;
            }
            out.push_str("_S#");
            i = j;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Full target-side state: every table's rows (sorted) under normalized
/// names, plus the target session parameters.
fn state_snapshot(db: &EngineDb) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    for t in db.table_names() {
        let dump = db.execute_sql(&format!("SELECT * FROM {t}")).expect("state dump");
        let mut rows: Vec<String> = dump.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        out.insert(normalize(&t), rows);
    }
    out.insert(
        "<session-params>".to_string(),
        db.session_params().iter().map(|(k, v)| format!("{k}={v}")).collect(),
    );
    out
}

/// Per-session client transcripts plus the final (normalized) backend state.
type RunOutput = (Vec<Vec<String>>, BTreeMap<String, Vec<String>>, u64, u64, u64);

/// One full soak run: all sessions concurrently, optional per-session kill
/// schedule, optionally one translation cache shared across all sessions
/// (the gateway topology). Returns (per-session transcripts, final state,
/// faults injected, recoveries completed, cache hits).
fn soak_run(cfg: SoakConfig, chaos: bool) -> RunOutput {
    soak_run_with(cfg, chaos, false)
}

fn soak_run_with(cfg: SoakConfig, chaos: bool, shared_cache: bool) -> RunOutput {
    let db = seed_db();
    let obs = ObsContext::new();
    let cache = shared_cache
        .then(|| Arc::new(TranslationCache::new(CacheConfig::default(), &obs)));
    let mut transcripts = Vec::new();
    let mut kills = 0;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|i| {
                let db = Arc::clone(&db);
                let obs = Arc::clone(&obs);
                let cache = cache.clone();
                let script = script_for(i, cfg);
                s.spawn(move || {
                    if chaos {
                        // Kill cadence varies per session; `IdempotentOnly`
                        // keeps every injected kill transparently
                        // recoverable, which is what "zero divergence"
                        // asserts. Period ≥ 3 so a replayed setting plus the
                        // re-issued statement never land on the next tick.
                        let period = 3 + (i as u64 % 4);
                        let fault = FaultInjectingBackend::wrap(
                            db as Arc<dyn Backend>,
                            FaultPlan::kill_every(period)
                                .with_scope(FaultScope::IdempotentOnly),
                        );
                        let t = run_session(
                            Arc::clone(&fault) as Arc<dyn Backend>,
                            &script,
                            &obs,
                            cache.as_ref(),
                        );
                        (t, fault.injected_faults())
                    } else {
                        (run_session(db as Arc<dyn Backend>, &script, &obs, cache.as_ref()), 0)
                    }
                })
            })
            .collect();
        for h in handles {
            let (t, k) = h.join().unwrap();
            transcripts.push(t);
            kills += k;
        }
    });
    let recoveries = obs.metrics.counter_value("hyperq_recovery_success_total", &[]);
    let hits = obs.metrics.counter_value("hyperq_cache_hits_total", &[]);
    (transcripts, state_snapshot(&db), kills, recoveries, hits)
}

fn assert_zero_divergence(cfg: SoakConfig) {
    let (base_t, base_s, _, _, _) = soak_run(cfg, false);
    let (chaos_t, chaos_s, kills, recoveries, _) = soak_run(cfg, true);
    assert!(kills > 0, "soak must actually inject kills");
    assert!(recoveries > 0, "kills must drive the recovery path");
    for (i, (b, c)) in base_t.iter().zip(chaos_t.iter()).enumerate() {
        assert_eq!(b, c, "session {i}: chaos transcript diverged from baseline");
    }
    assert_eq!(base_s, chaos_s, "final target state diverged");
}

#[test]
fn soak_chaos_run_matches_fault_free_baseline() {
    // CI-bounded: finishes in seconds while still covering every statement
    // class and several kills per session.
    assert_zero_divergence(SoakConfig { sessions: 8, rounds: 6, seed: 0xC0FFEE });
}

/// The translation cache under chaos: a cache-off fault-free baseline
/// versus a chaos run where every session shares one cache (the gateway
/// topology). Kills, recoveries and warm hits all fire, and neither the
/// client transcripts nor the final target state may diverge.
#[test]
fn cache_enabled_chaos_soak_matches_cache_off_baseline() {
    let cfg = SoakConfig { sessions: 8, rounds: 6, seed: 0xCAC4E };
    let (base_t, base_s, _, _, _) = soak_run_with(cfg, false, false);
    let (chaos_t, chaos_s, kills, recoveries, hits) = soak_run_with(cfg, true, true);
    assert!(kills > 0, "soak must actually inject kills");
    assert!(recoveries > 0, "kills must drive the recovery path");
    assert!(hits > 0, "the shared cache must serve warm hits during the soak");
    for (i, (b, c)) in base_t.iter().zip(chaos_t.iter()).enumerate() {
        assert_eq!(b, c, "session {i}: cached chaos transcript diverged from cache-off baseline");
    }
    assert_eq!(base_s, chaos_s, "final target state diverged");
}

#[test]
#[ignore = "full chaos soak; run with: cargo test --test soak -- --ignored"]
fn soak_full_chaos_many_sessions() {
    assert_zero_divergence(SoakConfig { sessions: 24, rounds: 20, seed: 0xDEC0DE });
    assert_zero_divergence(SoakConfig { sessions: 32, rounds: 12, seed: 7 });
}

/// Self-healing replica soak: the same concurrent session schedules as the
/// recovery soak, but served by a three-replica set where one replica dies
/// on a seeded kill schedule and another is hard-down for the whole run.
/// The replication layer must mask every fault (client transcripts
/// byte-identical to a fault-free single-backend baseline), and after the
/// links heal the background prober must drain every write-repair journal
/// so all three replica states converge to the baseline state.
#[test]
fn replica_kill_soak_matches_single_backend_baseline_and_converges() {
    use hyperq::core::resilience::{ResilienceConfig, RetryPolicy};
    use hyperq::core::{ReplicaConfig, ReplicatedBackend};

    let cfg = SoakConfig { sessions: 6, rounds: 5, seed: 0x5EED5 };

    // ---- fault-free single-backend baseline ----
    let base_db = seed_db();
    let base_obs = ObsContext::new();
    let baseline: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|i| {
                let db = Arc::clone(&base_db);
                let obs = Arc::clone(&base_obs);
                let script = script_for(i, cfg);
                s.spawn(move || run_session(db as Arc<dyn Backend>, &script, &obs, None))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let base_state = state_snapshot(&base_db);

    // ---- chaos: three identically seeded replicas, two of them faulty ----
    let dbs: Vec<Arc<EngineDb>> = (0..3).map(|_| seed_db()).collect();
    let injectors: Vec<Arc<FaultInjectingBackend>> = dbs
        .iter()
        .map(|db| FaultInjectingBackend::wrap(Arc::clone(db) as Arc<dyn Backend>, FaultPlan::none()))
        .collect();
    // r1 dies on a seeded schedule and recovers when it runs out; r2 is
    // hard-down for the whole run. Every injected kill fires before the
    // inner engine executes, so a killed replica missed the statement
    // entirely and journal replay is exact: reads fail over (and may
    // retry — they are idempotent), killed broadcast writes fence the
    // replica and land in its repair journal. The scripts run no
    // transactions, so the default all-calls scope kills reads and writes
    // alike.
    injectors[1].set_plan(FaultPlan::seeded_kills(cfg.seed, 0.12, 400));
    injectors[2].set_plan(FaultPlan::always_fail(BackendErrorKind::ConnectionLost));
    let obs = ObsContext::new();
    let rep = Arc::new(
        ReplicatedBackend::with_config(
            injectors.iter().map(|f| Arc::clone(f) as Arc<dyn Backend>).collect(),
            ReplicaConfig {
                probe_interval: Duration::from_millis(20),
                journal_capacity: 4096,
                resilience: Some(ResilienceConfig {
                    retry: RetryPolicy {
                        max_attempts: 2,
                        base_backoff: Duration::from_millis(1),
                        ..Default::default()
                    },
                    ..Default::default()
                }),
                ..Default::default()
            },
            &obs,
        )
        .unwrap(),
    );
    let prober = rep.spawn_prober();
    let transcripts: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.sessions)
            .map(|i| {
                let rep = Arc::clone(&rep);
                let obs = Arc::clone(&obs);
                let script = script_for(i, cfg);
                s.spawn(move || run_session(rep as Arc<dyn Backend>, &script, &obs, None))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every client saw exactly the fault-free bytes.
    for (i, (b, c)) in baseline.iter().zip(transcripts.iter()).enumerate() {
        assert_eq!(b, c, "session {i}: replicated chaos transcript diverged from baseline");
    }

    // Heal the links and let the background prober drain the journals.
    injectors[1].set_plan(FaultPlan::none());
    injectors[2].set_plan(FaultPlan::none());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while rep.healthy_replicas() < 3 {
        assert!(
            std::time::Instant::now() < deadline,
            "prober never healed the replica set: {:?}",
            rep.snapshot()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(prober);

    let snaps = rep.snapshot();
    for snap in &snaps {
        assert_eq!(snap.journal_depth, 0, "journal leak on {}: {snaps:?}", snap.name);
    }
    assert!(snaps.iter().map(|s| s.fences).sum::<u64>() >= 1, "soak must fence a replica");
    assert!(snaps.iter().map(|s| s.heals).sum::<u64>() >= 1, "soak must heal a replica");
    assert_eq!(rep.divergences(), 0, "identical replicas must never diverge");
    for (i, db) in dbs.iter().enumerate() {
        assert_eq!(
            state_snapshot(db),
            base_state,
            "replica r{i} state diverged from the fault-free baseline"
        );
    }
}

/// Losing the transaction-pinned replica mid-transaction surfaces exactly
/// one 2631-style abort through the recovery layer, the session stays
/// usable, and a repair sweep re-converges the fenced replica.
#[test]
fn losing_pinned_replica_mid_transaction_aborts_once_then_recovers() {
    use hyperq::core::resilience::{ResilienceConfig, RetryPolicy};
    use hyperq::core::ReplicaConfig;

    let mk = || {
        let db = Arc::new(EngineDb::new());
        db.execute_sql("CREATE TABLE TXN_T (A INTEGER)").unwrap();
        let injector =
            FaultInjectingBackend::wrap(Arc::clone(&db) as Arc<dyn Backend>, FaultPlan::none());
        (db, injector)
    };
    let (db_a, inj_a) = mk();
    let (db_b, inj_b) = mk();
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(
        Arc::clone(&inj_a) as Arc<dyn Backend>,
        hyperq::core::targets::simwh(),
    )
    .replicas(
        vec![Arc::clone(&inj_b) as Arc<dyn Backend>],
        ReplicaConfig {
            probe_interval: Duration::ZERO,
            resilience: Some(ResilienceConfig {
                retry: RetryPolicy { max_attempts: 1, ..Default::default() },
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .obs(Arc::clone(&obs))
    .build();
    let rep = Arc::clone(hq.replication().expect("builder must assemble the replica set"));

    hq.run_one("BT").unwrap();
    hq.run_one("INS TXN_T (1)").unwrap();
    let pinned = rep.pinned_replica().expect("in-transaction statements must pin a replica");
    let pinned_injector = if pinned == "r0" { &inj_a } else { &inj_b };
    pinned_injector
        .set_plan(FaultPlan::always_fail(BackendErrorKind::ConnectionLost));

    // One clean abort: the pinned replica is gone, so the open transaction
    // cannot be transparently moved to a peer.
    let err = hq.run_one("INS TXN_T (2)").unwrap_err().to_string();
    assert!(err.contains(TXN_ABORT_MESSAGE), "expected a txn abort, got: {err}");
    assert!(rep.pinned_replica().is_none(), "the dead pin must be released");

    // The session is immediately usable (reads route to the survivor;
    // backend transactions are emulated in-tier, so the survivor applied
    // the broadcast before the pinned failure surfaced the abort) …
    let o = hq.run_one("SEL COUNT(*) FROM TXN_T").unwrap();
    assert_eq!(format!("{:?}", o.result.rows[0][0]), "Int(2)");

    // … and after the link heals, one repair sweep re-converges the
    // fenced replica with the survivor.
    pinned_injector.set_plan(FaultPlan::none());
    let report = rep.probe_and_repair();
    assert_eq!(report.healed, 1, "{report:?}");
    assert_eq!(rep.healthy_replicas(), 2);
    assert_eq!(state_snapshot(&db_a), state_snapshot(&db_b), "replicas must re-converge");
}

#[test]
fn in_transaction_kill_yields_single_txn_abort_wire_error() {
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE TXN_T (A INTEGER)").unwrap();
    // Kill every statement executed inside an open transaction.
    let fault = FaultInjectingBackend::wrap(
        Arc::clone(&db) as Arc<dyn Backend>,
        FaultPlan::kill_every(1).with_scope(FaultScope::InTransactionOnly),
    );
    let handle = Gateway::spawn(fault as Arc<dyn Backend>, GatewayConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr, "APP", "secret").unwrap();

    c.run("BT").unwrap();
    let err = c.run("INS TXN_T (1)").unwrap_err().to_string();
    assert!(err.contains("[2631]"), "txn abort must carry its own wire code: {err}");
    assert!(err.contains(TXN_ABORT_MESSAGE), "{err}");

    // Exactly one abort: the session is restored and immediately usable,
    // and the killed INSERT never reached the target.
    let rows = c.run("SEL COUNT(*) FROM TXN_T").unwrap();
    assert_eq!(format!("{:?}", rows[0].rows[0][0]), "Int(0)");
    c.run("INS TXN_T (2)").unwrap();
    let rows = c.run("SEL COUNT(*) FROM TXN_T").unwrap();
    assert_eq!(format!("{:?}", rows[0].rows[0][0]), "Int(1)");
    c.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn kill_during_recursion_cleanup_journals_orphan_and_reconnect_retires_it() {
    let db = seed_db();
    // First kill hits the recursion's work-table CTAS; second kills the
    // best-effort cleanup DROP — the classic double fault that used to
    // leave an orphaned temp name the next reconnect would resurrect.
    let fault = FaultInjectingBackend::wrap(
        Arc::clone(&db) as Arc<dyn Backend>,
        FaultPlan::kill_on_sql("WT_", 2),
    );
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&fault) as Arc<dyn Backend>, hyperq::core::targets::simwh()).obs(Arc::clone(&obs)).build();

    hq.run_one(RECURSIVE_REPORTS)
        .expect_err("CTAS and its cleanup were both killed");
    assert_eq!(hq.session.journal.pending_orphans(), 1, "failed cleanup must be journaled");

    // Heal the target except for one more kill on an ordinary statement:
    // the recovery it triggers must replay the orphan drop and retire it.
    fault.set_plan(FaultPlan::fail_n_then_succeed(1, BackendErrorKind::ConnectionLost));
    hq.run_one("SEL COUNT(*) FROM EMP").unwrap();
    assert_eq!(hq.session.journal.pending_orphans(), 0, "reconnect must retire the orphan");
    assert!(
        db.table_names().iter().all(|t| !t.starts_with("WT_") && !t.starts_with("TT_")),
        "no emulation temps may survive: {:?}",
        db.table_names()
    );
    assert!(obs.metrics.counter_value(
        "hyperq_recovery_replayed_entries_total",
        &[("kind", "orphan_temp")]
    ) >= 1);

    // A later recursive query over the same session works end to end.
    let o = hq.run_one(RECURSIVE_REPORTS).unwrap();
    assert_eq!(o.result.rows.len(), 4);
}

#[test]
fn overload_soak_sheds_cleanly_and_serves_survivors_identically() {
    let db = seed_db();
    let handle = Gateway::spawn(
        Arc::clone(&db) as Arc<dyn Backend>,
        GatewayConfig {
            max_connections: 3,
            admission: Some(AdmissionConfig {
                connection_queue: 2,
                admission_timeout: Duration::from_millis(300),
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();

    // A thundering herd twice the gateway's total headroom, released at
    // once. Admitted sessions hold their slot past the admission timeout so
    // the shed set is deterministic in size.
    let clients = 10;
    let barrier = Arc::new(Barrier::new(clients));
    let addr = handle.addr;
    let results: Vec<Result<Vec<String>, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    let mut c = Client::connect(addr, "APP", "secret")
                        .map_err(|e| e.to_string())?;
                    let mut transcript = Vec::new();
                    for _ in 0..3 {
                        let rows = c
                            .run("SEL STORE, SUM(AMOUNT) FROM SHARED_SALES \
                                  GROUP BY STORE ORDER BY STORE")
                            .map_err(|e| e.to_string())?;
                        transcript.push(format!("{rows:?}"));
                    }
                    std::thread::sleep(Duration::from_millis(450));
                    c.logoff().map_err(|e| e.to_string())?;
                    Ok(transcript)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let served: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let shed: Vec<_> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(served.len() >= 3, "the capacity's worth of sessions must be served");
    assert!(!shed.is_empty(), "overload must shed some of the herd");
    for e in &shed {
        assert!(
            e.contains("[3135]") || e.contains("[3136]"),
            "shed errors must carry an admission code, got: {e}"
        );
    }
    // Every served session saw byte-identical results — overload shedding
    // never corrupts admitted sessions. An unloaded client afterwards gets
    // the same bytes, pinning the shared baseline.
    let mut solo = Client::connect(addr, "APP", "secret").unwrap();
    let baseline = format!(
        "{:?}",
        solo.run("SEL STORE, SUM(AMOUNT) FROM SHARED_SALES GROUP BY STORE ORDER BY STORE")
            .unwrap()
    );
    solo.logoff().unwrap();
    for t in &served {
        assert_eq!(t.len(), 3);
        for one in *t {
            assert_eq!(one, &baseline);
        }
    }
    handle.shutdown();
}

/// Backend wrapper for the cancel soak: statements touching the
/// `SLOW_EVENTS` marker table stall long enough for aborts and deadlines to
/// land mid-flight; everything else runs at full speed so survivor
/// schedules stay cheap and deterministic.
struct MarkerSlowBackend {
    inner: Arc<EngineDb>,
}

impl Backend for MarkerSlowBackend {
    fn name(&self) -> &str {
        "marker-slow-simwh"
    }

    fn execute(
        &self,
        sql: &str,
    ) -> Result<hyperq::core::backend::ExecResult, hyperq::core::backend::BackendError> {
        if sql.contains("SLOW_EVENTS") {
            std::thread::sleep(Duration::from_millis(200));
        }
        self.inner.execute(sql)
    }

    fn execute_ctx(
        &self,
        sql: &str,
        ctx: hyperq::core::backend::RequestContext,
    ) -> Result<hyperq::core::backend::ExecResult, hyperq::core::backend::BackendError> {
        if sql.contains("SLOW_EVENTS") {
            std::thread::sleep(Duration::from_millis(200));
        }
        self.inner.execute_ctx(sql, ctx)
    }

    fn table_meta(&self, name: &str) -> Option<hyperq::xtra::catalog::TableDef> {
        self.inner.table_meta(name)
    }

    fn reset_session(&self) -> Result<(), hyperq::core::backend::BackendError> {
        self.inner.reset_session()
    }
}

/// Seeded cancel/timeout/budget-kill soak over the wire: concurrent
/// sessions interleave survivor statements with scheduled kills (client
/// aborts, per-request deadlines, memory-budget trips). Every kill must
/// surface its one well-defined wire code, every survivor must produce
/// bytes identical to a kill-free baseline, and the run must end with zero
/// leaks: no emulation temps, an empty in-flight table, a drained memory
/// pool.
#[test]
fn cancel_soak_survivors_match_baseline_with_zero_leaks() {
    use hyperq::governor::GovernorConfig;

    fn seed_cancel_db() -> Arc<EngineDb> {
        let db = seed_db();
        db.execute_sql("CREATE TABLE SLOW_EVENTS (N INTEGER)").unwrap();
        db.execute_sql("INSERT INTO SLOW_EVENTS VALUES (1), (2)").unwrap();
        let vals: Vec<String> = (0..64).map(|i| format!("({i})")).collect();
        db.execute_sql("CREATE TABLE B64 (N INTEGER)").unwrap();
        db.execute_sql(&format!("INSERT INTO B64 VALUES {}", vals.join(", "))).unwrap();
        db
    }

    /// Survivor statement `r` of session `i` — read-only, so concurrent
    /// sessions cannot perturb each other's bytes.
    fn survivor_stmt(rng: &mut Lcg) -> String {
        match rng.next() % 3 {
            0 => "SEL COUNT(*) FROM SHARED_SALES".to_string(),
            1 => "SEL STORE, SUM(AMOUNT) FROM SHARED_SALES GROUP BY STORE ORDER BY STORE"
                .to_string(),
            _ => RECURSIVE_REPORTS.to_string(),
        }
    }

    let sessions = 6;
    let rounds = 5;
    let seed = 0xC0FFEE_u64;

    // ---- fault-free baseline: survivor statements only, plain gateway ----
    let base_db = seed_cancel_db();
    let base_handle =
        Gateway::spawn(Arc::clone(&base_db) as Arc<dyn Backend>, GatewayConfig::default())
            .unwrap();
    let mut baseline: Vec<Vec<String>> = Vec::new();
    for i in 0..sessions {
        let mut rng = Lcg::new(seed ^ (i as u64).wrapping_mul(0x5851F42D4C957F2D));
        let mut c = Client::connect(base_handle.addr, "APP", "secret").unwrap();
        let mut t = Vec::new();
        for _ in 0..rounds {
            t.push(format!("{:?}", c.run(&survivor_stmt(&mut rng)).unwrap()));
            rng.next(); // burn the kill-schedule draw so streams stay aligned
        }
        c.logoff().unwrap();
        baseline.push(t);
    }
    base_handle.shutdown();

    // ---- chaos run: same survivor schedule + seeded kills in between ----
    let db = seed_cancel_db();
    let tables_before = db.table_names();
    let backend = Arc::new(MarkerSlowBackend { inner: Arc::clone(&db) });
    let handle = Gateway::spawn(
        backend as Arc<dyn Backend>,
        GatewayConfig {
            governor: GovernorConfig { per_query_memory: 256 * 1024, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();

    let addr = handle.addr;
    let barrier = Arc::new(Barrier::new(sessions));
    let outcomes: Vec<(Vec<String>, [u32; 3])> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut rng =
                        Lcg::new(seed ^ (i as u64).wrapping_mul(0x5851F42D4C957F2D));
                    barrier.wait();
                    let mut c = Client::connect(addr, "APP", "secret").unwrap();
                    let mut transcript = Vec::new();
                    // kills seen per reason: [abort, deadline, budget]
                    let mut kills = [0u32; 3];
                    for _ in 0..rounds {
                        transcript
                            .push(format!("{:?}", c.run(&survivor_stmt(&mut rng)).unwrap()));
                        match rng.next() % 4 {
                            0 => {
                                let mut aborter = c.aborter().unwrap();
                                let killer = std::thread::spawn(move || {
                                    std::thread::sleep(Duration::from_millis(50));
                                    aborter.abort().unwrap();
                                });
                                let e = c
                                    .run("SEL COUNT(*) FROM SLOW_EVENTS")
                                    .unwrap_err()
                                    .to_string();
                                killer.join().unwrap();
                                assert!(e.contains("[3110]"), "abort kill: {e}");
                                kills[0] += 1;
                            }
                            1 => {
                                let e = c
                                    .run_timed(
                                        "SEL COUNT(*) FROM SLOW_EVENTS",
                                        Duration::from_millis(50),
                                    )
                                    .unwrap_err()
                                    .to_string();
                                assert!(e.contains("[3156]"), "deadline kill: {e}");
                                kills[1] += 1;
                            }
                            2 => {
                                let e = c
                                    .run("SEL A.N FROM B64 A, B64 B, B64 C")
                                    .unwrap_err()
                                    .to_string();
                                assert!(e.contains("[2646]"), "budget kill: {e}");
                                kills[2] += 1;
                            }
                            _ => {} // kill-free round
                        }
                    }
                    c.logoff().unwrap();
                    (transcript, kills)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut total = [0u32; 3];
    for (i, (transcript, kills)) in outcomes.iter().enumerate() {
        assert_eq!(
            transcript, &baseline[i],
            "session {i}: survivor bytes diverged from the kill-free baseline"
        );
        for r in 0..3 {
            total[r] += kills[r];
        }
    }
    assert!(
        total.iter().all(|&k| k > 0),
        "the seeded schedule must exercise every kill reason, got {total:?}"
    );

    // Zero leaks: no emulation temps on the target, no in-flight entries,
    // a fully drained memory pool.
    assert_eq!(db.table_names(), tables_before, "cancel soak leaked target-side tables");
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while handle.governor().inflight() != 0 || handle.governor().pool().used() != 0 {
        assert!(std::time::Instant::now() < deadline, "governor books did not drain");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
}
