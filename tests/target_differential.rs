//! Cross-target differential suite: the same application corpus, run
//! against every **executable** target profile, must produce
//! byte-identical client-visible transcripts — result schema, rows and
//! row counts — even though the SQL sent to each target differs by
//! design (that is the whole point of a target profile).
//!
//! The suite also pins the acceptance criterion for the reduced profile:
//! at least one emulation kind (`limit_fetch`) fires on `simwh-reduced`
//! on live corpus traffic and never fires on `simwh`.

use std::collections::BTreeSet;
use std::sync::Arc;

use hyperq::core::targets::{self, TargetProfile};
use hyperq::core::{Backend, EmulationKind, HyperQBuilder, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::workload::customer::{health, telco};
use hyperq::workload::tpch;

/// Session-scoped generated names embed the session id (`GTT_X_S7`,
/// `WT_S7_1`); each target runs in its own session, so normalize the id
/// before comparing transcripts.
fn scrub(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'_'
            && i + 1 < bytes.len()
            && bytes[i + 1] == b'S'
            && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
        {
            out.push_str("_S#");
            i += 2;
            while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Render everything the client would see from one statement — schema,
/// row count and every row — as comparable text. SQL-B is deliberately
/// excluded: it differs across targets.
fn client_view(r: &hyperq::core::StatementResult) -> String {
    let mut out = String::new();
    let fields: Vec<String> = r
        .result
        .schema
        .fields
        .iter()
        .map(|f| format!("{}:{:?}", f.name, f.ty))
        .collect();
    out.push_str(&format!("schema [{}]\n", fields.join(", ")));
    out.push_str(&format!("row_count {}\n", r.result.row_count));
    for row in &r.result.rows {
        let vals: Vec<String> =
            row.iter().map(hyperq::xtra::datum::Datum::to_sql_string).collect();
        out.push_str(&format!("  {}\n", vals.join(" | ")));
    }
    scrub(&out)
}

/// Run `setup` + `corpus` through a fresh pipeline per target and return
/// (per-statement client transcripts, emulation kinds that fired).
fn run_target(
    profile: TargetProfile,
    make_db: &dyn Fn() -> Arc<EngineDb>,
    setup: &[String],
    corpus: &[(String, String)],
) -> (Vec<(String, String)>, BTreeSet<EmulationKind>) {
    let db = make_db();
    let obs = ObsContext::new();
    let target = profile.name.clone();
    let mut hq = HyperQBuilder::for_target(db as Arc<dyn Backend>, profile)
        .obs(Arc::clone(&obs))
        .build();
    for s in setup {
        hq.run_script(s).unwrap_or_else(|e| panic!("[{target}] setup {s}: {e}"));
    }
    let mut transcript = Vec::new();
    for (name, sql) in corpus {
        let stmts = hq
            .run_script(sql)
            .unwrap_or_else(|e| panic!("[{target}] {name} failed: {e}"));
        let views: Vec<String> = stmts.iter().map(client_view).collect();
        transcript.push((name.clone(), views.join("---\n")));
    }
    let fired = EmulationKind::ALL
        .iter()
        .filter(|kind| {
            obs.metrics
                .counter_value("hyperq_emulation_requests_total", &[("kind", kind.as_str())])
                > 0
        })
        .copied()
        .collect();
    (transcript, fired)
}

/// Differential driver: baseline is the first executable profile
/// (`simwh`); every other executable profile must match it statement by
/// statement. Returns the per-target fired-emulation sets keyed by name.
fn assert_differential(
    make_db: &dyn Fn() -> Arc<EngineDb>,
    setup: &[String],
    corpus: &[(String, String)],
) -> Vec<(String, BTreeSet<EmulationKind>)> {
    let profiles = targets::executable();
    assert!(profiles.len() >= 2, "need at least two executable profiles");
    let mut fired_by_target = Vec::new();
    let mut baseline: Option<(String, Vec<(String, String)>)> = None;
    for profile in profiles {
        let name = profile.name.clone();
        let (transcript, fired) = run_target(profile, make_db, setup, corpus);
        match &baseline {
            None => baseline = Some((name.clone(), transcript)),
            Some((base_name, base)) => {
                for ((stmt, a), (_, b)) in base.iter().zip(transcript.iter()) {
                    assert_eq!(
                        a, b,
                        "{stmt}: client-visible transcript diverged between \
                         {base_name} and {name}"
                    );
                }
            }
        }
        fired_by_target.push((name, fired));
    }
    fired_by_target
}

#[test]
fn tpch_corpus_is_client_identical_across_executable_targets() {
    let make_db = || {
        let db = Arc::new(EngineDb::new());
        for ddl in tpch::ddl() {
            db.execute_sql(&ddl).unwrap();
        }
        for (table, rows) in tpch::generate(0.001, 42).tables() {
            db.load_rows(table, rows).unwrap();
        }
        db
    };
    let corpus: Vec<(String, String)> = tpch::queries()
        .into_iter()
        .map(|(n, sql)| (format!("Q{n}"), sql.to_string()))
        .collect();
    let fired = assert_differential(&make_db, &[], &corpus);

    // The acceptance criterion: the reduced profile exercises an
    // emulation path the default target never touches. TPC-H's top-level
    // `SEL TOP n` queries peel into LimitFetch on simwh-reduced, while
    // simwh spells them as LIMIT and never emulates.
    let kinds_of = |target: &str| -> &BTreeSet<EmulationKind> {
        &fired.iter().find(|(n, _)| n == target).unwrap().1
    };
    assert!(
        kinds_of("simwh-reduced").contains(&EmulationKind::LimitFetch),
        "simwh-reduced never fired limit_fetch on TPC-H: {:?}",
        kinds_of("simwh-reduced")
    );
    assert!(
        !kinds_of("simwh").contains(&EmulationKind::LimitFetch),
        "limit_fetch fired on the default target: {:?}",
        kinds_of("simwh")
    );
}

/// The request-level override: one session, built for `simwh`, serves a
/// single request for `simwh-reduced` — the reduced spellings apply to
/// that request only, an unknown name is a clean error, and the
/// session's own profile is untouched afterwards.
#[test]
fn request_level_target_override_is_scoped_to_the_request() {
    use hyperq::core::Request;
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    let mut hq =
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, targets::simwh()).build();

    let sql = "SEL STORE FROM SALES WHERE STORE MOD 3 = 1";
    let native = hq.run_one(sql).unwrap().sql_sent;
    assert!(native[0].contains('%'), "{native:?}");

    let overridden = hq.run(Request::script(sql).target("simwh-reduced")).unwrap();
    let sent = &overridden.statements[0].sql_sent;
    assert!(sent[0].contains("MOD("), "override must serialize reduced-flavor SQL: {sent:?}");
    assert_eq!(hq.target(), "simwh", "override must not stick to the session");
    assert_eq!(hq.run_one(sql).unwrap().sql_sent, native);

    let err = hq.run(Request::script(sql).target("no-such-target")).unwrap_err();
    assert!(err.to_string().contains("unknown target profile"), "{err}");
}

/// The gateway resolves its dialect from `GatewayConfig::target`: a
/// wire client against a `simwh-reduced` gateway gets the same answers,
/// served through the reduced dialect; an unregistered name falls back
/// to `simwh` and bumps the fallback counter instead of failing boot.
#[test]
fn gateway_config_selects_the_target_profile() {
    use hyperq::wire::{Client, Gateway, GatewayConfig};
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SALES VALUES (1, 10), (2, 25), (3, 31)").unwrap();

    let config = GatewayConfig { target: "simwh-reduced".to_string(), ..Default::default() };
    let handle = Gateway::spawn(Arc::clone(&db) as Arc<dyn Backend>, config).unwrap();
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let rows = client.run("SEL TOP 2 STORE FROM SALES ORDER BY AMOUNT DESC").unwrap();
    assert_eq!(rows[0].rows.len(), 2, "LimitFetch emulation must bound the result");
    client.logoff().unwrap();
    handle.shutdown();

    // An unregistered name: boot succeeds on the simwh fallback, and the
    // fallback counter (on the gateway's global context) records it.
    let global = ObsContext::global();
    let before = global.metrics.counter_value("hyperq_wire_unknown_target_total", &[]);
    let bad = GatewayConfig { target: "not-a-target".to_string(), ..Default::default() };
    let handle = Gateway::spawn(Arc::clone(&db) as Arc<dyn Backend>, bad).unwrap();
    assert_eq!(
        global.metrics.counter_value("hyperq_wire_unknown_target_total", &[]),
        before + 1
    );
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    let rows = client.run("SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(rows[0].rows.len(), 1);
    client.logoff().unwrap();
    handle.shutdown();
}

#[test]
fn customer_corpora_are_client_identical_across_executable_targets() {
    for w in [health(0.05), telco(0.02)] {
        let ddl = w.target_ddl.clone();
        let make_db = move || {
            let db = Arc::new(EngineDb::new());
            for stmt in &ddl {
                db.execute_sql(stmt).unwrap();
            }
            db
        };
        let corpus: Vec<(String, String)> = w
            .distinct
            .iter()
            .enumerate()
            .map(|(i, sql)| (format!("{}#{i}", w.profile.name), sql.clone()))
            .collect();
        assert_differential(&make_db, &w.hyperq_setup, &corpus);
    }
}
