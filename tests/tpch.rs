//! TPC-H through the full stack: Teradata-dialect queries via Hyper-Q,
//! executed on the SimWH engine over generated data.

use std::sync::Arc;

use hyperq::core::{Backend, HyperQBuilder};
use hyperq::engine::EngineDb;
use hyperq::workload::tpch;

/// Tiny scale for test speed; the benchmark harness uses larger factors.
const SCALE: f64 = 0.002;

fn load() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(SCALE, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    db
}

#[test]
fn all_22_queries_run_through_hyperq() {
    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    for (n, sql) in tpch::queries() {
        let outcome = hq
            .run_one(sql)
            .unwrap_or_else(|e| panic!("Q{n} failed: {e}"));
        // Every query is an analytical SELECT: it must produce a schema.
        assert!(
            !outcome.result.schema.is_empty(),
            "Q{n} produced no result schema"
        );
        assert!(
            outcome.timings.translation.as_nanos() > 0,
            "Q{n} recorded no translation time"
        );
    }
}

#[test]
fn q1_aggregates_are_plausible() {
    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let o = hq.run_one(tpch::query(1)).unwrap();
    // Four flag/status groups at most (R/F, A/F, N/O, N/F).
    assert!((1..=4).contains(&o.result.rows.len()), "{:?}", o.result.rows.len());
    // COUNT_ORDER column (last) sums to the number of lineitems within the
    // date filter — which is nearly all of them.
    let total: i64 = o
        .result
        .rows
        .iter()
        .map(|r| r.last().unwrap().to_i64().unwrap())
        .sum();
    let lineitems = db.execute_sql("SELECT COUNT(*) FROM LINEITEM").unwrap().rows[0][0]
        .to_i64()
        .unwrap();
    assert!(total > 0 && total <= lineitems);
}

#[test]
fn q6_revenue_matches_direct_engine_execution() {
    // The virtualized result must be identical to running the equivalent
    // ANSI query directly on the target.
    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let via_hyperq = hq.run_one(tpch::query(6)).unwrap();
    let direct = db
        .execute_sql(
            "SELECT SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS REVENUE FROM LINEITEM \
             WHERE L_SHIPDATE >= DATE '1994-01-01' \
             AND L_SHIPDATE < (DATE '1994-01-01' + INTERVAL '1' YEAR) \
             AND L_DISCOUNT BETWEEN 0.05 AND 0.07 AND L_QUANTITY < 24",
        )
        .unwrap();
    assert_eq!(via_hyperq.result.rows, direct.rows);
}

#[test]
fn q4_exists_decorrelation_gives_same_answer_as_naive() {
    // Compare the optimized EXISTS path against a manual semi-join-free
    // formulation (IN over DISTINCT keys).
    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let q4 = hq.run_one(tpch::query(4)).unwrap();
    let manual = db
        .execute_sql(
            "SELECT O_ORDERPRIORITY, COUNT(*) AS ORDER_COUNT FROM ORDERS \
             WHERE O_ORDERDATE >= DATE '1993-07-01' \
             AND O_ORDERDATE < (DATE '1993-07-01' + INTERVAL '3' MONTH) \
             AND O_ORDERKEY IN (SELECT DISTINCT L_ORDERKEY FROM LINEITEM \
                                WHERE L_COMMITDATE < L_RECEIPTDATE) \
             GROUP BY O_ORDERPRIORITY ORDER BY O_ORDERPRIORITY",
        )
        .unwrap();
    assert_eq!(q4.result.rows, manual.rows);
}

#[test]
fn q21_anti_join_consistency() {
    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let o = hq.run_one(tpch::query(21)).unwrap();
    // Sanity: counts positive, sorted descending.
    let counts: Vec<i64> = o
        .result
        .rows
        .iter()
        .map(|r| r[1].to_i64().unwrap())
        .collect();
    for w in counts.windows(2) {
        assert!(w[0] >= w[1], "NUMWAIT must be sorted descending: {counts:?}");
    }
}

#[test]
fn tpch_features_tracked() {
    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let o1 = hq.run_one(tpch::query(1)).unwrap();
    assert!(o1.features.contains(hyperq::xtra::Feature::KeywordShortcut));
    assert!(o1.features.contains(hyperq::xtra::Feature::OrdinalGroupBy));
    assert!(o1.features.contains(hyperq::xtra::Feature::DateArithmetic));
}

#[test]
fn q1_matches_direct_rust_computation() {
    // Correctness anchor: recompute Q1's aggregates in plain Rust from the
    // generated rows and compare with the full-stack result.
    use hyperq::xtra::datum::{parse_date, Datum};
    use std::collections::BTreeMap;

    let data = hyperq::workload::tpch::generate(SCALE, 1234);
    let cutoff = parse_date("1998-12-01").unwrap() - 90;

    #[derive(Default)]
    struct Acc {
        qty: i128,          // scale 2
        base: i128,         // scale 2
        disc_price: i128,   // scale 4 (price*(1-disc))
        count: i64,
    }
    let mut groups: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for row in &data.lineitem {
        let Datum::Date(shipdate) = row[10] else {
            panic!();
        };
        if shipdate > cutoff {
            continue;
        }
        let flag = row[8].to_sql_string();
        let status = row[9].to_sql_string();
        let qty = match &row[4] {
            Datum::Dec(d) => d.rescale(2).mantissa,
            _ => panic!(),
        };
        let price = match &row[5] {
            Datum::Dec(d) => d.rescale(2).mantissa,
            _ => panic!(),
        };
        let disc = match &row[6] {
            Datum::Dec(d) => d.rescale(2).mantissa, // 0.00..0.10 → cents
            _ => panic!(),
        };
        let acc = groups.entry((flag, status)).or_default();
        acc.qty += qty;
        acc.base += price;
        acc.disc_price += price * (100 - disc); // scale 2+2 = 4
        acc.count += 1;
    }

    let db = load();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let o = hq.run_one(tpch::query(1)).unwrap();
    assert_eq!(o.result.rows.len(), groups.len());
    for row in &o.result.rows {
        let key = (row[0].to_sql_string(), row[1].to_sql_string());
        let acc = groups.get(&key).unwrap_or_else(|| panic!("group {key:?}"));
        let sum_qty = match &row[2] {
            Datum::Dec(d) => d.rescale(2).mantissa,
            other => panic!("{other:?}"),
        };
        assert_eq!(sum_qty, acc.qty, "SUM_QTY for {key:?}");
        let sum_base = match &row[3] {
            Datum::Dec(d) => d.rescale(2).mantissa,
            other => panic!("{other:?}"),
        };
        assert_eq!(sum_base, acc.base, "SUM_BASE_PRICE for {key:?}");
        let sum_disc = match &row[4] {
            Datum::Dec(d) => d.rescale(4).mantissa,
            other => panic!("{other:?}"),
        };
        assert_eq!(sum_disc, acc.disc_price, "SUM_DISC_PRICE for {key:?}");
        assert_eq!(row[9].to_i64().unwrap(), acc.count, "COUNT_ORDER for {key:?}");
        // AVG_QTY = SUM_QTY / COUNT within rounding.
        let avg_qty = row[6].to_f64().unwrap();
        let expect = acc.qty as f64 / 100.0 / acc.count as f64;
        assert!((avg_qty - expect).abs() < 0.01, "AVG_QTY {avg_qty} vs {expect}");
    }

    // The same result must arrive bit-identically over the wire protocol.
    let handle = hyperq::wire::Gateway::spawn(
        Arc::clone(&db) as Arc<dyn Backend>,
        hyperq::wire::GatewayConfig::default(),
    )
    .unwrap();
    let mut client = hyperq::wire::Client::connect(handle.addr, "APP", "secret").unwrap();
    let over_wire = client.run(tpch::query(1)).unwrap();
    assert_eq!(over_wire[0].rows.len(), o.result.rows.len());
    for (a, b) in over_wire[0].rows.iter().zip(o.result.rows.iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (Datum::Dec(p), Datum::Dec(q)) => assert_eq!(p, q),
                _ => assert_eq!(x.to_sql_string(), y.to_sql_string()),
            }
        }
    }
    handle.shutdown();
}
