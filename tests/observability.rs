//! End-to-end observability: a TPC-H query through the full pipeline must
//! leave a complete trail — one span and one histogram observation per
//! stage, rewrite-rule counters, a parseable Prometheus snapshot, and a
//! slow-query capture when the threshold is crossed.

use std::sync::Arc;
use std::time::Duration;

use hyperq::core::{Backend, HyperQ, HyperQBuilder, ObsContext, STAGE_DURATION_METRIC};
use hyperq::engine::EngineDb;
use hyperq::wire::convert::{convert_traced, ConverterConfig};
use hyperq::workload::tpch;

const SCALE: f64 = 0.002;

fn load() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(SCALE, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    db
}

fn session(obs: &Arc<ObsContext>) -> HyperQ {
    let db = load();
    HyperQBuilder::for_target(db as Arc<dyn Backend>, hyperq::core::targets::simwh()).obs(Arc::clone(obs)).build()
}

/// The acceptance path: translate and execute TPC-H Q1, convert its result,
/// and check the whole pipeline reported itself.
#[test]
fn tpch_q1_emits_one_span_and_histogram_per_stage() {
    let obs = ObsContext::new();
    let mut hq = session(&obs);
    let outcome = hq.run_one(tpch::query(1)).unwrap();
    let trace = outcome.trace_id.expect("run_one must stamp a trace id");

    // Result conversion joins the same trace (the wire layer's stage).
    convert_traced(
        &outcome.result.schema,
        &outcome.result.rows,
        &ConverterConfig::default(),
        &obs,
        Some(trace),
    )
    .unwrap();

    let spans = obs.traces.spans_for(trace);
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    for stage in ["parse", "bind", "transform", "serialize", "execute", "convert"] {
        assert_eq!(count(stage), 1, "stage {stage} must emit exactly one span");
    }
    assert_eq!(count("statement"), 1, "exactly one root span");
    let root = spans.iter().find(|s| s.name == "statement").unwrap();
    for stage in ["parse", "bind", "transform", "serialize", "execute"] {
        let s = spans.iter().find(|s| s.name == stage).unwrap();
        assert_eq!(s.parent, Some(root.span), "{stage} must hang off the root");
    }

    // Each stage histogram saw exactly this statement.
    for stage in ["parse", "bind", "transform", "serialize", "execute", "convert"] {
        let h = obs
            .metrics
            .histogram(STAGE_DURATION_METRIC, &[("stage", stage)]);
        assert_eq!(h.count(), 1, "stage {stage} histogram must have one sample");
    }
    assert_eq!(
        obs.metrics
            .counter_value("hyperq_statements_total", &[("outcome", "ok")]),
        1
    );

    // Q1's Teradata-isms (date arithmetic, ordinal ORDER BY) must have
    // fired at least one rewrite rule.
    let fired: Vec<&str> = obs
        .metrics
        .render_prometheus()
        .lines()
        .filter(|l| {
            l.starts_with("hyperq_transform_rule_total{")
                && l.contains("outcome=\"fired\"")
                && !l.ends_with(" 0")
        })
        .map(|_| "")
        .collect();
    assert!(
        !fired.is_empty(),
        "at least one transform rule must report fired > 0:\n{}",
        obs.metrics.render_prometheus()
    );

    // The exposition names every stage series.
    let prom = obs.metrics.render_prometheus();
    for stage in ["parse", "bind", "transform", "serialize", "execute", "convert"] {
        let series = format!("hyperq_stage_duration_seconds_count{{stage=\"{stage}\"}} 1");
        assert!(prom.contains(&series), "missing {series} in:\n{prom}");
    }

    // The backend wrapper saw the round-trip and the returned rows.
    assert!(
        obs.metrics
            .counter_value("hyperq_backend_requests_total", &[("backend", "SimWH")])
            >= 1
    );
    assert_eq!(
        obs.metrics
            .counter_value("hyperq_backend_rows_total", &[("backend", "SimWH")]),
        outcome.result.row_count
    );
}

/// The static-analysis layer reports through the same registry: every
/// statement crosses the bind and serializer validation boundaries, the
/// walks land in the shared stage-duration histogram, and an induced
/// violation surfaces in both the Prometheus and JSON expositions.
#[test]
fn validator_metrics_appear_in_exposition() {
    let obs = ObsContext::new();
    let mut hq = session(&obs);
    hq.run_one(tpch::query(1)).unwrap();

    for stage in ["bind", "serializer"] {
        assert_eq!(
            obs.metrics
                .counter_value("hyperq_validation_checks_total", &[("stage", stage)]),
            1,
            "stage {stage} must be checked once"
        );
    }
    let h = obs
        .metrics
        .histogram(STAGE_DURATION_METRIC, &[("stage", "validate")]);
    assert!(h.count() >= 2, "validation walks must record durations");

    // Induce a violation through the log-only analyzer: a plan whose
    // projection references a column its input does not produce.
    use hyperq::core::{AnalyzeMode, Analyzer};
    use hyperq::xtra::expr::ScalarExpr;
    use hyperq::xtra::rel::{Plan, RelExpr};
    use hyperq::xtra::schema::{Field, Schema};
    use hyperq::xtra::types::SqlType;
    let broken = Plan::Query(RelExpr::Project {
        input: Box::new(RelExpr::Get {
            table: "T".into(),
            alias: None,
            schema: Schema::new(vec![Field {
                qualifier: Some("T".into()),
                name: "A".into(),
                ty: SqlType::Integer,
                nullable: true,
            }]),
        }),
        exprs: vec![(
            ScalarExpr::Column {
                qualifier: None,
                name: "GHOST".into(),
                ty: SqlType::Integer,
            },
            "G".into(),
        )],
    });
    let analyzer = Analyzer::new(AnalyzeMode::LogOnly, &obs);
    analyzer.check_plan(&broken, "serializer").unwrap();

    let prom = obs.metrics.render_prometheus();
    assert!(
        prom.contains("hyperq_validation_violations_total{invariant=\"unresolved_column\"} 1"),
        "violation counter missing in:\n{prom}"
    );
    assert!(
        obs.metrics
            .render_json()
            .contains("\"hyperq_validation_violations_total\""),
        "violation counter missing from JSON exposition"
    );
}

/// Every line of the Prometheus exposition must parse: `# HELP`/`# TYPE`
/// comments or `name{labels} value` samples with a finite numeric value,
/// and cumulative bucket counts ending in the `+Inf` bucket equal to
/// `_count`.
#[test]
fn prometheus_snapshot_parses_line_by_line() {
    let obs = ObsContext::new();
    let mut hq = session(&obs);
    hq.run_one(tpch::query(1)).unwrap();
    hq.run_one("HELP SESSION").unwrap();

    let text = obs.metrics.render_prometheus();
    assert!(!text.is_empty());
    let mut inf_buckets: Vec<(String, f64)> = Vec::new();
    let mut counts: Vec<(String, f64)> = Vec::new();
    let mut last_bucket: Option<(String, f64)> = None;
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unknown comment: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line must be `series value`: {line}")
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in: {line}"));
        assert!(value.is_finite(), "{line}");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
        if name.ends_with("_bucket") {
            // Within one histogram the bucket counts are cumulative.
            if let Some((prev_series, prev_value)) = &last_bucket {
                let same_hist =
                    prev_series.split("le=\"").next() == series.split("le=\"").next();
                if same_hist && !prev_series.contains("le=\"+Inf\"") {
                    assert!(
                        value >= *prev_value,
                        "buckets must be cumulative: {line} after {prev_series} {prev_value}"
                    );
                }
            }
            if series.contains("le=\"+Inf\"") {
                inf_buckets.push((name.trim_end_matches("_bucket").into(), value));
            }
            last_bucket = Some((series.to_string(), value));
        } else if name.ends_with("_count") {
            counts.push((name.trim_end_matches("_count").into(), value));
        }
    }
    assert!(!inf_buckets.is_empty(), "histograms must render buckets");
    for (hist, inf) in &inf_buckets {
        let total: f64 = counts
            .iter()
            .filter(|(n, _)| n == hist)
            .map(|(_, v)| *v)
            .sum();
        assert!(*inf <= total, "+Inf bucket of {hist} exceeds its _count sum");
    }

    // The emulation fan-out shows up by kind.
    assert_eq!(
        obs.metrics
            .counter_value("hyperq_emulation_requests_total", &[("kind", "help")]),
        1
    );

    // And the JSON snapshot mirrors the same registry.
    let json = obs.metrics.render_json();
    assert!(json.contains("\"hyperq_statements_total\""), "{json}");
}

/// `run_script` gives every statement its own trace, and failures land in
/// the error counter while still closing the span tree.
#[test]
fn run_script_trace_ids_and_error_accounting() {
    let obs = ObsContext::new();
    let mut hq = session(&obs);
    let outcomes = hq
        .run_script("SEL COUNT(*) FROM REGION; SEL COUNT(*) FROM NATION")
        .unwrap();
    assert_eq!(outcomes.len(), 2);
    let a = outcomes[0].trace_id.unwrap();
    let b = outcomes[1].trace_id.unwrap();
    assert_ne!(a, b, "statements must get distinct traces");
    // First statement carries the script parse; the second has no parse
    // span of its own.
    assert_eq!(
        obs.traces
            .spans_for(a)
            .iter()
            .filter(|s| s.name == "parse")
            .count(),
        1
    );
    assert_eq!(
        obs.traces
            .spans_for(b)
            .iter()
            .filter(|s| s.name == "parse")
            .count(),
        0
    );
    for trace in [a, b] {
        for stage in ["bind", "transform", "serialize", "execute"] {
            assert_eq!(
                obs.traces
                    .spans_for(trace)
                    .iter()
                    .filter(|s| s.name == stage)
                    .count(),
                1,
                "stage {stage} in trace {trace}"
            );
        }
    }

    assert!(hq.run_one("SEL * FROM NO_SUCH_TABLE").is_err());
    assert_eq!(
        obs.metrics
            .counter_value("hyperq_statements_total", &[("outcome", "error")]),
        1
    );
    // The session tracker observed the two successful statements.
    assert_eq!(hq.tracker().total_queries, 2);
}

/// Statements crossing the slow-query threshold are captured with their
/// span tree.
#[test]
fn slow_query_log_captures_span_tree() {
    let obs = ObsContext::new();
    obs.slowlog.set_threshold(Some(Duration::from_nanos(1)));
    let mut hq = session(&obs);
    hq.run_one(tpch::query(1)).unwrap();
    let entries = obs.slowlog.entries();
    assert_eq!(entries.len(), 1);
    assert!(entries[0].sql.starts_with("SEL L_RETURNFLAG"), "{}", entries[0].sql);
    let tree = &entries[0].spans;
    assert!(tree.starts_with("statement "), "{tree}");
    for stage in ["parse", "bind", "transform", "serialize", "execute"] {
        assert!(tree.contains(&format!("  {stage} ")), "{stage} missing in:\n{tree}");
    }
}

/// A session that survives a backend kill and a gate that sheds a waiter
/// must both surface in the Prometheus exposition: the
/// `hyperq_recovery_*` family with the replayed-entry breakdown, and the
/// `hyperq_admission_*` family with gate and shed-reason labels.
#[test]
fn recovery_and_admission_metrics_appear_in_exposition() {
    use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan};
    use hyperq::core::backend::BackendErrorKind;
    use hyperq::wire::AdmissionGate;

    let obs = ObsContext::new();

    // Drive one transparent recovery: journal a session setting, then kill
    // the connection under the next query so the session reconnects and
    // replays the setting before re-issuing the query.
    let db = load();
    let fault = FaultInjectingBackend::wrap(db as Arc<dyn Backend>, FaultPlan::none());
    let plan_handle = Arc::clone(&fault);
    let mut hq = HyperQBuilder::for_target(fault as Arc<dyn Backend>, hyperq::core::targets::simwh()).obs(Arc::clone(&obs)).build();
    hq.run_one("SET SESSION DATEFORM = 'ANSIDATE'").unwrap();
    plan_handle.set_plan(FaultPlan::fail_n_then_succeed(1, BackendErrorKind::ConnectionLost));
    hq.run_one("SEL COUNT(*) FROM LINEITEM").unwrap();
    assert_eq!(obs.metrics.counter_value("hyperq_recovery_success_total", &[]), 1);

    // Drive one admission shed: hold the only slot, let a waiter time out,
    // then admit it after the slot frees.
    let gate = AdmissionGate::new("statement", 1, 1, Duration::from_millis(20), &obs);
    let held = gate.try_admit().unwrap();
    assert!(gate.try_admit().is_err(), "waiter must shed after admission_timeout");
    drop(held);
    drop(gate.try_admit().unwrap());

    let prom = obs.metrics.render_prometheus();
    for series in [
        "hyperq_recovery_attempts_total 1",
        "hyperq_recovery_success_total 1",
        "hyperq_recovery_replayed_entries_total{kind=\"setting\"} 1",
        "hyperq_recovery_duration_seconds_count 1",
        "hyperq_admission_admitted_total{gate=\"statement\"} 2",
        "hyperq_admission_queued_total{gate=\"statement\"} 1",
        "hyperq_admission_shed_total{gate=\"statement\",reason=\"timeout\"} 1",
        "hyperq_admission_shed_total{gate=\"statement\",reason=\"queue_full\"} 0",
        "hyperq_admission_queue_depth{gate=\"statement\"} 0",
        // Two immediate admits record a zero wait; the timed-out waiter
        // records its full queue time.
        "hyperq_admission_wait_seconds_count{gate=\"statement\"} 3",
    ] {
        assert!(prom.contains(series), "missing series `{series}` in exposition:\n{prom}");
    }
    // The JSON snapshot carries the same families.
    let json = obs.metrics.render_json();
    assert!(json.contains("hyperq_recovery_success_total"));
    assert!(json.contains("hyperq_admission_shed_total"));
}

#[test]
fn cache_metric_families_expose_cleanly() {
    let obs = ObsContext::new();
    let mut hq = session(&obs);
    // One miss + populate, one warm hit, and a script whose statements are
    // cached individually — three entries total.
    hq.run_one("SEL L_ORDERKEY FROM LINEITEM WHERE L_QUANTITY > 10").unwrap();
    hq.run_one("SEL L_ORDERKEY FROM LINEITEM WHERE L_QUANTITY > 10").unwrap();
    hq.run_script("SEL COUNT(*) FROM REGION; SEL COUNT(*) FROM NATION").unwrap();

    let prom = obs.metrics.render_prometheus();
    for series in [
        "hyperq_cache_hits_total 1",
        "hyperq_cache_misses_total",
        "hyperq_cache_bypass_total",
        "hyperq_cache_entries 3",
        "hyperq_cache_lookup_seconds_count",
        "hyperq_cache_lookup_seconds_bucket",
    ] {
        assert!(prom.contains(series), "missing series `{series}` in exposition:\n{prom}");
    }
    // Every cache sample line is `name{labels} value` with a finite value —
    // the format the scrape endpoint and CI's exposition check rely on.
    for line in prom.lines().filter(|l| l.starts_with("hyperq_cache_")) {
        let (_, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line must be `series value`: {line}"));
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("unparseable value: {line}"));
        assert!(v.is_finite(), "{line}");
    }
    let json = obs.metrics.render_json();
    assert!(json.contains("hyperq_cache_hits_total"));
    assert!(json.contains("hyperq_cache_entries"));
}
