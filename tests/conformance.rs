//! Capability-conformance linting end to end: Strict mode is clean over
//! every corpus on a self-consistent target, a deliberately-reduced
//! capability signature is flagged with correctly-attributed rules, and
//! lint spans always point at real byte ranges of the linted SQL.
//!
//! Plus the property half of the assessment work: randomized
//! corpus-shaped statements keep the assessor's verdicts in agreement
//! with live pipeline outcomes.

use std::collections::HashSet;
use std::sync::Arc;

use hyperq::assess::{Assessor, Verdict};
use hyperq::core::capability::TargetCapabilities;
use hyperq::core::conformance::{lint_serialized, Conformance, ConformanceMode, Severity};
use hyperq::core::{Backend, EmulationKind, HyperQBuilder, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::workload::customer::{health, telco};
use hyperq::workload::tpch;
use proptest::prelude::*;

/// Every statement of every corpus must pass Strict conformance on every
/// **executable** target profile: the serializer never emits a construct
/// the profile's own capability signature says the target lacks — on the
/// default `simwh` and on the reduced dialect alike (where e.g. the
/// `DATEADD` spelling and the peeled row bounds must still lint clean).
#[test]
fn corpora_are_conformance_clean_under_strict() {
    for profile in hyperq::core::targets::executable() {
        let target = profile.name.clone();

        // TPC-H.
        let db = Arc::new(EngineDb::new());
        for ddl in tpch::ddl() {
            db.execute_sql(&ddl).unwrap();
        }
        let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, profile.clone())
            .conformance(ConformanceMode::Strict)
            .build();
        for (n, q) in tpch::queries() {
            hq.run_script(q)
                .unwrap_or_else(|e| panic!("[{target}] TPC-H Q{n} under Strict conformance: {e}"));
        }

        // Customer corpora.
        for w in [health(0.05), telco(0.02)] {
            let db = Arc::new(EngineDb::new());
            for ddl in &w.target_ddl {
                db.execute_sql(ddl).unwrap();
            }
            let mut hq =
                HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, profile.clone())
                    .conformance(ConformanceMode::Strict)
                    .build();
            for text in w.hyperq_setup.iter().chain(w.distinct.iter()) {
                hq.run_script(text)
                    .unwrap_or_else(|e| panic!("[{target}] under Strict conformance: {text}: {e}"));
            }
        }
    }
}

/// The acceptance scenario: SQL serialized for a full-capability target,
/// re-linted against a no-RETURNING / no-GROUPING-SETS signature, is
/// flagged — and by exactly the right rules.
#[test]
fn reduced_signature_is_flagged_with_attributed_rules() {
    let mut reduced = TargetCapabilities::cloud_d();
    reduced.grouping_sets = false;
    reduced.returning_clause = false;

    let grouping = "SELECT REGION, SUM(AMOUNT) FROM SALES \
                    GROUP BY GROUPING SETS ((REGION), ())";
    let returning = "INSERT INTO SALES (REGION, AMOUNT) VALUES ('EU', 5) RETURNING AMOUNT";

    // Full cloud-d signature: both statements are conformant.
    assert!(lint_serialized(grouping, &TargetCapabilities::cloud_d())
        .iter()
        .all(|f| f.severity != Severity::Error));

    let gf = lint_serialized(grouping, &reduced);
    let gf: Vec<_> = gf.iter().filter(|f| f.severity == Severity::Error).collect();
    assert_eq!(gf.len(), 1, "{gf:?}");
    assert_eq!(gf[0].rule, "grouping-sets");
    assert_eq!(&grouping[gf[0].span.0..gf[0].span.1], "GROUPING");

    let rf = lint_serialized(returning, &reduced);
    let rf: Vec<_> = rf.iter().filter(|f| f.severity == Severity::Error).collect();
    assert_eq!(rf.len(), 1, "{rf:?}");
    assert_eq!(rf[0].rule, "returning-clause");
    assert_eq!(&returning[rf[0].span.0..rf[0].span.1], "RETURNING");

    // The Strict driver turns the finding into a statement failure and
    // counts it, attributed to the rule.
    let obs = ObsContext::new();
    let strict = Conformance::new(ConformanceMode::Strict, &obs);
    let err = strict.check_serialized(grouping, &reduced, "cloud-d-reduced").unwrap_err();
    assert!(err.to_string().contains("conformance rule 'grouping-sets'"), "{err}");
    assert_eq!(
        obs.metrics.counter_value(
            "hyperq_conformance_violations_total",
            &[("rule", "grouping-sets"), ("target", "cloud-d-reduced")]
        ),
        1
    );
    assert_eq!(
        obs.metrics
            .counter_value("hyperq_conformance_checks_total", &[("stage", "serialized")]),
        1
    );
}

/// Every finding's span must slice the linted SQL to real, non-empty
/// text — checked over both the Teradata source texts of a corpus (which
/// are full of constructs the default target lacks) and every statement
/// the pipeline actually sends.
#[test]
fn lint_spans_are_real_source_ranges_over_corpus_sql() {
    let caps = TargetCapabilities::simwh();
    let check = |sql: &str| -> usize {
        let findings = lint_serialized(sql, &caps);
        for f in &findings {
            assert!(
                f.span.0 < f.span.1 && f.span.1 <= sql.len(),
                "span {:?} out of range for {sql}",
                f.span
            );
            let slice = &sql[f.span.0..f.span.1];
            assert!(!slice.trim().is_empty(), "empty span slice in {sql}");
            assert!(f.line >= 1);
        }
        findings.len()
    };

    let w = telco(0.02);
    let db = Arc::new(EngineDb::new());
    for ddl in &w.target_ddl {
        db.execute_sql(ddl).unwrap();
    }
    let mut hq =
        HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh()).build();
    let mut findings = 0usize;
    for text in w.hyperq_setup.iter().chain(w.distinct.iter()) {
        findings += check(text);
        let response = hq.run_script(text).unwrap();
        for stmt in &response {
            for sql in &stmt.sql_sent {
                findings += check(sql);
            }
        }
    }
    assert!(findings > 0, "corpus source texts produced no findings to validate");
}

// ---------------------------------------------------------------------
// Property: generated statements — assessor verdict ⇔ pipeline outcome
// ---------------------------------------------------------------------

fn corpus_shaped_statement(case: u64) -> String {
    let i = case % 11;
    let k = (case / 11) % 97;
    match i {
        0 => format!("SEL STORE, AMOUNT FROM SALES WHERE AMOUNT > {k}"),
        1 => format!("SELECT STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 HAVING SUM(AMOUNT) <> {k}"),
        2 => format!(
            "SELECT AMOUNT AS BASE, BASE * 2 AS DOUBLED FROM SALES WHERE STORE = {k}"
        ),
        3 => format!(
            "SELECT STORE FROM SALES QUALIFY RANK(AMOUNT DESC) <= {}",
            1 + k % 7
        ),
        4 => format!(
            "SELECT S.STORE FROM SALES S, STORES T WHERE S.STORE = T.STORE_ID AND T.REGION <> {k}"
        ),
        5 => format!("INSERT INTO SALES (STORE, AMOUNT) VALUES ({k}, {})", k * 3),
        6 => format!("UPDATE SALES SET AMOUNT = AMOUNT + {k} WHERE STORE = {}", k % 9),
        7 => format!("SELECT COUNT(*) FROM SALES WHERE AMOUNT MOD {} = 1", 2 + k % 5),
        8 => "HELP TABLE SALES".to_string(),
        9 => format!(
            "SELECT STORE FROM SALES WHERE (STORE, AMOUNT) > ANY \
             (SELECT STORE_ID, REGION FROM STORES WHERE STORE_ID < {k})"
        ),
        _ => format!("DELETE FROM SALES WHERE AMOUNT < {k}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_statement_verdicts_agree_with_pipeline(case in 0u64..100_000) {
        let text = corpus_shaped_statement(case);

        let db = Arc::new(EngineDb::new());
        db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)").unwrap();
        db.execute_sql("CREATE TABLE STORES (STORE_ID INTEGER, REGION INTEGER)").unwrap();
        let obs = ObsContext::new();
        let mut hq =
            HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh())
                .obs(Arc::clone(&obs))
                .no_cache()
                .build();
        let mut assessor = Assessor::new(TargetCapabilities::simwh());
        assessor.ingest_ddl("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER)");
        assessor.ingest_ddl("CREATE TABLE STORES (STORE_ID INTEGER, REGION INTEGER)");

        let run = hq.run_script(&text);
        let observed: HashSet<EmulationKind> = EmulationKind::ALL
            .iter()
            .filter(|kind| {
                obs.metrics.counter_value(
                    "hyperq_emulation_requests_total",
                    &[("kind", kind.as_str())],
                ) > 0
            })
            .copied()
            .collect();

        let assessments = assessor.assess_script(&text);
        prop_assert_eq!(assessments.len(), 1);
        match (&assessments[0].verdict, &run) {
            (Verdict::Unsupported { .. }, Err(_)) => {}
            (Verdict::Translatable, Ok(_)) => {
                prop_assert!(observed.is_empty(), "{}: observed {:?}", text, observed);
            }
            (Verdict::NeedsEmulation { kinds, .. }, Ok(_)) => {
                let predicted: HashSet<EmulationKind> = kinds.iter().copied().collect();
                prop_assert_eq!(predicted, observed, "{}", text);
            }
            (verdict, outcome) => {
                prop_assert!(
                    false,
                    "disagreement for {}: verdict {:?}, pipeline ok={}",
                    text,
                    verdict,
                    outcome.is_ok()
                );
            }
        }

        // Every advisory finding's span indexes real statement/SQL text.
        for f in &assessments[0].findings {
            prop_assert!(f.span.0 <= f.span.1);
        }
    }
}
