//! Reproduction of the paper's worked examples: the intermediate trees of
//! Figures 4–6 and the final SQL of Example 3, plus the Example 4
//! recursion trace of Figure 7.

use std::sync::Arc;

use hyperq::core::backend::Backend;
use hyperq::core::binder::Binder;
use hyperq::core::capability::TargetCapabilities;
use hyperq::core::serialize::Serializer;
use hyperq::core::session::{SessionState, ShadowCatalog};
use hyperq::core::transform::{Phase, Transformer};
use hyperq::core::HyperQBuilder;
use hyperq::engine::EngineDb;
use hyperq::parser::{parse_one, Dialect};
use hyperq::xtra::display::render_rel;
use hyperq::xtra::feature::FeatureSet;
use hyperq::xtra::rel::Plan;

const EXAMPLE2: &str = "SEL * FROM SALES WHERE SALES_DATE > 1140101 \
     AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY) \
     QUALIFY RANK(AMOUNT DESC) <= 10";

fn backend() -> Arc<dyn Backend> {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE SALES (AMOUNT INTEGER, SALES_DATE DATE)").unwrap();
    db.execute_sql("CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER)").unwrap();
    Arc::new(db)
}

/// Bind Example 2 and run the transformer up to the given phase.
fn example2_xtra(phases: &[Phase]) -> Plan {
    let backend = backend();
    let session = SessionState::new(1, "T");
    let catalog = ShadowCatalog::new(&*backend, &session);
    let mut binder = Binder::new(&catalog);
    let parsed = parse_one(EXAMPLE2, Dialect::Teradata).unwrap();
    let mut plan = binder.bind_statement(&parsed.stmt).unwrap();
    let transformer = Transformer::standard();
    let caps = TargetCapabilities::simwh();
    let mut fired = FeatureSet::new();
    for phase in phases {
        plan = transformer.run(plan, *phase, &caps, &mut fired).unwrap();
    }
    plan
}

#[test]
fn figure5_xtra_after_binding() {
    // After binding + binding-phase transformations, the tree matches
    // Figure 5's structure: a window over a select whose predicate contains
    // the date expansion and the vector subq node.
    let plan = example2_xtra(&[Phase::Binding]);
    let rel = match &plan {
        Plan::Query(rel) => rel,
        other => panic!("{other:?}"),
    };
    let tree = render_rel(rel);
    // Figure 5 landmarks:
    assert!(tree.contains("window(RANK, DESC, SALES.AMOUNT)"), "{tree}");
    assert!(tree.contains("get (SALES)"), "{tree}");
    assert!(tree.contains("boolexpr(AND)"), "{tree}");
    assert!(tree.contains("extract(DAY, SALES.SALES_DATE)"), "{tree}");
    assert!(tree.contains("extract(MONTH, SALES.SALES_DATE)"), "{tree}");
    assert!(tree.contains("const(1900)"), "{tree}");
    assert!(tree.contains("const(10000)"), "{tree}");
    assert!(tree.contains("const(1140101)"), "{tree}");
    assert!(tree.contains("subq(ANY, GT,"), "{tree}");
    assert!(tree.contains("get (SALES_HISTORY)"), "{tree}");
    assert!(tree.contains("const(0.85)"), "{tree}");
    assert!(tree.contains("comp(LTE)"), "{tree}");
    assert!(tree.contains("const(10)"), "{tree}");
}

#[test]
fn figure6_final_xtra_after_serialization_phase() {
    // After the serialization-phase transformations, the vector comparison
    // is gone: Figure 6's existential correlated subquery with the
    // lexicographic OR/AND expansion.
    let plan = example2_xtra(&[Phase::Binding, Phase::Serialization]);
    let rel = match &plan {
        Plan::Query(rel) => rel,
        other => panic!("{other:?}"),
    };
    let tree = render_rel(rel);
    assert!(tree.contains("subq(EXISTS)"), "{tree}");
    assert!(!tree.contains("subq(ANY"), "vector comparison must be rewritten: {tree}");
    assert!(tree.contains("boolexpr(OR)"), "{tree}");
    assert!(tree.contains("comp(EQ)"), "{tree}");
    // The remapped const: SELECT 1 projection.
    assert!(tree.contains("const(1)"), "{tree}");
}

#[test]
fn example3_final_sql_shape() {
    let plan = example2_xtra(&[Phase::Binding, Phase::Serialization]);
    let caps = TargetCapabilities::simwh();
    let sql = Serializer::new(&caps).serialize_plan(&plan).unwrap();
    let upper = sql.to_uppercase();
    // Example 3 landmarks.
    assert!(upper.contains("RANK() OVER (ORDER BY"), "{sql}");
    assert!(upper.contains("EXISTS"), "{sql}");
    assert!(upper.contains("SELECT 1"), "{sql}");
    assert!(upper.contains("EXTRACT(DAY FROM"), "{sql}");
    assert!(upper.contains("EXTRACT(MONTH FROM"), "{sql}");
    assert!(upper.contains("EXTRACT(YEAR FROM"), "{sql}");
    assert!(upper.contains("1140101"), "{sql}");
    assert!(upper.contains("0.85"), "{sql}");
    // And none of the Teradata-isms survive.
    assert!(!upper.contains("QUALIFY"), "{sql}");
    assert!(!upper.contains(" ANY"), "{sql}");
    assert!(!upper.contains("SEL *"), "{sql}");
}

#[test]
fn example3_sql_executes_on_target_with_paper_semantics() {
    // Populate SALES/SALES_HISTORY such that the paper's predicate
    // semantics are observable: ties on GROSS broken by NET.
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE SALES (AMOUNT INTEGER, SALES_DATE DATE)").unwrap();
    db.execute_sql("CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER)").unwrap();
    db.execute_sql(
        "INSERT INTO SALES VALUES \
         (100, DATE '2014-06-01'), \
         (200, DATE '2014-06-01'), \
         (200, DATE '2013-06-01'), \
         (50,  DATE '2014-06-01')",
    )
    .unwrap();
    // History: (200, 100): amount=200 ties on gross, 200*0.85=170 > 100 → keep.
    db.execute_sql("INSERT INTO SALES_HISTORY VALUES (200, 100), (150, 149)").unwrap();
    let backend: Arc<dyn Backend> = Arc::new(db);
    let mut hq = HyperQBuilder::for_target(Arc::clone(&backend), hyperq::core::targets::simwh()).build();
    let outcome = hq.run_one(EXAMPLE2).unwrap();
    // Expected: rows after 2014-01-01 with (amount, amount*.85) > ANY
    // {(200,100),(150,149)}:
    //   100: 100>200? no; 100>150? no; ties? no → out.
    //   200 (2014): 200>150 → in. (also tie on 200 with net 170>100.)
    //   200 (2013): date filter excludes.
    //   50: out.
    let amounts: Vec<i64> = outcome
        .result
        .rows
        .iter()
        .map(|r| r[0].to_i64().unwrap())
        .collect();
    assert_eq!(amounts, vec![200]);
}

#[test]
fn example1_runs_end_to_end() {
    let db = EngineDb::new();
    db.execute_sql(
        "CREATE TABLE PRODUCT (PRODUCT_NAME VARCHAR(30), SALES INTEGER, STORE INTEGER)",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO PRODUCT VALUES ('widget', 5, 1), ('gadget', 7, 1), ('gizmo', 20, 2)",
    )
    .unwrap();
    let backend: Arc<dyn Backend> = Arc::new(db);
    let mut hq = HyperQBuilder::for_target(backend, hyperq::core::targets::simwh()).build();
    let outcome = hq
        .run_one(
            "SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET \
             FROM PRODUCT \
             QUALIFY 10 < SUM(SALES) OVER (PARTITION BY STORE) \
             ORDER BY STORE, PRODUCT_NAME \
             WHERE CHARS(PRODUCT_NAME) > 4",
        )
        .unwrap();
    // Store sums: store1 = 12 (>10), store2 = 20 (>10); CHARS > 4 keeps
    // widget(6)/gadget(6)/gizmo(5). Order: store, then name.
    let names: Vec<String> = outcome
        .result
        .rows
        .iter()
        .map(|r| r[0].to_sql_string())
        .collect();
    assert_eq!(names, vec!["gadget", "widget", "gizmo"]);
    let offsets: Vec<i64> = outcome
        .result
        .rows
        .iter()
        .map(|r| r[2].to_i64().unwrap())
        .collect();
    assert_eq!(offsets, vec![107, 105, 120]);
}

#[test]
fn figure7_recursion_trace() {
    // Example 4 / Figure 7: the request sequence against the target must
    // follow the WorkTable/TempTable protocol.
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)").unwrap();
    db.execute_sql("INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)").unwrap();
    let backend: Arc<dyn Backend> = Arc::new(db);
    let mut hq = HyperQBuilder::for_target(backend, hyperq::core::targets::simwh()).build();
    let outcome = hq
        .run_one(
            "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
               SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
               UNION ALL \
               SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
               WHERE REPORTS.EMPNO = EMP.MGRNO ) \
             SELECT EMPNO FROM REPORTS ORDER BY EMPNO",
        )
        .unwrap();
    let sql = &outcome.sql_sent;
    // Step 1: initialize WorkTable and TempTable with the seed.
    assert!(sql[0].contains("CREATE TEMPORARY TABLE WT_"), "{}", sql[0]);
    assert!(sql[1].contains("CREATE TEMPORARY TABLE TT_"), "{}", sql[1]);
    // Steps 2–3: two productive recursive iterations (e7 then e1), each
    // appending into the WorkTable; step 4: an empty iteration ends it.
    let inserts = sql.iter().filter(|s| s.starts_with("INSERT INTO WT_")).count();
    assert_eq!(inserts, 2, "{sql:#?}");
    // Step 5: the main query reads the WorkTable.
    assert!(
        sql.iter().any(|s| s.starts_with("SELECT") && s.contains("WT_")),
        "{sql:#?}"
    );
    // Step 6: both temporary tables dropped.
    let drops = sql.iter().filter(|s| s.starts_with("DROP TABLE")).count();
    assert!(drops >= 3, "{sql:#?}"); // intermediate TTs + final WT/TT
    // The paper's hand-traced result.
    let ids: Vec<i64> = outcome
        .result
        .rows
        .iter()
        .map(|r| r[0].to_i64().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 7, 8, 9]);
}

#[test]
fn figure4_parse_features_match_example2() {
    let parsed = parse_one(EXAMPLE2, Dialect::Teradata).unwrap();
    use hyperq::xtra::Feature::*;
    for f in [KeywordShortcut, Qualify, VectorSubquery, NonAnsiWindowSyntax] {
        assert!(parsed.features.contains(f), "missing {f:?}");
    }
}
