//! Per-statement provenance end to end: the forensic record a statement
//! leaves behind must agree with the independently recorded metrics, the
//! translation cache's actual behavior, and the workload tracker's feature
//! measurement — and captured SQL must never leak literal values unless
//! raw capture was explicitly opted into.

use std::sync::Arc;
use std::time::Duration;

use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan};
use hyperq::core::backend::BackendErrorKind;
use hyperq::core::resilience::{BreakerConfig, ResilienceConfig, ResilientBackend, RetryPolicy};
use hyperq::core::tracker::WorkloadTracker;
use hyperq::core::{Backend, HyperQBuilder, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::obs::provenance::CacheOutcome;
use hyperq::obs::WorkloadReport;
use hyperq::workload::customer::{health, telco, CustomerWorkload, QueryClass};

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_millis(2),
        jitter: 0.5,
        seed: 42,
        deadline: None,
    }
}

/// The acceptance scenario: one statement through a cold cache, the same
/// statement again through a warm cache, with one injected transient fault
/// on the cold run. The two provenance records must tell exactly that
/// story, and every claim in them must match an independently observed
/// metric.
#[test]
fn cache_miss_then_hit_with_injected_fault_leaves_matching_forensics() {
    let obs = ObsContext::new();
    obs.slowlog.set_threshold(Some(Duration::from_micros(1)));
    let db = Arc::new(EngineDb::new());
    db.execute_sql("CREATE TABLE ORDERS (O_ID INTEGER NOT NULL, TOTAL INTEGER)").unwrap();
    db.execute_sql("INSERT INTO ORDERS VALUES (1, 500)").unwrap();
    let fault = FaultInjectingBackend::wrap(db as Arc<dyn Backend>, FaultPlan::none());
    let resilient = ResilientBackend::wrap(
        Arc::clone(&fault) as Arc<dyn Backend>,
        ResilienceConfig { retry: fast_retry(), breaker: BreakerConfig::default() },
        &obs,
    );
    let mut hq = HyperQBuilder::for_target(resilient as Arc<dyn Backend>, hyperq::core::targets::simwh())
        .obs(Arc::clone(&obs))
        .build();

    fault.set_plan(FaultPlan::fail_n_then_succeed(1, BackendErrorKind::Transient));
    let sql = "SELECT TOTAL FROM ORDERS WHERE O_ID = 1";
    let cold = hq.run_one(sql).unwrap();
    let warm = hq.run_one(sql).unwrap();
    assert_eq!(cold.result.rows, warm.result.rows, "cache hit must not change the result");

    let records = obs.provenance.recent(10);
    assert_eq!(records.len(), 2, "one record per statement");
    let (miss, hit) = (&records[0], &records[1]);

    // Cold run: full pipeline, cache miss, one transparent retry.
    assert_eq!(miss.cache, CacheOutcome::Miss);
    assert_eq!(miss.kind, "select");
    assert!(miss.ok);
    assert_eq!(miss.retries, 1, "the injected transient fault cost one retry");
    assert_eq!(miss.rows, 1);
    assert!(miss.fingerprint != 0);
    let stage_names: Vec<&str> = miss.stages.iter().map(|(s, _)| *s).collect();
    for stage in ["parse", "bind", "transform", "serialize", "execute"] {
        assert!(stage_names.contains(&stage), "miss record must time {stage}: {stage_names:?}");
    }
    let staged: Duration = miss.stages.iter().map(|(_, d)| *d).sum();
    assert!(staged <= miss.total, "stage timings cannot exceed end-to-end time");

    // Warm run: served from cache, no translation stages, no retry.
    assert_eq!(hit.cache, CacheOutcome::Hit);
    assert_eq!(hit.retries, 0);
    assert_eq!(hit.fingerprint, miss.fingerprint, "same statement, same fingerprint");
    let hit_stages: Vec<&str> = hit.stages.iter().map(|(s, _)| *s).collect();
    assert!(hit_stages.contains(&"cache"), "hit record must time the cache lookup");
    assert!(hit_stages.contains(&"execute"));
    assert!(!hit_stages.contains(&"bind"), "a cache hit skips translation: {hit_stages:?}");

    // Every forensic claim matches an independently recorded metric.
    assert_eq!(obs.metrics.counter_value("hyperq_cache_hits_total", &[]), 1);
    assert_eq!(obs.metrics.counter_value("hyperq_cache_misses_total", &[]), 1);
    let prom = obs.metrics.render_prometheus();
    let retry_line = prom
        .lines()
        .find(|l| l.starts_with("hyperq_backend_retries_total"))
        .expect("retry counter must be exposed");
    assert!(retry_line.ends_with(" 1"), "metrics saw exactly one retry: {retry_line}");
    assert_eq!(
        obs.metrics.counter_value("hyperq_statements_total", &[("outcome", "ok")]),
        2
    );

    // The slow-query log captured both, with the literal redacted.
    let slow = obs.slowlog.entries();
    assert_eq!(slow.len(), 2);
    for entry in &slow {
        assert!(!entry.sql.contains("= 1"), "literal leaked into slowlog: {}", entry.sql);
        assert!(entry.sql.contains('?'), "redacted placeholder expected: {}", entry.sql);
    }
}

/// Regression: no literal values in the slow-query log or provenance ring
/// by default; raw text only behind the explicit opt-in.
#[test]
fn captured_sql_is_literal_redacted_unless_raw_capture_opted_in() {
    let run = |capture_raw: bool| -> (Vec<String>, Vec<String>) {
        let obs = ObsContext::new();
        obs.slowlog.set_threshold(Some(Duration::from_micros(1)));
        if capture_raw {
            obs.slowlog.set_capture_raw(true);
            obs.provenance.set_capture_raw(true);
        }
        let db = Arc::new(EngineDb::new());
        db.execute_sql("CREATE TABLE USERS (UID INTEGER NOT NULL, TOKEN VARCHAR(40))")
            .unwrap();
        let mut hq = HyperQBuilder::for_target(db as Arc<dyn Backend>, hyperq::core::targets::simwh())
            .obs(Arc::clone(&obs))
            .build();
        hq.run_one("SELECT UID FROM USERS WHERE TOKEN = 'SECRET-TOKEN' AND UID = 98765")
            .unwrap();
        (
            obs.slowlog.entries().into_iter().map(|e| e.sql).collect(),
            obs.provenance.recent(10).into_iter().map(|r| r.sql).collect(),
        )
    };

    let (slow, prov) = run(false);
    for sql in slow.iter().chain(prov.iter()) {
        assert!(!sql.contains("SECRET-TOKEN"), "string literal leaked: {sql}");
        assert!(!sql.contains("98765"), "number literal leaked: {sql}");
        assert!(sql.contains('?'), "expected redaction placeholders: {sql}");
    }

    let (slow_raw, prov_raw) = run(true);
    for sql in slow_raw.iter().chain(prov_raw.iter()) {
        assert!(sql.contains("SECRET-TOKEN") && sql.contains("98765"), "raw opt-in: {sql}");
    }
}

fn replay_distinct(w: &CustomerWorkload) -> (Arc<ObsContext>, WorkloadTracker) {
    let obs = ObsContext::new();
    let db = Arc::new(EngineDb::new());
    for ddl in &w.target_ddl {
        db.execute_sql(ddl).unwrap();
    }
    let mut hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn Backend>, hyperq::core::targets::simwh())
        .obs(Arc::clone(&obs))
        .build();
    for setup in &w.hyperq_setup {
        hq.run_one(setup).unwrap();
    }
    // The report must reflect the application queries only, not the
    // one-time setup DDL; records before this mark are skipped.
    let setup_records = obs.provenance.snapshot().len();
    let mut tracker = WorkloadTracker::new();
    for text in &w.distinct {
        let outcome = hq.run_one(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        tracker.observe(text, &outcome.features);
    }
    let total = obs.provenance.snapshot().len();
    assert_eq!(
        total - setup_records,
        w.distinct.len(),
        "one provenance record per distinct query"
    );
    (obs, tracker)
}

fn application_records(
    obs: &ObsContext,
    w: &CustomerWorkload,
) -> Vec<hyperq::obs::ProvenanceRecord> {
    let mut all = obs.provenance.snapshot();
    let skip = all.len() - w.distinct.len();
    all.drain(..skip);
    all
}

/// Figure 8 analog from live provenance records: per-feature frequencies
/// must agree exactly with the workload tracker's independent measurement,
/// and every class-tagged query must exhibit a feature of its class.
#[test]
fn figure8_report_matches_tracker_and_generator_tags() {
    for w in [health(0.05), telco(0.02)] {
        let (obs, tracker) = replay_distinct(&w);
        let records = application_records(&obs, &w);
        let report = WorkloadReport::from_records(&records);
        assert_eq!(report.statements, w.distinct.len() as u64);
        assert_eq!(report.errors, 0);

        // Per-feature statement counts: the report (folded from provenance
        // records) against the tracker (fed directly from pipeline
        // outcomes). Each distinct query ran exactly once, so statement
        // counts equal distinct-query counts.
        let tracked: Vec<(&str, u64)> = tracker
            .feature_counts()
            .into_iter()
            .filter(|(_, n)| *n > 0)
            .map(|(f, n)| (f.code(), n))
            .collect();
        assert!(!tracked.is_empty(), "{}: corpus must exercise features", w.profile.sector);
        for (code, n) in &tracked {
            let row = report
                .features
                .iter()
                .find(|f| f.code == *code)
                .unwrap_or_else(|| panic!("{}: feature {code} missing from report", w.profile.sector));
            assert_eq!(
                row.statements, *n,
                "{}: feature {code} frequency diverges from tracker",
                w.profile.sector
            );
        }
        assert_eq!(
            report.features.len(),
            tracked.len(),
            "{}: report lists features the tracker never saw",
            w.profile.sector
        );

        // Generator ground truth: a query synthesized in a rewrite class
        // must exhibit at least one feature of that class; plain queries
        // must exhibit none.
        for (record, class) in records.iter().zip(&w.classes) {
            let has = |prefix: char| record.features.iter().any(|c| c.starts_with(prefix));
            match class {
                QueryClass::Translation => {
                    assert!(has('T'), "translation query without T feature: {}", record.sql);
                }
                QueryClass::Transformation => {
                    assert!(has('X'), "transformation query without X feature: {}", record.sql);
                }
                QueryClass::Emulation => {
                    assert!(has('E'), "emulation query without E feature: {}", record.sql);
                }
                QueryClass::Plain => assert!(
                    record.features.is_empty(),
                    "plain query tripped features {:?}: {}",
                    record.features,
                    record.sql
                ),
            }
        }
    }
}

/// The Figure 8 analog table is byte-stable for a fixed seed: two fresh
/// replays of the same corpus render identical feature tables.
#[test]
fn figure8_table_is_byte_stable_for_fixed_seed() {
    let render = || {
        let w = health(0.05);
        let (obs, _) = replay_distinct(&w);
        WorkloadReport::from_records(&application_records(&obs, &w)).render_feature_table()
    };
    let first = render();
    let second = render();
    assert!(!first.is_empty());
    assert_eq!(first, second, "feature table must be byte-identical across replays");
    // Counts only — no timings — so the snapshot itself is stable too.
    assert!(first.contains("figure 8 analog"));
}
