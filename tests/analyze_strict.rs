//! Strict-mode static analysis over the acceptance corpora: every TPC-H
//! query and every distinct customer-workload statement must pass the plan
//! validator, the per-rule transformation audit, and the serializer
//! round-trip check without a single violation.

use std::sync::Arc;

use hyperq::core::{AnalyzeMode, Backend, HyperQ, HyperQBuilder, ObsContext};
use hyperq::engine::EngineDb;
use hyperq::workload::customer::{health, telco, CustomerWorkload};
use hyperq::workload::tpch;

const SCALE: f64 = 0.002;

fn strict_session(db: Arc<EngineDb>, obs: &Arc<ObsContext>) -> HyperQ {
    HyperQBuilder::for_target(db as Arc<dyn Backend>, hyperq::core::targets::simwh()).obs(Arc::clone(obs)).analyze(AnalyzeMode::Strict).build()
}

#[test]
fn tpch_corpus_passes_strict_analysis() {
    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(SCALE, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    let obs = ObsContext::new();
    let mut hq = strict_session(db, &obs);
    for (n, sql) in tpch::queries() {
        hq.run_one(sql)
            .unwrap_or_else(|e| panic!("Q{n} failed strict analysis: {e}"));
    }
    // Every statement crossed both validation boundaries, and nothing
    // was ever flagged.
    assert!(
        obs.metrics
            .counter_value("hyperq_validation_checks_total", &[("stage", "bind")])
            >= 22
    );
    assert!(
        obs.metrics
            .counter_value("hyperq_validation_checks_total", &[("stage", "roundtrip")])
            >= 22
    );
    assert_violation_free(&obs);
}

fn run_strict(w: &CustomerWorkload) -> Arc<ObsContext> {
    let db = Arc::new(EngineDb::new());
    for ddl in &w.target_ddl {
        db.execute_sql(ddl).unwrap();
    }
    let obs = ObsContext::new();
    let mut hq = strict_session(db, &obs);
    for setup in &w.hyperq_setup {
        hq.run_one(setup).unwrap();
    }
    for text in &w.distinct {
        hq.run_one(text)
            .unwrap_or_else(|e| panic!("failed strict analysis: {text}\n  -> {e}"));
    }
    assert_violation_free(&obs);
    obs
}

fn assert_violation_free(obs: &Arc<ObsContext>) {
    let prom = obs.metrics.render_prometheus();
    for line in prom.lines() {
        if (line.starts_with("hyperq_validation_violations_total")
            || line.starts_with("hyperq_rule_audit_failures_total"))
            && !line.ends_with(" 0")
        {
            panic!("strict corpus run recorded a violation: {line}");
        }
    }
}

#[test]
fn health_workload_passes_strict_analysis() {
    run_strict(&health(0.05));
}

#[test]
fn telco_workload_passes_strict_analysis() {
    run_strict(&telco(0.02));
}

/// A session that loses its backend mid-corpus and recovers transparently
/// must keep passing strict analysis: the replayed journal restores the
/// session environment, and every statement after the reconnect still
/// crosses both validation boundaries with zero violations.
#[test]
fn recovered_session_passes_strict_analysis() {
    use hyperq::core::backend::testing::{FaultInjectingBackend, FaultPlan};
    use hyperq::core::backend::BackendErrorKind;

    let db = Arc::new(EngineDb::new());
    for ddl in tpch::ddl() {
        db.execute_sql(&ddl).unwrap();
    }
    for (table, rows) in tpch::generate(SCALE, 1234).tables() {
        db.load_rows(table, rows).unwrap();
    }
    let fault = FaultInjectingBackend::wrap(db as Arc<dyn Backend>, FaultPlan::none());
    let obs = ObsContext::new();
    let mut hq = HyperQBuilder::for_target(Arc::clone(&fault) as Arc<dyn Backend>, hyperq::core::targets::simwh()).obs(Arc::clone(&obs)).analyze(AnalyzeMode::Strict).build();

    // Establish journaled session state, then kill the connection under
    // every remaining TPC-H query so each one rides through a recovery.
    hq.run_one("SET SESSION DATEFORM = 'ANSIDATE'").unwrap();
    for (n, sql) in tpch::queries() {
        fault.set_plan(FaultPlan::fail_n_then_succeed(1, BackendErrorKind::ConnectionLost));
        hq.run_one(sql)
            .unwrap_or_else(|e| panic!("Q{n} failed strict analysis after recovery: {e}"));
    }

    let recoveries = obs.metrics.counter_value("hyperq_recovery_success_total", &[]);
    assert!(recoveries >= 22, "expected a recovery per query, saw {recoveries}");
    assert_violation_free(&obs);
}
