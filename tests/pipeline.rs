//! End-to-end integration: Teradata-dialect application SQL through the
//! full Hyper-Q pipeline (parse → bind → transform → serialize) executed on
//! the SimWH engine substrate.

use std::sync::Arc;

use hyperq::core::{HyperQ, HyperQBuilder};
use hyperq::engine::EngineDb;
use hyperq::xtra::datum::{Datum, Decimal};

fn setup() -> (HyperQ, Arc<EngineDb>) {
    let db = Arc::new(EngineDb::new());
    db.execute_sql(
        "CREATE TABLE SALES (STORE INTEGER, PRODUCT_NAME VARCHAR(40), AMOUNT INTEGER, \
         SALES_DATE DATE)",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO SALES VALUES \
         (1, 'widget', 500, DATE '2014-03-01'), \
         (1, 'gadget', 300, DATE '2014-04-01'), \
         (2, 'widget', 500, DATE '2013-12-31'), \
         (2, 'doohickey', 100, DATE '2014-06-15'), \
         (3, 'gizmo', 700, DATE '2015-01-01')",
    )
    .unwrap();
    db.execute_sql("CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SALES_HISTORY VALUES (400, 350), (500, 420)").unwrap();
    let hq = HyperQBuilder::for_target(Arc::clone(&db) as Arc<dyn hyperq::core::Backend>, hyperq::core::targets::simwh()).build();
    (hq, db)
}

fn int_col(outcome: &hyperq::core::StatementOutcome, col: usize) -> Vec<i64> {
    outcome
        .result
        .rows
        .iter()
        .map(|r| r[col].to_i64().expect("integer column"))
        .collect()
}

#[test]
fn sel_shortcut_and_keyword_comparison() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("SEL STORE FROM SALES WHERE AMOUNT GT 400 ORDER BY STORE")
        .unwrap();
    assert_eq!(int_col(&o, 0), vec![1, 2, 3]);
    assert!(o.features.contains(hyperq::xtra::Feature::KeywordShortcut));
    assert!(o.features.contains(hyperq::xtra::Feature::KeywordComparison));
}

#[test]
fn date_int_comparison_rewrites_and_runs() {
    let (mut hq, _db) = setup();
    // 1140101 is Teradata's integer encoding of 2014-01-01.
    let o = hq
        .run_one("SEL STORE FROM SALES WHERE SALES_DATE > 1140101 ORDER BY STORE, AMOUNT")
        .unwrap();
    assert_eq!(int_col(&o, 0), vec![1, 1, 2, 3]);
    assert!(o.features.contains(hyperq::xtra::Feature::DateIntComparison));
    // The SQL sent to the target must not contain the raw encoded literal
    // compared against a date; it carries the EXTRACT expansion.
    assert!(o.sql_sent[0].contains("EXTRACT"), "{}", o.sql_sent[0]);
}

#[test]
fn qualify_lowering_runs_on_target_without_qualify() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one(
            "SEL STORE, AMOUNT FROM SALES QUALIFY RANK() OVER (ORDER BY AMOUNT DESC) <= 2 \
             ORDER BY AMOUNT DESC",
        )
        .unwrap();
    assert_eq!(int_col(&o, 1), vec![700, 500, 500]); // rank ties preserved
    assert!(o.features.contains(hyperq::xtra::Feature::Qualify));
    assert!(!o.sql_sent[0].to_uppercase().contains("QUALIFY"));
}

#[test]
fn td_rank_shorthand_in_qualify() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("SEL STORE, AMOUNT FROM SALES QUALIFY RANK(AMOUNT DESC) <= 2 ORDER BY AMOUNT DESC")
        .unwrap();
    assert_eq!(int_col(&o, 1), vec![700, 500, 500]);
    assert!(o.features.contains(hyperq::xtra::Feature::NonAnsiWindowSyntax));
}

#[test]
fn paper_example_2_end_to_end() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one(
            "SEL * FROM SALES \
             WHERE SALES_DATE > 1140101 \
             AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY) \
             QUALIFY RANK(AMOUNT DESC) <= 10",
        )
        .unwrap();
    // Rows after 2014-01-01: (1,widget,500), (1,gadget,300), (2,doohickey,100), (3,gizmo,700).
    // Vector comparison against {(400,350), (500,420)}:
    //   500 > 400 → widget qualifies; 700 > 400 → gizmo qualifies;
    //   300 and 100 exceed no gross. RANK keeps all (≤10).
    let mut amounts = int_col(&o, 2);
    amounts.sort();
    assert_eq!(amounts, vec![500, 700]);
    for f in [
        hyperq::xtra::Feature::KeywordShortcut,
        hyperq::xtra::Feature::DateIntComparison,
        hyperq::xtra::Feature::VectorSubquery,
        hyperq::xtra::Feature::Qualify,
        hyperq::xtra::Feature::NonAnsiWindowSyntax,
    ] {
        assert!(o.features.contains(f), "missing {f:?}");
    }
    // Final SQL shape matches the paper's Example 3: EXISTS + SELECT 1 +
    // RANK window, no vector comparison.
    let sql = &o.sql_sent[0];
    assert!(sql.contains("EXISTS"), "{sql}");
    assert!(sql.contains("SELECT 1"), "{sql}");
    assert!(sql.to_uppercase().contains("RANK() OVER"), "{sql}");
    assert!(!sql.contains("ANY"), "{sql}");
}

#[test]
fn paper_example_1_end_to_end() {
    let (mut hq, _db) = setup();
    // Example 1: SEL, named expressions, QUALIFY with windowed SUM, clause
    // reordering, CHARS.
    let o = hq
        .run_one(
            "SEL PRODUCT_NAME, AMOUNT AS SALES_BASE, SALES_BASE + 100 AS SALES_OFFSET \
             FROM SALES \
             QUALIFY 400 < SUM(AMOUNT) OVER (PARTITION BY STORE) \
             ORDER BY STORE, PRODUCT_NAME \
             WHERE CHARS(PRODUCT_NAME) > 4",
        )
        .unwrap();
    // Store sums: s1=800, s2=600, s3=700 → all stores pass QUALIFY.
    // CHARS > 4: widget(6), gadget(6), doohickey(9), gizmo(5) — all rows.
    assert_eq!(o.result.rows.len(), 5);
    // Named expression: SALES_OFFSET = AMOUNT + 100.
    for row in &o.result.rows {
        let base = row[1].to_i64().unwrap();
        let offset = row[2].to_i64().unwrap();
        assert_eq!(offset, base + 100);
    }
    assert!(o.features.contains(hyperq::xtra::Feature::NamedExprReference));
    assert!(o.features.contains(hyperq::xtra::Feature::CharsFunction));
}

#[test]
fn implicit_join_expansion() {
    let (mut hq, _db) = setup();
    // SALES_HISTORY never appears in FROM (tracked feature X2).
    let o = hq
        .run_one(
            "SEL STORE FROM SALES WHERE SALES.AMOUNT = SALES_HISTORY.GROSS ORDER BY STORE",
        )
        .unwrap();
    assert_eq!(int_col(&o, 0), vec![1, 2]); // amount 500 matches gross 500, two sales rows
    assert!(o.features.contains(hyperq::xtra::Feature::ImplicitJoin));
    assert!(o.sql_sent[0].contains("SALES_HISTORY"), "{}", o.sql_sent[0]);
}

#[test]
fn ordinal_group_by_resolution() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("SEL STORE, SUM(AMOUNT) FROM SALES GROUP BY 1 ORDER BY 2 DESC")
        .unwrap();
    assert_eq!(int_col(&o, 0), vec![1, 3, 2]);
    assert!(o.features.contains(hyperq::xtra::Feature::OrdinalGroupBy));
    // No ordinals survive in the serialized SQL's GROUP BY.
    assert!(!o.sql_sent[0].contains("GROUP BY 1"), "{}", o.sql_sent[0]);
}

#[test]
fn grouping_sets_expand_to_union_all() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("SEL STORE, SUM(AMOUNT) AS TOTAL FROM SALES GROUP BY ROLLUP(STORE)")
        .unwrap();
    // 3 store rows + 1 grand-total row.
    assert_eq!(o.result.rows.len(), 4);
    let grand = o
        .result
        .rows
        .iter()
        .find(|r| r[0].is_null())
        .expect("grand total row");
    assert_eq!(grand[1].to_i64(), Some(2100));
    assert!(o.features.contains(hyperq::xtra::Feature::GroupingExtensions));
    assert!(o.sql_sent[0].contains("UNION ALL"), "{}", o.sql_sent[0]);
}

#[test]
fn date_arithmetic_native_on_simwh() {
    let (mut hq, _db) = setup();
    // SimWH has native date arithmetic, so the DATEADD rewrite must NOT
    // fire; the expression passes through as `date + n`.
    let o = hq
        .run_one("SEL SALES_DATE + 30 FROM SALES WHERE STORE = 3")
        .unwrap();
    assert_eq!(o.result.rows[0][0].to_sql_string(), "2015-01-31");
}

#[test]
fn top_with_ties_lowered() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("SEL TOP 1 WITH TIES STORE, AMOUNT FROM SALES ORDER BY AMOUNT DESC")
        .unwrap();
    assert_eq!(o.result.rows.len(), 1); // 700 is unique
    let o2 = hq
        .run_one("SEL TOP 2 WITH TIES STORE, AMOUNT FROM SALES ORDER BY AMOUNT DESC")
        .unwrap();
    // Second place is a 500/500 tie → 3 rows.
    assert_eq!(o2.result.rows.len(), 3);
}

#[test]
fn translation_functions_run() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one(
            "SEL ZEROIFNULL(AMOUNT), NULLIFZERO(AMOUNT - AMOUNT), INDEX(PRODUCT_NAME, 'dg'), \
             SUBSTR(PRODUCT_NAME, 1, 3), AMOUNT MOD 3, 2 ** 10 \
             FROM SALES WHERE PRODUCT_NAME = 'gadget'",
        )
        .unwrap();
    let row = &o.result.rows[0];
    assert_eq!(row[0], Datum::Int(300));
    assert_eq!(row[1], Datum::Null);
    assert_eq!(row[2], Datum::Int(3));
    assert_eq!(row[3], Datum::str("gad"));
    assert_eq!(row[4], Datum::Int(0));
    assert_eq!(row[5].to_f64(), Some(1024.0));
    for f in [
        hyperq::xtra::Feature::ZeroIfNull,
        hyperq::xtra::Feature::IndexFunction,
        hyperq::xtra::Feature::SubstrFunction,
        hyperq::xtra::Feature::ModOperator,
        hyperq::xtra::Feature::ExponentOperator,
    ] {
        assert!(o.features.contains(f), "missing {f:?}");
    }
}

#[test]
fn merge_emulation_updates_and_inserts() {
    let (mut hq, db) = setup();
    db.execute_sql("CREATE TABLE TARGET (ID INTEGER, V INTEGER)").unwrap();
    db.execute_sql("INSERT INTO TARGET VALUES (1, 10), (2, 20)").unwrap();
    db.execute_sql("CREATE TABLE SRC (ID INTEGER, V INTEGER)").unwrap();
    db.execute_sql("INSERT INTO SRC VALUES (2, 99), (3, 30)").unwrap();
    let o = hq
        .run_one(
            "MERGE INTO TARGET T USING SRC S ON T.ID = S.ID \
             WHEN MATCHED THEN UPDATE SET V = S.V \
             WHEN NOT MATCHED THEN INSERT (ID, V) VALUES (S.ID, S.V)",
        )
        .unwrap();
    assert!(o.features.contains(hyperq::xtra::Feature::MergeStatement));
    assert!(o.sql_sent.len() >= 2, "MERGE must become multiple requests");
    let r = db
        .execute_sql("SELECT ID, V FROM TARGET ORDER BY ID")
        .unwrap();
    let pairs: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|r| (r[0].to_i64().unwrap(), r[1].to_i64().unwrap()))
        .collect();
    assert_eq!(pairs, vec![(1, 10), (2, 99), (3, 30)]);
}

#[test]
fn recursive_query_emulation_matches_paper_example() {
    let (mut hq, db) = setup();
    // The paper's Figure 7 data: {(e1,e7),(e7,e8),(e8,e10),(e9,e10),(e10,e11)}.
    db.execute_sql("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)").unwrap();
    db.execute_sql("INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)").unwrap();
    let o = hq
        .run_one(
            "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
               SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
               UNION ALL \
               SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
               WHERE REPORTS.EMPNO = EMP.MGRNO ) \
             SELECT EMPNO FROM REPORTS ORDER BY EMPNO",
        )
        .unwrap();
    // All employees reporting directly or indirectly to e10: e8, e9 (seed),
    // then e7 (reports to e8), then e1 (reports to e7).
    assert_eq!(int_col(&o, 0), vec![1, 7, 8, 9]);
    assert!(o.features.contains(hyperq::xtra::Feature::RecursiveQuery));
    // The emulation drives multiple requests: 2 seeds + ≥2 recursive steps
    // + main query + drops.
    assert!(o.sql_sent.len() >= 6, "{:?}", o.sql_sent);
    // No temp tables left behind.
    assert!(db.table_names().iter().all(|t| !t.starts_with("WT_") && !t.starts_with("TT_")));
}

#[test]
fn macro_emulation_with_parameters() {
    let (mut hq, _db) = setup();
    hq.run_one(
        "CREATE MACRO STORE_REPORT (S INTEGER, MIN_AMT INTEGER DEFAULT 0) AS ( \
           SEL PRODUCT_NAME, AMOUNT FROM SALES WHERE STORE = :S AND AMOUNT >= :MIN_AMT \
           ORDER BY AMOUNT DESC; )",
    )
    .unwrap();
    let o = hq.run_one("EXEC STORE_REPORT(1)").unwrap();
    assert_eq!(o.result.rows.len(), 2);
    assert!(o.features.contains(hyperq::xtra::Feature::MacroStatement));
    let o2 = hq.run_one("EXEC STORE_REPORT(1, MIN_AMT = 400)").unwrap();
    assert_eq!(o2.result.rows.len(), 1);
    assert_eq!(o2.result.rows[0][1], Datum::Int(500));
}

#[test]
fn procedure_call_emulation() {
    let (mut hq, db) = setup();
    db.execute_sql("CREATE TABLE AUDIT (N INTEGER)").unwrap();
    hq.run_one(
        "CREATE PROCEDURE BUMP (K INTEGER) BEGIN \
           INSERT INTO AUDIT VALUES (:K); \
           UPDATE AUDIT SET N = N + 1 WHERE N = :K; \
         END",
    )
    .unwrap();
    let o = hq.run_one("CALL BUMP(5)").unwrap();
    assert!(o.features.contains(hyperq::xtra::Feature::StoredProcedureCall));
    let r = db.execute_sql("SELECT N FROM AUDIT").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(6));
}

#[test]
fn help_session_answered_mid_tier() {
    let (mut hq, _db) = setup();
    let o = hq.run_one("HELP SESSION").unwrap();
    assert!(o.sql_sent.is_empty(), "HELP must not reach the target");
    assert!(o.result.rows.iter().any(|r| r[0] == Datum::str("DATEFORM")));
    assert!(o.features.contains(hyperq::xtra::Feature::HelpCommand));
}

#[test]
fn help_table_lists_columns() {
    let (mut hq, _db) = setup();
    let o = hq.run_one("HELP TABLE SALES").unwrap();
    assert_eq!(o.result.rows.len(), 4);
    assert!(o.result.rows.iter().any(|r| r[0] == Datum::str("AMOUNT")));
}

#[test]
fn view_dml_rewrites_to_base_table() {
    let (mut hq, db) = setup();
    hq.run_one("CREATE VIEW BIG_SALES AS SEL STORE, PRODUCT_NAME, AMOUNT FROM SALES WHERE AMOUNT > 400")
        .unwrap();
    // Query through the view.
    let o = hq.run_one("SEL COUNT(*) FROM BIG_SALES").unwrap();
    assert_eq!(int_col(&o, 0), vec![3]);
    // The view never reached the target.
    assert!(db.table_names().iter().all(|t| t != "BIG_SALES"));
    assert!(o.sql_sent[0].contains("SALES"), "{}", o.sql_sent[0]);
}

#[test]
fn global_temp_table_emulation() {
    let (mut hq, db) = setup();
    let o = hq
        .run_one("CREATE GLOBAL TEMPORARY TABLE STAGE (K INTEGER, V VARCHAR(10))")
        .unwrap();
    assert!(o.features.contains(hyperq::xtra::Feature::GlobalTempTable));
    assert!(o.sql_sent.is_empty(), "GTT definition stays in the DTM catalog");
    // First reference materializes the per-session instance.
    let o2 = hq.run_one("INS STAGE (1, 'a')").unwrap();
    assert!(
        o2.sql_sent.iter().any(|s| s.contains("CREATE TEMPORARY TABLE")),
        "{:?}",
        o2.sql_sent
    );
    let o3 = hq.run_one("SEL COUNT(*) FROM STAGE").unwrap();
    assert_eq!(int_col(&o3, 0), vec![1]);
    // Second statement must not re-create it.
    assert!(o3.sql_sent.iter().all(|s| !s.contains("CREATE TEMPORARY TABLE")));
    let names = db.table_names();
    assert!(names.iter().any(|t| t.starts_with("GTT_STAGE_S")), "{names:?}");
}

#[test]
fn set_table_semantics_dedup_on_insert() {
    let (mut hq, db) = setup();
    // Define the SET table through Hyper-Q; the target gets a plain table.
    let o = hq.run_one("CREATE SET TABLE UNIQ (A INTEGER, B INTEGER)").unwrap();
    assert!(o.features.contains(hyperq::xtra::Feature::SetTableSemantics));
    hq.run_one("INSERT INTO UNIQ VALUES (1, 1), (1, 1), (2, 2)").unwrap();
    let r = db.execute_sql("SELECT COUNT(*) FROM UNIQ").unwrap();
    assert_eq!(r.rows[0][0], Datum::Int(2), "duplicates silently dropped");
    // Re-inserting existing rows inserts nothing.
    let o2 = hq.run_one("INSERT INTO UNIQ VALUES (1, 1), (3, 3)").unwrap();
    assert_eq!(o2.result.row_count, 1);
}

#[test]
fn set_table_def_forwarded_without_set_keyword() {
    let (mut hq, db) = setup();
    hq.run_one("CREATE SET TABLE UNIQ2 (A INTEGER)").unwrap();
    // The target-side DDL must be valid ANSI (no SET keyword).
    assert!(db.table_def("UNIQ2").is_some());
}

#[test]
fn period_type_split_into_begin_end() {
    let (mut hq, db) = setup();
    let o = hq
        .run_one("CREATE TABLE COVERAGE (ID INTEGER, VALIDITY PERIOD(DATE))")
        .unwrap();
    assert!(o.features.contains(hyperq::xtra::Feature::ColumnProperties));
    let def = db.table_def("COVERAGE").expect("created on target");
    let names: Vec<&str> = def.columns.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["ID", "VALIDITY_BEGIN", "VALIDITY_END"]);
}

#[test]
fn non_constant_default_injected_mid_tier() {
    let (mut hq, db) = setup();
    hq.run_one("CREATE TABLE LOG_ROWS (MSG VARCHAR(20), AT DATE DEFAULT CURRENT_DATE)")
        .unwrap();
    let o = hq.run_one("INSERT INTO LOG_ROWS (MSG) VALUES ('hello')").unwrap();
    assert!(o.features.contains(hyperq::xtra::Feature::ColumnProperties));
    let r = db.execute_sql("SELECT AT FROM LOG_ROWS").unwrap();
    assert!(!r.rows[0][0].is_null(), "default must be injected by the mid tier");
}

#[test]
fn case_insensitive_column_comparison() {
    let (mut hq, db) = setup();
    hq.run_one("CREATE TABLE USERS (NAME VARCHAR(20) NOT CASESPECIFIC)").unwrap();
    hq.run_one("INSERT INTO USERS VALUES ('Alice')").unwrap();
    let o = hq.run_one("SEL COUNT(*) FROM USERS WHERE NAME = 'ALICE'").unwrap();
    assert_eq!(int_col(&o, 0), vec![1], "NOT CASESPECIFIC comparison is case-blind");
    assert!(o.features.contains(hyperq::xtra::Feature::ColumnProperties));
    assert!(o.sql_sent[0].contains("UPPER"), "{}", o.sql_sent[0]);
    let _ = db;
}

#[test]
fn dml_batching_merges_consecutive_inserts() {
    let (mut hq, db) = setup();
    db.execute_sql("CREATE TABLE EVENTS (K INTEGER)").unwrap();
    let outcomes = hq
        .run_script(
            "INSERT INTO EVENTS VALUES (1); INSERT INTO EVENTS VALUES (2); \
             INSERT INTO EVENTS VALUES (3); SEL COUNT(*) FROM EVENTS",
        )
        .unwrap();
    // Three single-row inserts batch into one statement + the query.
    assert_eq!(outcomes.len(), 2);
    assert_eq!(outcomes[0].result.row_count, 3);
    assert_eq!(int_col(&outcomes[1], 0), vec![3]);
    // Ablation: turning batching off sends them separately.
    let mut hq2 = HyperQBuilder::for_target(
        Arc::clone(&db) as Arc<dyn hyperq::core::Backend>,
        hyperq::core::targets::simwh(),
    ).build();
    hq2.dml_batching = false;
    let outcomes2 = hq2
        .run_script("INSERT INTO EVENTS VALUES (4); INSERT INTO EVENTS VALUES (5)")
        .unwrap();
    assert_eq!(outcomes2.len(), 2);
}

#[test]
fn null_ordering_made_explicit_for_target() {
    let (mut hq, db) = setup();
    db.execute_sql("CREATE TABLE NULLABLE_T (V INTEGER)").unwrap();
    db.execute_sql("INSERT INTO NULLABLE_T VALUES (2), (NULL), (1)").unwrap();
    // Teradata sorts NULLs first ascending; the engine's native default is
    // NULLs last — the rewrite must force Teradata semantics.
    let o = hq.run_one("SEL V FROM NULLABLE_T ORDER BY V").unwrap();
    assert!(o.result.rows[0][0].is_null(), "NULL must sort first (Teradata semantics)");
    assert!(o.sql_sent[0].contains("NULLS FIRST"), "{}", o.sql_sent[0]);
}

#[test]
fn transactions_acknowledged() {
    let (mut hq, _db) = setup();
    let outcomes = hq.run_script("BT; SEL 1; ET").unwrap();
    assert_eq!(outcomes.len(), 3);
}

#[test]
fn decimal_results_survive_round_trip() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("SEL SUM(AMOUNT) * 0.10 FROM SALES")
        .unwrap();
    match &o.result.rows[0][0] {
        Datum::Dec(d) => assert_eq!(*d, Decimal::parse("210.00").unwrap()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn timings_are_recorded() {
    let (mut hq, _db) = setup();
    let o = hq.run_one("SEL COUNT(*) FROM SALES").unwrap();
    assert!(o.timings.translation.as_nanos() > 0);
    assert!(o.timings.execution.as_nanos() > 0);
}

#[test]
fn error_for_unknown_table_is_bind_error() {
    let (mut hq, _db) = setup();
    let err = hq.run_one("SEL * FROM NO_SUCH_TABLE").unwrap_err();
    assert!(err.to_string().contains("NO_SUCH_TABLE"), "{err}");
}

#[test]
fn parameterized_query_with_positional_markers() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_with_params(
            "SEL PRODUCT_NAME FROM SALES WHERE STORE = ? AND AMOUNT > ? ORDER BY PRODUCT_NAME",
            &[Datum::Int(1), Datum::Int(350)],
        )
        .unwrap();
    assert_eq!(o.result.rows.len(), 1);
    assert_eq!(o.result.rows[0][0], Datum::str("widget"));
    // Too few values is a bind error, not a panic.
    let err = hq
        .run_with_params("SEL * FROM SALES WHERE STORE = ? AND AMOUNT > ?", &[Datum::Int(1)])
        .unwrap_err();
    assert!(err.to_string().contains("marker"), "{err}");
}

#[test]
fn replicated_backend_scale_out() {
    use hyperq::core::ReplicatedBackend;
    // Two replicas of the warehouse, loaded identically out of band.
    let make = || {
        let db = Arc::new(EngineDb::new());
        db.execute_sql("CREATE TABLE SALES (STORE INTEGER, AMOUNT INTEGER, SALES_DATE DATE)")
            .unwrap();
        db.execute_sql(
            "INSERT INTO SALES VALUES (1, 500, DATE '2014-03-01'), (2, 300, DATE '2014-04-01')",
        )
        .unwrap();
        db
    };
    let (r1, r2) = (make(), make());
    let replicated = ReplicatedBackend::new(vec![
        Arc::clone(&r1) as Arc<dyn hyperq::core::Backend>,
        Arc::clone(&r2) as Arc<dyn hyperq::core::Backend>,
    ])
    .unwrap();
    let mut hq = HyperQBuilder::for_target(Arc::new(replicated), hyperq::core::targets::simwh()).build();
    // Reads load-balance; writes broadcast — consistency preserved.
    hq.run_one("INS SALES (3, 700, DATE '2015-01-01')").unwrap();
    for _ in 0..4 {
        let o = hq.run_one("SEL COUNT(*) FROM SALES").unwrap();
        assert_eq!(int_col(&o, 0), vec![3]);
    }
    // Both replicas actually received the write.
    for r in [&r1, &r2] {
        let n = r.execute_sql("SELECT COUNT(*) FROM SALES").unwrap().rows[0][0]
            .to_i64()
            .unwrap();
        assert_eq!(n, 3);
    }
}

#[test]
fn explain_answered_mid_tier_with_plan_and_sql() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("EXPLAIN SEL * FROM SALES WHERE SALES_DATE > 1140101 QUALIFY RANK(AMOUNT DESC) <= 2")
        .unwrap();
    assert!(o.sql_sent.is_empty(), "EXPLAIN must not reach the target");
    let text: String = o
        .result
        .rows
        .iter()
        .map(|r| r[0].to_sql_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("tracked features"), "{text}");
    assert!(text.contains("QUALIFY"), "{text}");
    assert!(text.contains("XTRA plan"), "{text}");
    assert!(text.contains("window(RANK"), "{text}");
    assert!(text.contains("target SQL"), "{text}");
    assert!(text.contains("RANK() OVER"), "{text}");
}

#[test]
fn explain_of_emulated_statements_shows_decomposition() {
    let (mut hq, db) = setup();
    db.execute_sql("CREATE TABLE FEED (STORE INTEGER, AMOUNT INTEGER)").unwrap();
    let o = hq
        .run_one(
            "EXPLAIN MERGE INTO SALES S USING FEED F ON S.STORE = F.STORE \
             WHEN MATCHED THEN UPDATE SET AMOUNT = F.AMOUNT",
        )
        .unwrap();
    let text: String = o
        .result
        .rows
        .iter()
        .map(|r| r[0].to_sql_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("emulated"), "{text}");
    assert!(text.contains("UPDATE SALES"), "{text}");
    assert!(o.sql_sent.is_empty());
}

#[test]
fn locking_modifier_parsed_and_dropped() {
    let (mut hq, _db) = setup();
    let o = hq
        .run_one("LOCKING SALES FOR ACCESS SEL COUNT(*) FROM SALES")
        .unwrap();
    assert_eq!(int_col(&o, 0), vec![5]);
    assert!(!o.sql_sent[0].to_uppercase().contains("LOCKING"), "{}", o.sql_sent[0]);
    // ROW-level form too.
    let o2 = hq.run_one("LOCKING ROW FOR ACCESS SEL COUNT(*) FROM SALES").unwrap();
    assert_eq!(int_col(&o2, 0), vec![5]);
}

#[test]
fn set_session_updates_help_session() {
    let (mut hq, _db) = setup();
    hq.run_one("SET SESSION DATEFORM = 'ANSIDATE'").unwrap();
    let help = hq.run_one("HELP SESSION").unwrap();
    let row = help
        .result
        .rows
        .iter()
        .find(|r| r[0] == Datum::str("DATEFORM"))
        .expect("DATEFORM setting");
    assert_eq!(row[1], Datum::str("ANSIDATE"));
}
