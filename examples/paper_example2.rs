//! Walk the paper's worked Example 2 through every pipeline stage, printing
//! the intermediate representations of Figures 4–6 and the final SQL of
//! Example 3.
//!
//! ```sh
//! cargo run --example paper_example2
//! ```

use std::sync::Arc;

use hyperq::core::backend::Backend;
use hyperq::core::binder::Binder;
use hyperq::core::capability::TargetCapabilities;
use hyperq::core::serialize::Serializer;
use hyperq::core::session::{SessionState, ShadowCatalog};
use hyperq::core::transform::{Phase, Transformer};
use hyperq::engine::EngineDb;
use hyperq::parser::{parse_one, Dialect};
use hyperq::xtra::display::render_rel;
use hyperq::xtra::feature::FeatureSet;
use hyperq::xtra::rel::Plan;

const EXAMPLE2: &str = "SEL * \
  FROM SALES \
  WHERE SALES_DATE > 1140101 \
  AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY) \
  QUALIFY RANK(AMOUNT DESC) <= 10";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = EngineDb::new();
    db.execute_sql("CREATE TABLE SALES (AMOUNT INTEGER, SALES_DATE DATE)")?;
    db.execute_sql("CREATE TABLE SALES_HISTORY (GROSS INTEGER, NET INTEGER)")?;
    let backend: Arc<dyn Backend> = Arc::new(db);
    let session = SessionState::new(1, "DEMO");
    let caps = TargetCapabilities::simwh();

    println!("── input (Example 2, Teradata dialect) ──────────────────────────");
    println!("{EXAMPLE2}\n");

    // Parsing: mixed generic/vendor AST (Figure 4).
    let parsed = parse_one(EXAMPLE2, Dialect::Teradata)?;
    println!("── parse: tracked features detected ─────────────────────────────");
    for f in parsed.features.iter() {
        println!("  {f}");
    }

    // Binding (algebrization): XTRA (Figure 5 before transformations).
    let catalog = ShadowCatalog::new(&*backend, &session);
    let mut binder = Binder::new(&catalog);
    let plan = binder.bind_statement(&parsed.stmt)?;
    let Plan::Query(rel) = &plan else {
        unreachable!("Example 2 is a query");
    };
    println!("\n── XTRA after binding (cf. Figure 5) ────────────────────────────");
    print!("{}", render_rel(rel));

    // Binding-phase transformations (comp_date_to_int, §5.2).
    let transformer = Transformer::standard();
    let mut fired = FeatureSet::new();
    let plan = transformer.run(plan, Phase::Binding, &caps, &mut fired)?;
    if let Plan::Query(rel) = &plan {
        println!("\n── XTRA after binding-phase transformations ─────────────────────");
        print!("{}", render_rel(rel));
    }

    // Serialization-phase transformations (vector subquery → EXISTS, §5.3).
    let plan = transformer.run(plan, Phase::Serialization, &caps, &mut fired)?;
    if let Plan::Query(rel) = &plan {
        println!("\n── final XTRA (cf. Figure 6) ─────────────────────────────────────");
        print!("{}", render_rel(rel));
    }
    println!("\n── transformations fired ─────────────────────────────────────────");
    for f in fired.iter() {
        println!("  {f}");
    }

    // Serialization: target SQL (cf. Example 3).
    let sql = Serializer::new(&caps).serialize_plan(&plan)?;
    println!("\n── serialized SQL for the target (cf. Example 3) ────────────────");
    println!("{sql}");

    // And it actually runs on the target:
    let result = backend.execute(&sql)?;
    println!("\nexecutes on the target: {} rows", result.row_count);
    Ok(())
}
