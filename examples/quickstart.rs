//! Quickstart: run unmodified Teradata-dialect SQL against a different
//! warehouse through Hyper-Q.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use hyperq::core::targets;
use hyperq::core::{Backend, HyperQBuilder};
use hyperq::engine::EngineDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The target cloud warehouse (DB-B). In production this would be a real
    // system reached over ODBC; here it is the bundled engine.
    let warehouse = Arc::new(EngineDb::new());
    warehouse.execute_sql(
        "CREATE TABLE SALES (STORE INTEGER, PRODUCT_NAME VARCHAR(40), AMOUNT INTEGER, \
         SALES_DATE DATE)",
    )?;
    warehouse.execute_sql(
        "INSERT INTO SALES VALUES \
         (1, 'widget', 500, DATE '2014-03-01'), \
         (1, 'gadget', 300, DATE '2014-04-01'), \
         (2, 'widget', 500, DATE '2013-12-31'), \
         (3, 'gizmo', 700, DATE '2015-01-01')",
    )?;

    // One virtualized session: the application side speaks Teradata SQL.
    let mut hyperq = HyperQBuilder::for_target(
        Arc::clone(&warehouse) as Arc<dyn Backend>,
        targets::simwh(),
    ).build();

    // Teradata-isms everywhere: SEL, integer-encoded date comparison,
    // QUALIFY with the RANK(expr DESC) shorthand. None of this is valid on
    // the target — Hyper-Q rewrites it on the fly.
    let outcome = hyperq.run_one(
        "SEL STORE, PRODUCT_NAME, AMOUNT \
         FROM SALES \
         WHERE SALES_DATE > 1140101 \
         QUALIFY RANK(AMOUNT DESC) <= 2",
    )?;

    println!("SQL sent to the target warehouse:");
    for sql in &outcome.sql_sent {
        println!("  {sql}");
    }
    println!();
    println!("Tracked non-standard features observed:");
    for f in outcome.features.iter() {
        println!("  {f}");
    }
    println!();
    println!("Results:");
    let names: Vec<&str> = outcome
        .result
        .schema
        .fields
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    println!("  {}", names.join(" | "));
    for row in &outcome.result.rows {
        let values: Vec<String> = row.iter().map(hyperq::xtra::datum::Datum::to_sql_string).collect();
        println!("  {}", values.join(" | "));
    }
    println!();
    println!(
        "translation: {:?}, execution: {:?}",
        outcome.timings.translation, outcome.timings.execution
    );
    Ok(())
}
