//! Watching a workload live: run a customer-corpus slice through the
//! gateway, then read everything an operator needs — Prometheus metrics,
//! per-query provenance, and the Figure 7/8 analog workload report — off
//! the observability endpoint with nothing but an HTTP GET.
//!
//! ```sh
//! cargo run --example workload_intelligence
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use hyperq::core::Backend;
use hyperq::engine::EngineDb;
use hyperq::wire::{Client, Gateway, GatewayConfig};
use hyperq::workload::customer::health;

fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect obs endpoint");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw.split_once("\r\n\r\n").map(|(_, body)| body.to_string()).unwrap_or(raw)
}

fn main() {
    // A small slice of the synthetic Health workload (Table 1 / Figure 8).
    let corpus = health(0.01);
    let db = Arc::new(EngineDb::new());
    for ddl in &corpus.target_ddl {
        db.execute_sql(ddl).unwrap();
    }

    // The gateway serves TDWP on one port and, with `obs_http` set, a
    // read-only observability endpoint on another.
    let config = GatewayConfig { obs_http: Some("127.0.0.1:0".into()), ..Default::default() };
    let handle = Gateway::spawn(Arc::clone(&db) as Arc<dyn Backend>, config).unwrap();
    let obs_addr = handle.obs_addr().unwrap();
    println!("gateway on {}, observability on http://{obs_addr}", handle.addr);

    // The "application": a bteq-style client replaying the corpus.
    let mut client = Client::connect(handle.addr, "APP", "secret").unwrap();
    for setup in &corpus.hyperq_setup {
        client.run(setup).unwrap();
    }
    let mut failures = 0;
    for text in &corpus.distinct {
        if client.run(text).is_err() {
            failures += 1;
        }
    }
    println!(
        "replayed {} distinct queries ({failures} failures)\n",
        corpus.distinct.len()
    );

    // What the operator sees, live, while the workload runs.
    println!("== GET /report?format=text ==");
    println!("{}", http_get(obs_addr, "/report?format=text"));

    println!("== GET /provenance?n=2 (most recent statements) ==");
    println!("{}\n", http_get(obs_addr, "/provenance?n=2"));

    println!("== GET /metrics (excerpt) ==");
    let prom = http_get(obs_addr, "/metrics");
    for line in prom.lines().filter(|l| {
        l.starts_with("hyperq_statements_total")
            || l.starts_with("hyperq_cache_")
            || l.starts_with("hyperq_stage_duration_seconds_p95")
    }) {
        println!("{line}");
    }

    client.logoff().unwrap();
    handle.shutdown();
}
