//! The drop-in-replace scenario (paper §B.1 and Figure 1b): an unchanged
//! "application" — complete with its Teradata driver, macros, MERGE-based
//! upserts and informational commands — pointed at the Hyper-Q gateway over
//! the wire protocol instead of at Teradata.
//!
//! ```sh
//! cargo run --example replatform_teradata
//! ```

use std::sync::Arc;

use hyperq::core::Backend;
use hyperq::engine::EngineDb;
use hyperq::wire::{Client, Gateway, GatewayConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the new cloud warehouse, loaded out of band -----------------------
    let warehouse = Arc::new(EngineDb::new());
    warehouse.execute_sql(
        "CREATE TABLE ACCOUNTS (ACCT_ID INTEGER NOT NULL, HOLDER VARCHAR(40), \
         BALANCE DECIMAL(12,2), OPENED DATE)",
    )?;
    warehouse.execute_sql(
        "INSERT INTO ACCOUNTS VALUES \
         (100, 'acme corp', 2500.00, DATE '2010-06-01'), \
         (200, 'globex', 120.50, DATE '2015-02-11'), \
         (300, 'initech', 9800.75, DATE '2012-09-30')",
    )?;
    warehouse.execute_sql(
        "CREATE TABLE FEED (ACCT_ID INTEGER, HOLDER VARCHAR(40), BALANCE DECIMAL(12,2))",
    )?;
    warehouse
        .execute_sql("INSERT INTO FEED VALUES (200, 'globex', 180.25), (400, 'hooli', 50.00)")?;

    // --- Hyper-Q in the data path -------------------------------------------
    let gateway = Gateway::spawn(
        Arc::clone(&warehouse) as Arc<dyn Backend>,
        GatewayConfig::default(),
    )?;
    println!("gateway listening on {} (speaking the Teradata-style protocol)\n", gateway.addr);

    // --- the unchanged application ------------------------------------------
    // It logs on with its existing credentials and runs its existing SQL.
    let mut app = Client::connect(gateway.addr, "APP", "secret")?;

    // 1. The nightly upsert, written as Teradata MERGE (not supported by
    //    the target — emulated as UPDATE + guarded INSERT).
    let merge = app.run(
        "MERGE INTO ACCOUNTS A USING FEED F ON A.ACCT_ID = F.ACCT_ID \
         WHEN MATCHED THEN UPDATE SET BALANCE = F.BALANCE \
         WHEN NOT MATCHED THEN INSERT (ACCT_ID, HOLDER, BALANCE) \
           VALUES (F.ACCT_ID, F.HOLDER, F.BALANCE)",
    )?;
    println!("MERGE affected {} rows", merge[0].activity_count);

    // 2. A reporting macro the application defined years ago.
    app.run(
        "CREATE MACRO TOP_ACCOUNTS (MIN_BAL INTEGER) AS ( \
           SEL TOP 3 ACCT_ID, HOLDER, BALANCE FROM ACCOUNTS \
           WHERE BALANCE >= :MIN_BAL ORDER BY BALANCE DESC; )",
    )?;
    let report = app.run("EXEC TOP_ACCOUNTS(100)")?;
    println!("\nTOP_ACCOUNTS(100):");
    for row in &report[0].rows {
        println!(
            "  {:<6} {:<12} {}",
            row[0].to_sql_string(),
            row[1].to_sql_string(),
            row[2].to_sql_string()
        );
    }

    // 3. The session introspection its connection pool performs.
    let help = app.run("HELP SESSION")?;
    println!("\nHELP SESSION ({} settings, answered by the mid tier):", help[0].rows.len());
    for row in help[0].rows.iter().take(3) {
        println!("  {} = {}", row[0].to_sql_string(), row[1].to_sql_string());
    }

    // 4. Ad-hoc analytics with QUALIFY over account tenure in integer-date
    //    arithmetic.
    let adhoc = app.run(
        "SEL HOLDER, BALANCE FROM ACCOUNTS WHERE OPENED > 1100101 \
         QUALIFY RANK(BALANCE DESC) <= 2",
    )?;
    println!("\nTop balances among accounts opened after 2010-01-01:");
    for row in &adhoc[0].rows {
        println!("  {:<12} {}", row[0].to_sql_string(), row[1].to_sql_string());
    }

    app.logoff()?;
    let stats = gateway.stats();
    let (t, e, c) = stats.shares();
    println!(
        "\ngateway stage shares — translation {t:.2}%, execution {e:.2}%, conversion {c:.2}%"
    );
    gateway.shutdown();
    Ok(())
}
