//! The paper's Example 4 (§6): emulating a recursive query on a target
//! without recursion, by driving WorkTable/TempTable temporary-table
//! operations from the middle tier.
//!
//! ```sh
//! cargo run --example recursive_emulation
//! ```

use std::sync::Arc;

use hyperq::core::targets;
use hyperq::core::{Backend, HyperQBuilder};
use hyperq::engine::EngineDb;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warehouse = Arc::new(EngineDb::new());
    warehouse.execute_sql("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)")?;
    // The paper's Figure 7 sample data: {(e1,e7),(e7,e8),(e8,e10),(e9,e10),(e10,e11)}.
    warehouse.execute_sql("INSERT INTO EMP VALUES (1,7),(7,8),(8,10),(9,10),(10,11)")?;

    // The target genuinely lacks recursion:
    let direct = warehouse.execute_sql(
        "WITH RECURSIVE R (N) AS (SELECT 1) SELECT * FROM R",
    );
    println!(
        "running WITH RECURSIVE directly on the warehouse: {}\n",
        direct.err().map(|e| e.to_string()).unwrap_or_default()
    );

    let mut hyperq = HyperQBuilder::for_target(
        Arc::clone(&warehouse) as Arc<dyn Backend>,
        targets::simwh(),
    ).build();

    // Example 4: all employees reporting directly or indirectly to emp 10.
    let outcome = hyperq.run_one(
        "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ( \
           SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 \
           UNION ALL \
           SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS \
           WHERE REPORTS.EMPNO = EMP.MGRNO ) \
         SELECT EMPNO FROM REPORTS ORDER BY EMPNO",
    )?;

    println!("requests Hyper-Q drove against the target (paper §6, steps 1–6):");
    for (i, sql) in outcome.sql_sent.iter().enumerate() {
        println!("  {:>2}. {sql}", i + 1);
    }
    println!("\nemployees reporting (directly or indirectly) to e10:");
    for row in &outcome.result.rows {
        println!("  e{}", row[0].to_sql_string());
    }
    assert_eq!(
        outcome
            .result
            .rows
            .iter()
            .map(|r| r[0].to_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![1, 7, 8, 9],
        "must match the paper's hand trace"
    );
    println!("\nmatches the paper's hand-traced result {{e1, e7, e8, e9}}");
    Ok(())
}
