//! The disaster-recovery scenario (paper §B.2): the same unchanged
//! application runs against the primary *and* a differently-shaped standby,
//! because Hyper-Q absorbs the dialect differences per target.
//!
//! ```sh
//! cargo run --example disaster_recovery
//! ```

use std::sync::Arc;

use hyperq::core::targets::{self, TargetProfile};
use hyperq::core::{Backend, HyperQBuilder};
use hyperq::engine::EngineDb;

const APP_QUERY: &str = "SEL REGION, SUM(AMOUNT) AS TOTAL FROM ORDERS_FACT \
                         WHERE ORDER_DATE > 1140101 GROUP BY 1 ORDER BY 2 DESC";

fn provision() -> Arc<EngineDb> {
    let db = Arc::new(EngineDb::new());
    db.execute_sql(
        "CREATE TABLE ORDERS_FACT (REGION INTEGER, AMOUNT DECIMAL(12,2), ORDER_DATE DATE)",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO ORDERS_FACT VALUES \
         (1, 100.00, DATE '2014-05-01'), (1, 250.00, DATE '2014-06-01'), \
         (2, 900.00, DATE '2014-07-01'), (3, 50.00, DATE '2013-01-01')",
    )
    .unwrap();
    db
}

fn run_on(label: &str, profile: TargetProfile, backend: Arc<EngineDb>) -> Vec<(i64, String)> {
    let display = profile.display_name().to_string();
    let mut hq = HyperQBuilder::for_target(backend as Arc<dyn Backend>, profile).build();
    let outcome = hq.run_one(APP_QUERY).expect("application query");
    println!("{label} (capability profile {display}):");
    println!("  SQL generated for this target: {}", outcome.sql_sent[0]);
    outcome
        .result
        .rows
        .iter()
        .map(|r| (r[0].to_i64().unwrap(), r[1].to_sql_string()))
        .collect()
}

fn main() {
    // Primary and standby are provisioned independently (content transfer
    // is the out-of-band, well-studied half of the migration).
    let primary = provision();
    let standby = provision();

    // The application text never changes; the serializer output differs per
    // target profile. `translate` shows what a TOP-style target would get:
    let mut demo = HyperQBuilder::for_target(
        Arc::clone(&primary) as Arc<dyn Backend>,
        targets::lookup("cloud-a").expect("registered profile"),
    ).build();
    println!(
        "for a TOP-dialect target (CloudWH-A) the same query would serialize as:\n  {}\n",
        demo.translate(APP_QUERY).unwrap()[0]
    );

    let on_primary = run_on("PRIMARY", targets::simwh(), primary);
    println!();
    let on_standby = run_on("STANDBY", targets::simwh(), standby);

    assert_eq!(on_primary, on_standby, "failover must be invisible to the application");
    println!("\nfailover check: identical results on primary and standby ✓");
    for (region, total) in on_primary {
        println!("  region {region}: {total}");
    }
}
